"""Reproduction of "Bullet: High Bandwidth Data Dissemination Using an Overlay Mesh".

See the top-level ``README.md`` for a quickstart, the architecture map of the
experiment layer (registry / session / batch) and a guide to registering a
custom dissemination system.

The package is organized around the systems described in the SOSP 2003 paper:

* :mod:`repro.topology` -- synthetic transit-stub network topologies with the
  paper's Table 1 bandwidth classes (the ModelNet / INET substitute).
* :mod:`repro.network` -- a deterministic, time-stepped fluid network
  simulator with max-min fair sharing between competing overlay flows.
* :mod:`repro.transport` -- TFRC / TCP steady-state rate models.
* :mod:`repro.trees` -- overlay trees (random, offline bottleneck-bandwidth,
  Overcast-like online).
* :mod:`repro.ransub` -- the RanSub collect/distribute protocol.
* :mod:`repro.reconcile` -- working sets, min-wise summary tickets and Bloom
  filters (informed content delivery).
* :mod:`repro.encoding` -- Tornado-style, LT, MDC and null encodings.
* :mod:`repro.core` -- the Bullet mesh itself (disjoint send, peering,
  recovery, mesh improvement).
* :mod:`repro.baselines` -- tree streaming, push gossiping and anti-entropy
  recovery baselines.
* :mod:`repro.experiments` -- the experiment layer: the pluggable
  ``@register_system`` registry, :class:`ExperimentSession` (the unified
  simulate--sample--inject loop with observer hooks), ``run_batch`` /
  ``sweep`` parallel batches, and the per-figure harness.
"""

from repro.core.config import BulletConfig
from repro.core.mesh import BulletMesh
from repro.experiments.batch import ResultSet, run_batch, sweep
from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.experiments.registry import (
    DisseminationSystem,
    available_systems,
    register_system,
)
from repro.experiments.session import ExperimentSession, SessionObserver
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.links import BandwidthClass

__version__ = "1.1.0"

__all__ = [
    "BulletConfig",
    "BulletMesh",
    "BandwidthClass",
    "DisseminationSystem",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSession",
    "ResultSet",
    "SessionObserver",
    "TopologyConfig",
    "available_systems",
    "generate_topology",
    "register_system",
    "run_batch",
    "run_experiment",
    "sweep",
    "__version__",
]
