"""Report rendering and exit-code policy.

Exit codes (documented in CI and the README):

* ``0`` — clean: no findings;
* ``1`` — findings were reported (the lint gate fails);
* ``2`` — the analyzer itself failed (bad config, internal error).
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


def render_report(findings: List[Finding], files_scanned: int) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append("")
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(
            f"repro.analysis: {len(findings)} {noun} in {files_scanned} scanned files"
        )
    else:
        lines.append(f"repro.analysis: clean ({files_scanned} files scanned)")
    return "\n".join(lines)


def exit_code(findings: List[Finding]) -> int:
    return EXIT_FINDINGS if findings else EXIT_CLEAN
