"""Order-shakeout sanitizer: seeded order-perturbing set proxies.

The static pass exempts set iterations that are *argued* order-insensitive
(pragmas) and cannot see sets flowing across module boundaries.  This module
closes that gap dynamically: with ``REPRO_SHAKEOUT=1`` in the environment,
the hot simulation sets built through :func:`tracked_set` become
:class:`ShakeoutSet` instances whose iteration order is a deterministic
*perturbation* of whatever CPython would produce — every hidden ordering
dependency then shows up as a byte-diff against the unperturbed export.  One
CI determinism-matrix leg runs exactly that comparison.

The perturbed order is a pure function of the element values and the
shakeout seed (``REPRO_SHAKEOUT_SEED``, default 1), never of insertion
history or addresses, so a shakeout run is itself reproducible: two shakeout
runs byte-match each other, and a *correct* tree byte-matches the
unperturbed run too.

Proxies deliberately perturb only the order-observable operations —
``__iter__`` and ``pop`` — and inherit everything else from ``set``;
membership, length, and the order-insensitive algebra (union, intersection,
…) are untouched, except that the results of the copy-producing operators
stay plain sets (one perturbation layer at the declared site is enough).
"""

from __future__ import annotations

import os
import zlib
from typing import Iterable, Iterator, TypeVar

T = TypeVar("T")

_ENV_FLAG = "REPRO_SHAKEOUT"
_ENV_SEED = "REPRO_SHAKEOUT_SEED"


def shakeout_enabled() -> bool:
    """True when the current process runs under the shakeout sanitizer."""
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0", "false", "no")


def shakeout_seed() -> int:
    """The perturbation seed (``REPRO_SHAKEOUT_SEED``, default 1)."""
    try:
        return int(os.environ.get(_ENV_SEED, "1"))
    except ValueError:
        return 1


def _perturbation_key(element: object, seed: int):
    """A deterministic, seed-dependent sort key for one set element.

    ``repr`` of the simulation's set elements (ints, strings, tuples of
    those) is stable across processes, so the crc32 of it is too; the seed
    is mixed in so different seeds explore different orders.  The element's
    repr is the tiebreaker, keeping the full key total-ordered.
    """
    data = repr(element).encode("utf-8", "backslashreplace")
    return (zlib.crc32(data) ^ (seed * 0x9E3779B1 & 0xFFFFFFFF), data)


class ShakeoutSet(set):
    """A ``set`` that iterates in a seeded, value-determined perturbed order.

    Iteration sorts elements by a seeded hash of their ``repr`` — an order
    that agrees with neither insertion order, nor value order, nor CPython's
    hash-table order, which is exactly what flushes out code relying on any
    of those.  All mutating and algebraic operations are inherited.
    """

    __slots__ = ("_seed",)

    def __init__(self, iterable: Iterable[T] = (), seed: int | None = None) -> None:
        super().__init__(iterable)
        self._seed = shakeout_seed() if seed is None else seed

    def __iter__(self) -> Iterator[T]:
        seed = self._seed
        ordered = sorted(set.__iter__(self), key=lambda el: _perturbation_key(el, seed))
        return iter(ordered)

    def pop(self) -> T:
        """Remove and return the perturbed-first element (still arbitrary
        from the caller's contract point of view, but reproducible)."""
        for element in self:
            set.discard(self, element)
            return element
        raise KeyError("pop from an empty set")

    def __reduce__(self):
        # Multiprocessing fan-out pickles simulation state; rebuild the proxy
        # with its seed, listing elements in the perturbed (deterministic)
        # order so the pickle bytes are reproducible too.
        return (type(self), (list(self), self._seed))


def tracked_set(label: str, iterable: Iterable[T] = ()) -> set:
    """A plain ``set`` normally; a :class:`ShakeoutSet` under the sanitizer.

    ``label`` names the site (e.g. ``"mesh.failed"``) and salts the seed so
    distinct sites get distinct perturbations — a dependency between two
    sites' orders cannot accidentally cancel out.
    """
    if not shakeout_enabled():
        return set(iterable)
    salt = zlib.crc32(label.encode("utf-8"))
    return ShakeoutSet(iterable, seed=shakeout_seed() ^ salt)
