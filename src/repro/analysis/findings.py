"""Finding model shared by every analyzer rule.

A finding is one (rule, file, line) violation with a human-readable message.
Rules are identified by short stable ids (``DET001`` … ``COH001``) so that
pragma-less allowlists in ``pyproject.toml`` and the relaxed-tier rule
disables can reference them; the full registry below is what ``--explain``
prints and what the README documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


#: Rule id -> one-line description.  The analyzer refuses to emit (and the
#: config refuses to reference) ids outside this registry, so a typo in an
#: allowlist fails loudly instead of silently allowing everything.
RULES: Dict[str, str] = {
    "DET001": (
        "unseeded randomness: stdlib random / os.urandom / uuid / secrets in "
        "simulation code — draw from repro.util.rng.SeededRng instead"
    ),
    "DET002": (
        "wall-clock time in simulation code (time.time/monotonic/perf_counter, "
        "datetime.now) — simulated time comes from the simulator clock"
    ),
    "DET003": (
        "iteration over an unordered set/frozenset (or a set-keyed dict) whose "
        "order can leak into results — wrap in sorted() or justify with a pragma"
    ),
    "DET004": (
        "id() used inside an ordering (sort key or <,>,<=,>= comparison) — "
        "object addresses differ across runs"
    ),
    "DET005": (
        "builtin hash() in simulation code — hash of str/bytes is randomized "
        "per process; use repro.util.hashing.stable_hash"
    ),
    "COH001": (
        "guarded cache mutation without its version/epoch bump on the same "
        "control-flow path (declared in the module's CACHE_INVARIANTS table)"
    ),
    "PRG001": "det pragma without a reason — write `# det: ok(<why this is safe>)`",
    "PRG002": "det pragma that suppressed nothing — stale, remove it",
    "TBL001": "malformed CACHE_INVARIANTS table",
    "PAR001": "file failed to parse",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Stable report order: by path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
