"""Determinism rule family (DET001-DET005).

Everything here is pure AST walking — no imports of the scanned code — so
the analyzer can lint a broken tree.  The rules encode the repo's
reproducibility contract: byte-identical exports across hash seeds, engine
on/off modes and multiprocessing fan-out (gated dynamically by the CI
determinism matrix; these checks move the common causes to lint time).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.typeinfer import SET, SETKEYED, SetTypeInference

#: time.* members that read wall clocks (DET002).  perf_counter is included:
#: phase accounting is legitimate but must carry a pragma saying the numbers
#: never feed exported simulation state.
_WALLCLOCK_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "ctime",
    "asctime",
}
_DATETIME_MEMBERS = {"now", "utcnow", "today"}
#: Modules whose every member is an unseeded entropy source (DET001).
_ENTROPY_MODULES = {"random", "uuid", "secrets"}

#: Builtins through which set iteration order escapes into an ordered value.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "reversed"}
#: Consumers that erase iteration order (aggregates and re-sorters).
_ORDER_FREE_FUNCS = {
    "set",
    "frozenset",
    "sorted",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
    "tracked_set",
}
_ORDER_FREE_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "update",
    "intersection_update",
    "difference_update",
    "symmetric_difference_update",
    "issubset",
    "issuperset",
    "isdisjoint",
    "fromkeys",
    "join",  # NOT order-free; handled separately as order-sensitive
}
_ORDER_FREE_METHODS.discard("join")
_ORDERING_CALLS = {"sorted", "min", "max"}


def _build_parents(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


class DeterminismChecker:
    """Runs DET001-DET005 over one parsed module."""

    def __init__(self, tree: ast.Module, path: str, disabled: Tuple[str, ...]) -> None:
        self._tree = tree
        self._path = path
        self._disabled = frozenset(disabled)
        self._parents = _build_parents(tree)
        self._inference = SetTypeInference(tree)
        self._findings: List[Finding] = []

    # -------------------------------------------------------------- interface
    def run(self) -> List[Finding]:
        self._check_imports()
        scopes = [(self._tree, {})]
        for node in ast.walk(self._tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, self._inference.function_env(node)))
        for scope, env in scopes:
            self._check_scope(scope, env)
        return self._findings

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self._disabled:
            return
        self._findings.append(
            Finding(
                rule=rule,
                path=self._path,
                line=getattr(node, "lineno", 1),
                message=message,
            )
        )

    # ---------------------------------------------------------------- imports
    def _check_imports(self) -> None:
        for node in ast.walk(self._tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            module = node.module
            if module in _ENTROPY_MODULES:
                self._flag(
                    "DET001",
                    node,
                    f"`from {module} import …` in simulation code — draw from "
                    "repro.util.rng.SeededRng",
                )
            elif module == "os" and any(a.name == "urandom" for a in node.names):
                self._flag("DET001", node, "os.urandom is an unseeded entropy source")
            elif module == "time":
                banned = sorted(
                    a.name for a in node.names if a.name in _WALLCLOCK_TIME
                )
                if banned:
                    self._flag(
                        "DET002",
                        node,
                        f"wall-clock import from time: {', '.join(banned)}",
                    )

    # ------------------------------------------------------------- one scope
    def _check_scope(self, scope: ast.AST, env: Dict[str, str]) -> None:
        """Check one scope's nodes, not descending into nested functions
        (every function gets its own scope entry with its own locals env)."""
        stack: List[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
            self._check_banned_reference(node)
            self._check_set_iteration(node, env)
            self._check_id_ordering(node)
            self._check_hash(node)

    # ------------------------------------------------ DET001/DET002 references
    def _check_banned_reference(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Attribute):
            return
        value = node.value
        if isinstance(value, ast.Name):
            base = value.id
            if base in _ENTROPY_MODULES:
                self._flag(
                    "DET001",
                    node,
                    f"{base}.{node.attr} is unseeded — route the draw through "
                    "repro.util.rng.SeededRng",
                )
            elif base == "os" and node.attr == "urandom":
                self._flag("DET001", node, "os.urandom is an unseeded entropy source")
            elif base in ("numpy", "np") and node.attr == "random":
                self._flag(
                    "DET001",
                    node,
                    "numpy.random global state is unseeded — use a seeded Generator",
                )
            elif base == "time" and node.attr in _WALLCLOCK_TIME:
                self._flag(
                    "DET002",
                    node,
                    f"time.{node.attr} reads the wall clock — simulated time "
                    "comes from the simulator",
                )
            elif base in ("datetime", "date") and node.attr in _DATETIME_MEMBERS:
                self._flag("DET002", node, f"{base}.{node.attr} reads the wall clock")
        elif isinstance(value, ast.Attribute):
            if value.attr == "datetime" and node.attr in _DATETIME_MEMBERS:
                self._flag("DET002", node, f"datetime.{node.attr} reads the wall clock")

    # --------------------------------------------------------- DET003 sets
    def _kind(self, node: ast.expr, env: Dict[str, str]) -> Optional[str]:
        return self._inference.expr_kind(node, env)

    def _consumer(self, node: ast.AST) -> Optional[str]:
        """Name of the call directly consuming ``node`` as an argument."""
        parent = self._parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
        return None

    def _order_free_consumer(self, node: ast.AST) -> bool:
        consumer = self._consumer(node)
        return consumer is not None and (
            consumer in _ORDER_FREE_FUNCS or consumer in _ORDER_FREE_METHODS
        )

    def _iter_message(self, kind: str) -> str:
        what = "a set" if kind == SET else "a set-keyed dict"
        return (
            f"iterating {what} — order varies with PYTHONHASHSEED; wrap in "
            "sorted() or justify with `# det: ok(<reason>)`"
        )

    def _check_set_iteration(self, node: ast.AST, env: Dict[str, str]) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            kind = self._kind(node.iter, env)
            if kind in (SET, SETKEYED):
                self._flag("DET003", node.iter, self._iter_message(kind))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for generator in node.generators:
                kind = self._kind(generator.iter, env)
                if kind in (SET, SETKEYED) and not self._order_free_consumer(node):
                    self._flag("DET003", generator.iter, self._iter_message(kind))
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _ORDER_SENSITIVE_BUILTINS and len(node.args) >= 1:
                kind = self._kind(node.args[0], env)
                if kind in (SET, SETKEYED) and not self._order_free_consumer(node):
                    self._flag(
                        "DET003",
                        node,
                        f"{name}() materializes {('a set' if kind == SET else 'a set-keyed dict')} "
                        "in arbitrary order — sort first",
                    )
            elif (
                name == "join"
                and isinstance(func, ast.Attribute)
                and node.args
                and self._kind(node.args[0], env) in (SET, SETKEYED)
            ):
                self._flag("DET003", node, "str.join over a set joins in arbitrary order")
        elif isinstance(node, ast.Starred):
            if self._kind(node.value, env) in (SET, SETKEYED):
                self._flag("DET003", node, "unpacking a set spreads it in arbitrary order")

    # --------------------------------------------------------- DET004 id()
    def _check_id_ordering(self, node: ast.AST) -> None:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            return
        current: Optional[ast.AST] = node
        while current is not None:
            parent = self._parents.get(id(current))
            if isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in parent.ops
            ):
                self._flag(
                    "DET004", node, "id() in an ordering comparison — addresses vary per run"
                )
                return
            if isinstance(parent, ast.Call):
                func = parent.func
                if (
                    isinstance(func, ast.Name) and func.id in _ORDERING_CALLS
                ) or (isinstance(func, ast.Attribute) and func.attr == "sort"):
                    self._flag(
                        "DET004", node, "id() inside a sort key — addresses vary per run"
                    )
                    return
            current = parent

    # --------------------------------------------------------- DET005 hash()
    def _check_hash(self, node: ast.AST) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            self._flag(
                "DET005",
                node,
                "builtin hash() is per-process randomized for str/bytes — use "
                "repro.util.hashing.stable_hash",
            )
