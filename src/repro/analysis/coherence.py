"""Cache-coherence rule (COH001): guarded mutations must bump their version.

Every incremental engine in this repo hangs caches off monotonic counters —
``Topology``'s loss/capacity/delay epochs and structure version,
``WorkingSet.version``, ``FifoBloomFilter.version`` — and a mutation that
forgets its bump produces a stale cache that only a determinism-matrix flake
would catch.  Each module owning such a cache declares a module-level
``CACHE_INVARIANTS`` table *next to the cache*:

    CACHE_INVARIANTS = {
        "Topology": {
            "scope": "tree",          # enforce across the whole scanned tree
            "attrs": {                # attribute stored/deleted -> required bumps
                "loss_rate": ["note_loss_change"],
            },
            "calls": {                # "receiver.method" mutating call -> bumps
                "_links.append": ["_structure_version"],
            },
            "exempt": ["_helper"],    # functions whose *callers* bump
        },
    }

The analyzer literal-evals the table (it must be a pure literal) and then
verifies, for every function in scope, that each guarded mutation has every
required bump **on the same control-flow path**: a bump statement counts if
it sits in the mutation's own statement list or any enclosing statement list
of the same function — i.e. it unconditionally executes with the mutation —
and not if it only appears in a different branch.  ``__init__``/``__new__``
are exempt by construction (no cache can predate construction).

A bump is either an assignment/augmented assignment to an attribute of the
required name (``self._capacity_version += 1``) or a call whose terminal
name matches (``self._routing.note_loss_change()``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding

_TABLE_NAME = "CACHE_INVARIANTS"
_AUTO_EXEMPT = ("__init__", "__new__", "__copy__", "__deepcopy__")


@dataclass
class GuardTable:
    """One class's invariants, as declared in its module's table."""

    owner: str
    source_path: str
    scope: str = "module"
    attrs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    calls: Dict[Tuple[str, str], Tuple[str, ...]] = field(default_factory=dict)
    exempt: Tuple[str, ...] = ()


def load_tables(tree: ast.Module, path: str) -> Tuple[List[GuardTable], List[Finding]]:
    """Extract and validate the module's ``CACHE_INVARIANTS`` declaration."""
    node = _find_table(tree)
    if node is None:
        return [], []
    try:
        raw = ast.literal_eval(node.value)
        tables = _validate(raw, path)
    except (ValueError, SyntaxError, TypeError, KeyError) as exc:
        finding = Finding(
            rule="TBL001",
            path=path,
            line=node.lineno,
            message=f"malformed {_TABLE_NAME}: {exc}",
        )
        return [], [finding]
    return tables, []


def _find_table(tree: ast.Module) -> Optional[ast.Assign]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == _TABLE_NAME
            for target in stmt.targets
        ):
            return stmt
    return None


def _validate(raw: object, path: str) -> List[GuardTable]:
    if not isinstance(raw, dict):
        raise ValueError("table must be a dict of class name -> spec")
    tables: List[GuardTable] = []
    for owner, spec in sorted(raw.items()):
        if not isinstance(owner, str) or not isinstance(spec, dict):
            raise ValueError("each entry must map a class name to a spec dict")
        unknown = sorted(set(spec) - {"scope", "attrs", "calls", "exempt"})
        if unknown:
            raise ValueError(f"{owner}: unknown spec keys {unknown}")
        scope = spec.get("scope", "module")
        if scope not in ("module", "tree"):
            raise ValueError(f"{owner}: scope must be 'module' or 'tree'")
        attrs: Dict[str, Tuple[str, ...]] = {}
        for name, bumps in sorted(spec.get("attrs", {}).items()):
            attrs[str(name)] = _bump_tuple(owner, name, bumps)
        calls: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for key, bumps in sorted(spec.get("calls", {}).items()):
            receiver, sep, method = str(key).partition(".")
            if not sep or not receiver or not method:
                raise ValueError(f"{owner}: call key {key!r} must be 'receiver.method'")
            calls[(receiver, method)] = _bump_tuple(owner, key, bumps)
        if not attrs and not calls:
            raise ValueError(f"{owner}: spec guards nothing")
        tables.append(
            GuardTable(
                owner=owner,
                source_path=path,
                scope=scope,
                attrs=attrs,
                calls=calls,
                exempt=tuple(str(name) for name in spec.get("exempt", [])),
            )
        )
    return tables


def _bump_tuple(owner: str, key: object, bumps: object) -> Tuple[str, ...]:
    if (
        not isinstance(bumps, list)
        or not bumps
        or not all(isinstance(bump, str) for bump in bumps)
    ):
        raise ValueError(f"{owner}: bumps for {key!r} must be a non-empty string list")
    return tuple(bumps)


# ---------------------------------------------------------------- checking
class CoherenceChecker:
    """Checks one module against the applicable guard tables."""

    def __init__(self, tree: ast.Module, path: str, tables: List[GuardTable]) -> None:
        self._tree = tree
        self._path = path
        self._tables = tables
        self._findings: List[Finding] = []

    def run(self) -> List[Finding]:
        if not self._tables:
            return []
        for node in ast.walk(self._tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
        return self._findings

    def _check_function(self, func: ast.AST) -> None:
        name = func.name
        if name in _AUTO_EXEMPT:
            return
        tables = [table for table in self._tables if name not in table.exempt]
        if not tables:
            return
        parent_stmts = _statement_parents(func)
        for node in ast.walk(func):
            for table, what, bumps in self._guarded_mutations(node, tables):
                missing = [
                    bump
                    for bump in bumps
                    if not _bump_on_path(node, bump, func, parent_stmts)
                ]
                if missing:
                    self._findings.append(
                        Finding(
                            rule="COH001",
                            path=self._path,
                            line=getattr(node, "lineno", func.lineno),
                            message=(
                                f"{what} in {name}() without bumping "
                                f"{', '.join(missing)} on the same control-flow "
                                f"path ({table.owner} invariant, declared in "
                                f"{table.source_path})"
                            ),
                        )
                    )

    def _guarded_mutations(self, node: ast.AST, tables: List[GuardTable]):
        """Yield (table, description, required-bumps) for guarded events."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    for table in tables:
                        bumps = table.attrs.get(target.attr)
                        # Storing the counter itself is the bump, not a guarded
                        # mutation, even when names collide across tables.
                        if bumps and target.attr not in bumps:
                            yield table, f"store to .{target.attr}", bumps
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    for table in tables:
                        bumps = table.attrs.get(target.attr)
                        if bumps:
                            yield table, f"del .{target.attr}", bumps
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            receiver_name = None
            if isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            if receiver_name is not None:
                for table in tables:
                    bumps = table.calls.get((receiver_name, method))
                    if bumps:
                        yield table, f"{receiver_name}.{method}() call", bumps


def _statement_parents(func: ast.AST) -> Dict[int, ast.stmt]:
    """Map every AST node (by id) to its nearest enclosing statement."""
    parents: Dict[int, ast.stmt] = {}

    def visit(node: ast.AST, enclosing: Optional[ast.stmt]) -> None:
        current = node if isinstance(node, ast.stmt) else enclosing
        for child in ast.iter_child_nodes(node):
            if current is not None:
                parents[id(child)] = current
            visit(child, current)

    visit(func, None)
    return parents


def _enclosing_chain(
    node: ast.AST, func: ast.AST, parent_stmts: Dict[int, ast.stmt]
) -> List[ast.stmt]:
    """The statement ancestors of ``node`` inside ``func``, innermost first."""
    chain: List[ast.stmt] = []
    current: Optional[ast.AST] = node
    if isinstance(node, ast.stmt):
        chain.append(node)
    while True:
        parent = parent_stmts.get(id(current))
        if parent is None or parent is current:
            break
        chain.append(parent)
        current = parent
    return chain


def _statement_lists(owner: ast.AST) -> List[List[ast.stmt]]:
    """The direct statement lists of one compound statement (or function)."""
    lists = []
    for field_name in ("body", "orelse", "finalbody"):
        stmts = getattr(owner, field_name, None)
        if isinstance(stmts, list) and stmts and isinstance(stmts[0], ast.stmt):
            lists.append(stmts)
    for handler in getattr(owner, "handlers", []) or []:
        lists.append(handler.body)
    return lists


def _bump_on_path(
    node: ast.AST, bump: str, func: ast.AST, parent_stmts: Dict[int, ast.stmt]
) -> bool:
    """True if a ``bump`` statement shares an unconditional path with ``node``.

    A bump qualifies when it appears (anywhere inside a statement) in the
    statement list holding the mutation, or in any enclosing statement list
    up to the function body — those lists execute whenever the mutation's
    list is entered.  A bump nested in a *different* branch never qualifies.
    """
    chain = _enclosing_chain(node, func, parent_stmts)
    if not chain:
        return False
    chain_ids = {id(stmt) for stmt in chain}
    for owner in [func] + list(chain):
        for stmt_list in _statement_lists(owner):
            # Only lists that actually lie on the mutation's chain count
            # (e.g. the else-branch of an enclosing `if` does not).
            if not any(id(stmt) in chain_ids for stmt in stmt_list):
                continue
            for stmt in stmt_list:
                if id(stmt) in chain_ids:
                    # The mutation's own statement may also contain the bump
                    # (single-statement mutate+bump helpers).
                    if stmt is chain[0] and _contains_bump(stmt, bump):
                        return True
                    continue
                # A bump hidden inside a sibling branch/loop is conditional
                # and does not count; only statements that execute whenever
                # this list is entered qualify.
                if isinstance(
                    stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)
                ):
                    continue
                if _contains_bump(stmt, bump):
                    return True
    return False


def _contains_bump(stmt: ast.stmt, bump: str) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == bump:
                    return True
                if isinstance(target, ast.Name) and target.id == bump:
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == bump:
                return True
            if isinstance(func, ast.Name) and func.id == bump:
                return True
    return False
