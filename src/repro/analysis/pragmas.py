"""``# det: ok(<reason>)`` pragma handling.

A pragma suppresses determinism/coherence findings *on its own physical
line* (the line of the flagged expression; for multi-line statements, put it
on the line the report names).  The reason is mandatory — a pragma is a
reviewed claim that the flagged construct cannot perturb exported results,
and the claim must be stated so the next reader can re-check it.  Pragmas
that suppress nothing are reported as stale under ``--strict``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.findings import Finding

#: Accepts the pragma with a parenthesised reason, and the reason-less form
#: (which is flagged).  Only real COMMENT tokens are scanned, so the pattern
#: appearing inside a string literal (docs, help text) is never a pragma.
_PRAGMA_RE = re.compile(r"#\s*det:\s*ok\s*(?:\((?P<reason>[^()]*)\))?")


@dataclass
class PragmaMap:
    """Pragma lines of one source file, with use tracking."""

    path: str
    #: line number -> reason text ("" when the reason is missing).
    reasons: Dict[int, str] = field(default_factory=dict)
    used: Set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str) -> "PragmaMap":
        pragmas = cls(path=path)
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA_RE.search(token.string)
                if match:
                    pragmas.reasons[token.start[0]] = (
                        match.group("reason") or ""
                    ).strip()
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Unparseable files already yield a PAR001 finding; pragma-less
            # is the safe interpretation here.
            pass
        return pragmas

    def suppresses(self, line: int) -> bool:
        """True (and mark the pragma used) if ``line`` carries a pragma."""
        if line in self.reasons:
            self.used.add(line)
            return True
        return False

    def lint(self, strict: bool) -> List[Finding]:
        """Pragma hygiene findings: missing reasons, and stale pragmas."""
        findings = [
            Finding(
                rule="PRG001",
                path=self.path,
                line=line,
                message="det pragma needs a reason: `# det: ok(<why this is safe>)`",
            )
            for line, reason in sorted(self.reasons.items())
            if not reason
        ]
        if strict:
            findings.extend(
                Finding(
                    rule="PRG002",
                    path=self.path,
                    line=line,
                    message="stale det pragma: it suppressed no finding",
                )
                for line in sorted(self.reasons)
                if line not in self.used and self.reasons[line]
            )
        return findings
