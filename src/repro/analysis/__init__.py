"""Static determinism & cache-coherence analyzer, plus the runtime shakeout.

The repo's core guarantee — byte-identical exports across hash seeds,
engine-on/off modes and multiprocessing fan-out — was previously enforced
only dynamically, by re-running whole scenarios in the CI determinism
matrix.  This package moves the common failure modes to lint time:

* **determinism rules** (``DET001``-``DET005``): unseeded entropy sources,
  wall-clock reads, iteration over unordered sets, ``id()`` in orderings,
  builtin ``hash()``;
* **cache-coherence rule** (``COH001``): guarded mutations must bump their
  declared version/epoch counter on the same control-flow path, driven by
  ``CACHE_INVARIANTS`` tables declared next to the caches they protect;
* **order-shakeout sanitizer** (:mod:`repro.analysis.shakeout`): seeded
  order-perturbing set proxies, enabled with ``REPRO_SHAKEOUT=1``, that
  dynamically flush out ordering dependencies the static pass exempted.

Run it as ``python -m repro.analysis src/ --strict`` (exit codes: 0 clean,
1 findings, 2 internal error).  See the README's "Determinism invariants"
section for the pragma and invariant-table how-to.
"""

from repro.analysis.findings import RULES, Finding, sort_findings
from repro.analysis.runner import run_paths
from repro.analysis.shakeout import ShakeoutSet, shakeout_enabled, tracked_set

__all__ = [
    "Finding",
    "RULES",
    "ShakeoutSet",
    "run_paths",
    "shakeout_enabled",
    "sort_findings",
    "tracked_set",
]
