"""Lightweight per-module set-type inference for the iteration-order rule.

The unsorted-iteration rule only fires on expressions the inferencer *knows*
are unordered — ``set``/``frozenset`` values and dicts keyed from sets — so
unknown types never produce noise.  Knowledge comes from four places:

* literal/constructor expressions (``{…}``, ``set(…)``, ``frozenset(…)``,
  set operators, ``.union(…)`` et al., the shakeout ``tracked_set``);
* annotations (``Set[int]``, ``set[int]``, dataclass fields, parameters);
* local assignment tracking inside each function;
* instance-attribute assignments anywhere in the module (``self.failed =
  set()`` makes ``<anything>.failed`` set-typed module-wide — attribute
  names inside one module are assumed not to pun between set and non-set,
  and a conflict downgrades the name to unknown).

What static inference cannot see (cross-module attribute types, values
flowing through calls) the runtime shakeout sanitizer covers dynamically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

#: expr_kind results.
SET = "set"
SETKEYED = "setkeyed"  # a dict whose keys were produced by set iteration
NONSET = "nonset"

_SET_CONSTRUCTORS = {"set", "frozenset", "tracked_set"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_ANNOTATIONS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "MutableSet",
    "AbstractSet",
}
#: Constructors that definitely yield an ordered (non-set) value; an
#: assignment through one of these clears a name's set-typedness.
_ORDERED_CONSTRUCTORS = {"sorted", "list", "tuple", "dict"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    """SET when an annotation names a set type (through Optional/Union too)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return SET if annotation.id in _SET_ANNOTATIONS else None
    if isinstance(annotation, ast.Attribute):
        return SET if annotation.attr in _SET_ANNOTATIONS else None
    if isinstance(annotation, ast.Subscript):
        base = _annotation_kind(annotation.value)
        if base is not None:
            return base
        # Optional[Set[int]] / Union[Set[int], None]
        slices: Iterable[ast.expr]
        if isinstance(annotation.slice, ast.Tuple):
            slices = annotation.slice.elts
        else:
            slices = (annotation.slice,)
        for element in slices:
            if _annotation_kind(element) is not None:
                return SET
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # PEP 604 unions: set[int] | None
        if _annotation_kind(annotation.left) or _annotation_kind(annotation.right):
            return SET
    return None


class SetTypeInference:
    """Set-type knowledge for one module's AST."""

    def __init__(self, tree: ast.Module) -> None:
        #: attribute name -> SET / SETKEYED, merged over every class in the
        #: module (conflicting evidence removes the name).
        self.attr_kinds: Dict[str, str] = {}
        self._collect_attrs(tree)

    # -------------------------------------------------------------- attributes
    def _note_attr(self, name: str, kind: Optional[str]) -> None:
        if kind in (SET, SETKEYED):
            existing = self.attr_kinds.get(name)
            if existing is not None and existing != kind:
                del self.attr_kinds[name]
            else:
                self.attr_kinds[name] = kind
        elif kind == NONSET and name in self.attr_kinds:
            del self.attr_kinds[name]

    def _collect_attrs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    # dataclass fields: `sent_filter: Set[int] = field(...)`
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        self._note_attr(
                            stmt.target.id, _annotation_kind(stmt.annotation)
                        )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                kind = _annotation_kind(node.annotation)
                if kind is None and node.value is not None:
                    kind = self.expr_kind(node.value, {})
                self._note_attr(node.target.attr, kind)
            elif isinstance(node, ast.Assign):
                kind = self.expr_kind(node.value, {})
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self._note_attr(target.attr, kind)

    # ------------------------------------------------------------------ locals
    def function_env(self, func: ast.AST) -> Dict[str, str]:
        """name -> kind for the locals (and parameters) of one function."""
        env: Dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                kind = _annotation_kind(arg.annotation)
                if kind is not None:
                    env[arg.arg] = kind
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                kind = _annotation_kind(node.annotation)
                if kind is None and node.value is not None:
                    kind = self.expr_kind(node.value, env) or NONSET
                self._note_local(env, node.target.id, kind)
            elif isinstance(node, ast.Assign):
                kind = self.expr_kind(node.value, env) or self._definite_nonset(
                    node.value
                )
                if kind is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._note_local(env, target.id, kind)
        return env

    @staticmethod
    def _note_local(env: Dict[str, str], name: str, kind: Optional[str]) -> None:
        if kind in (SET, SETKEYED):
            # Mixed evidence (set on one path, ordered on another) downgrades
            # to unknown rather than flagging a possibly-ordered value.
            env[name] = NONSET if env.get(name) == NONSET else kind
        elif kind == NONSET:
            env[name] = NONSET

    @staticmethod
    def _definite_nonset(node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.ListComp, ast.DictComp)):
            return NONSET
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDERED_CONSTRUCTORS
        ):
            return NONSET
        return None

    # ------------------------------------------------------------- expressions
    def expr_kind(self, node: ast.expr, env: Dict[str, str]) -> Optional[str]:
        """SET / SETKEYED when the expression is known-unordered, else None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return SET
        if isinstance(node, ast.Name):
            kind = env.get(node.id)
            return kind if kind in (SET, SETKEYED) else None
        if isinstance(node, ast.Attribute):
            return self.attr_kinds.get(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return SET
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_CONSTRUCTORS:
                    return SET  # shakeout.tracked_set(...)
                if func.attr == "fromkeys" and node.args:
                    first = node.args[0]
                    if self.expr_kind(first, env) == SET:
                        return SETKEYED
                if func.attr in _SET_METHODS:
                    if self.expr_kind(func.value, env) == SET:
                        return SET
                if func.attr in ("keys", "values", "items") and (
                    self.expr_kind(func.value, env) == SETKEYED
                ):
                    return SET  # iterating a set-keyed dict's views
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left = self.expr_kind(node.left, env)
            right = self.expr_kind(node.right, env)
            if SET in (left, right):
                return SET
            return None
        if isinstance(node, ast.IfExp):
            return self.expr_kind(node.body, env) or self.expr_kind(node.orelse, env)
        if isinstance(node, ast.DictComp):
            first = node.generators[0].iter if node.generators else None
            if first is not None and self.expr_kind(first, env) == SET:
                return SETKEYED
            return None
        return None
