"""CLI for the determinism & cache-coherence analyzer.

Usage::

    python -m repro.analysis src/ [--strict] [--root DIR] [--tables]

``--strict`` additionally fails on stale pragmas (ones that suppressed
nothing), which is what the CI ``lint-determinism`` job runs.  ``--tables``
prints every registered cache invariant instead of scanning.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.report import EXIT_INTERNAL, exit_code, render_report
from repro.analysis.runner import (
    collect_guard_summary,
    discover_files,
    find_root,
    run_paths,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static determinism & cache-coherence analyzer",
    )
    parser.add_argument("paths", nargs="+", type=Path, help="files or directories to scan")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale `# det: ok` pragmas that suppressed nothing",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root holding pyproject.toml (default: auto-detected)",
    )
    parser.add_argument(
        "--tables",
        action="store_true",
        help="list registered CACHE_INVARIANTS instead of scanning",
    )
    args = parser.parse_args(argv)
    try:
        if args.tables:
            summary = collect_guard_summary(args.paths, root=args.root)
            for owner in sorted(summary):
                print(owner)
                for guarded in summary[owner]:
                    print(f"  {guarded}")
            return 0
        root = args.root or find_root([path.resolve() for path in args.paths])
        config = load_config(root)
        findings = run_paths(args.paths, root=root, strict=args.strict, config=config)
        scanned = len(discover_files([path.resolve() for path in args.paths], config))
        print(render_report(findings, scanned))
        return exit_code(findings)
    except Exception:  # noqa: BLE001 - the CLI boundary maps crashes to exit 2
        traceback.print_exc()
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
