"""Analyzer driver: file discovery, two-phase scan, pragma filtering.

Phase one parses every file and collects ``CACHE_INVARIANTS`` declarations
(tree-scoped tables apply everywhere, module-scoped ones only at home).
Phase two runs the determinism and coherence rules per file, drops findings
suppressed by a same-line ``# det: ok(reason)`` pragma, then appends pragma
hygiene findings (missing reasons always; stale pragmas under strict).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.coherence import CoherenceChecker, GuardTable, load_tables
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.pragmas import PragmaMap


@dataclass
class _ParsedFile:
    path: Path
    display: str
    tree: Optional[ast.Module]
    pragmas: PragmaMap
    tables: List[GuardTable]
    findings: List[Finding]


def discover_files(paths: List[Path], config: AnalysisConfig) -> List[Path]:
    """All scannable .py files under the given paths, sorted for stability."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(candidate for candidate in path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    unique = sorted({file.resolve() for file in files})
    return [file for file in unique if not config.is_excluded(file)]


def run_paths(
    paths: List[Path],
    root: Optional[Path] = None,
    strict: bool = False,
    config: Optional[AnalysisConfig] = None,
) -> List[Finding]:
    """Analyze ``paths`` and return every finding, report-ordered."""
    if root is None:
        root = find_root(paths)
    if config is None:
        config = load_config(root)
    files = discover_files([path.resolve() for path in paths], config)

    parsed: List[_ParsedFile] = []
    tree_tables: List[GuardTable] = []
    for file in files:
        display = _display_path(file, root)
        source = file.read_text(encoding="utf-8")
        pragmas = PragmaMap.parse(display, source)
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            parsed.append(
                _ParsedFile(
                    path=file,
                    display=display,
                    tree=None,
                    pragmas=pragmas,
                    tables=[],
                    findings=[
                        Finding(
                            rule="PAR001",
                            path=display,
                            line=exc.lineno or 1,
                            message=f"syntax error: {exc.msg}",
                        )
                    ],
                )
            )
            continue
        tables, table_findings = load_tables(tree, display)
        tree_tables.extend(table for table in tables if table.scope == "tree")
        parsed.append(
            _ParsedFile(
                path=file,
                display=display,
                tree=tree,
                pragmas=pragmas,
                tables=tables,
                findings=table_findings,
            )
        )

    findings: List[Finding] = []
    for entry in parsed:
        findings.extend(entry.findings)
        if entry.tree is None:
            continue
        disabled = config.disabled_rules(entry.path)
        raw: List[Finding] = []
        raw.extend(DeterminismChecker(entry.tree, entry.display, disabled).run())
        if "COH001" not in disabled:
            applicable = list(entry.tables)
            applicable.extend(
                table
                for table in tree_tables
                if table.source_path != entry.display
            )
            raw.extend(CoherenceChecker(entry.tree, entry.display, applicable).run())
        findings.extend(
            finding for finding in raw if not entry.pragmas.suppresses(finding.line)
        )
        findings.extend(entry.pragmas.lint(strict))
    return sort_findings(findings)


def find_root(paths: List[Path]) -> Path:
    """Walk up from the first path to the directory holding pyproject.toml."""
    start = paths[0].resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in [start] + list(start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def _display_path(file: Path, root: Path) -> str:
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.as_posix()


def collect_guard_summary(paths: List[Path], root: Optional[Path] = None) -> Dict[str, Tuple[str, ...]]:
    """owner class -> guarded attribute/call names (for --tables output)."""
    if root is None:
        root = find_root(paths)
    config = load_config(root)
    summary: Dict[str, Tuple[str, ...]] = {}
    for file in discover_files([path.resolve() for path in paths], config):
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        tables, _ = load_tables(tree, _display_path(file, root))
        for table in tables:
            guarded = tuple(sorted(table.attrs)) + tuple(
                ".".join(key) for key in sorted(table.calls)
            )
            summary[f"{table.owner} ({table.source_path})"] = guarded
    return summary
