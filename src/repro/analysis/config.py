"""Analyzer scoping configuration (``[tool.repro-analysis]`` in pyproject).

Three tiers of scrutiny, keyed by repo-root-relative path prefix:

* **strict** — simulation code; every rule applies;
* **relaxed** — harness/figure/benchmark code; the rules listed in
  ``relaxed-disable`` are skipped (wall-clock use is legitimate there);
* **excluded** — not scanned at all.

Plus a per-file ``allow`` table mapping a file to rule ids it may violate
without a pragma (the sanctioned ``SeededRng`` wrapper is the canonical
entry).  Python 3.10 has no ``tomllib``, so a minimal TOML-subset reader
backs the loader there; the subset covers exactly what this section uses
(string keys, string values, arrays of strings, sub-tables).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import RULES

_SECTION = "repro-analysis"


@dataclass
class AnalysisConfig:
    """Resolved scoping configuration for one analyzer run."""

    root: Path
    strict_paths: Tuple[str, ...] = ("src/repro",)
    relaxed_paths: Tuple[str, ...] = ("scripts", "benchmarks", "examples")
    relaxed_disable: Tuple[str, ...] = ("DET002",)
    exclude: Tuple[str, ...] = ("tests",)
    #: repo-relative path -> rule ids that file may break without a pragma.
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rule in list(self.relaxed_disable) + [
            rule for rules in sorted(self.allow.items()) for rule in rules[1]
        ]:
            if rule not in RULES:
                raise ValueError(f"unknown rule id in config: {rule}")

    # ------------------------------------------------------------------ tiers
    def _relative(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _has_prefix(self, relative: str, prefixes: Tuple[str, ...]) -> bool:
        return any(
            relative == prefix or relative.startswith(prefix.rstrip("/") + "/")
            for prefix in prefixes
        )

    def disabled_rules(self, path: Path) -> Tuple[str, ...]:
        """Rule ids that do not apply to ``path`` (tier + allow table)."""
        relative = self._relative(path)
        disabled: List[str] = []
        if self._has_prefix(relative, self.relaxed_paths) and not self._has_prefix(
            relative, self.strict_paths
        ):
            disabled.extend(self.relaxed_disable)
        disabled.extend(self.allow.get(relative, ()))
        return tuple(disabled)

    def is_excluded(self, path: Path) -> bool:
        return self._has_prefix(self._relative(path), self.exclude)


# ------------------------------------------------------------------- loading
def load_config(root: Path, pyproject: Optional[Path] = None) -> AnalysisConfig:
    """Load ``[tool.repro-analysis]`` from pyproject.toml, with defaults.

    A missing file or missing section yields the defaults above, which match
    the committed pyproject so the analyzer behaves the same inside and
    outside the repo checkout.
    """
    if pyproject is None:
        pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return AnalysisConfig(root=root)
    table = _read_tool_section(pyproject)
    if table is None:
        return AnalysisConfig(root=root)
    allow_raw = table.get("allow", {})
    if not isinstance(allow_raw, dict):
        raise ValueError("[tool.repro-analysis.allow] must be a table")
    return AnalysisConfig(
        root=root,
        strict_paths=_str_tuple(table, "strict-paths", ("src/repro",)),
        relaxed_paths=_str_tuple(
            table, "relaxed-paths", ("scripts", "benchmarks", "examples")
        ),
        relaxed_disable=_str_tuple(table, "relaxed-disable", ("DET002",)),
        exclude=_str_tuple(table, "exclude", ("tests",)),
        allow={
            str(path): tuple(str(rule) for rule in rules)
            for path, rules in sorted(allow_raw.items())
        },
    )


def _str_tuple(table: dict, key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
    value = table.get(key)
    if value is None:
        return default
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise ValueError(f"[tool.{_SECTION}] {key} must be an array of strings")
    return tuple(value)


def _read_tool_section(pyproject: Path) -> Optional[dict]:
    """The ``[tool.repro-analysis]`` table as a plain dict, or ``None``."""
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        return _fallback_parse(text)
    data = tomllib.loads(text)
    tool = data.get("tool", {})
    section = tool.get(_SECTION)
    return section if isinstance(section, dict) else None


def _fallback_parse(text: str) -> Optional[dict]:
    """Minimal TOML-subset reader for the repro-analysis section (py3.10).

    Handles ``key = "string"``, ``key = [array, of, strings]`` (including
    multi-line arrays) and the ``[tool.repro-analysis.allow]`` sub-table.
    Anything fancier in *our* section is a config error; other sections are
    skipped wholesale.
    """
    section: Optional[dict] = None
    current: Optional[dict] = None
    pending_key: Optional[str] = None
    pending_lines: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None:
            pending_lines.append(line)
            joined = " ".join(pending_lines)
            if _balanced(joined):
                assert current is not None
                current[pending_key] = _parse_value(joined, pending_key)
                pending_key, pending_lines = None, []
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            header = line.strip("[]").strip().strip('"')
            if header == f"tool.{_SECTION}":
                section = {} if section is None else section
                current = section
            elif header.startswith(f"tool.{_SECTION}."):
                sub = header[len(f"tool.{_SECTION}.") :]
                section = {} if section is None else section
                current = section.setdefault(sub, {})
            else:
                current = None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if _balanced(value):
            current[key] = _parse_value(value, key)
        else:
            pending_key, pending_lines = key, [value]
    return section


def _balanced(value: str) -> bool:
    return value.count("[") == value.count("]")


def _parse_value(value: str, key: str):
    value = value.split("#", 1)[0].strip() if not value.startswith('"') else value
    try:
        # TOML string/array-of-string literals are valid Python literals.
        parsed = ast.literal_eval(value)
    except (ValueError, SyntaxError) as exc:
        raise ValueError(f"[tool.{_SECTION}] cannot parse value for {key!r}") from exc
    return parsed
