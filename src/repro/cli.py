"""Command-line interface for running reproduction experiments.

``python -m repro.cli run --system bullet --nodes 50 --duration 300`` runs
one scenario and prints the headline numbers; ``--csv`` additionally writes
the bandwidth-over-time series for plotting.  ``python -m repro.cli figure 7``
regenerates a specific paper figure at a chosen scale.  ``python -m repro.cli
sweep --systems bullet,stream --seeds 1,2,3`` runs a parameter sweep as a
(optionally parallel) batch and prints mean / 95% CI per configuration.

The ``run`` and ``sweep`` commands accept any system in the pluggable
registry (:mod:`repro.experiments.registry`), so systems registered by
third-party code are runnable from here without CLI changes.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Optional, Sequence

from repro.experiments.batch import sweep
from repro.experiments.export import plain_value, write_aggregate_csv, write_result_csv
from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure9_bandwidth_sweep,
    figure10_nondisjoint,
    figure11_epidemic,
    figure12_lossy,
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
    figure15_planetlab,
    headline_metrics,
)
from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.experiments.registry import available_systems
from repro.experiments.workloads import (
    SCALE_SCENARIOS,
    scale_scenario_names,
    scenario_config,
)
from repro.report import (
    CATALOG,
    TIER_NAMES,
    TIERS,
    ReproducePlan,
    expectation_failures,
    run_reproduction,
)
from repro.report.docs import DEFAULT_DOC, refresh_timing_table
from repro.report.manifest import load_timing
from repro.topology.links import BandwidthClass

_FIGURES = {
    "6": figure6_tree_streaming,
    "7": figure7_bullet_random_tree,
    "8": figure8_bandwidth_cdf,
    "9": figure9_bandwidth_sweep,
    "10": figure10_nondisjoint,
    "11": figure11_epidemic,
    "12": figure12_lossy,
    "13": figure13_failure_no_recovery,
    "14": figure14_failure_with_recovery,
    "15": figure15_planetlab,
    "headline": headline_metrics,
}

_EPILOG = (
    "The full experiment catalog, expected wall-clock per tier and how to"
    " read the generated report are documented in docs/REPRODUCTION.md."
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bullet (SOSP 2003) reproduction experiments",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment scenario")
    run.add_argument("--system", choices=available_systems(), default=None,
                     help="system under test (default bullet)")
    run.add_argument("--scenario", choices=scale_scenario_names(), default=None,
                     help="start from a scale-scenario preset (see the"
                     " 'scenarios' command); --nodes/--duration/--seed/"
                     "--churn/--solver/--engines (and the per-engine"
                     " overrides) override preset values, other base flags"
                     " are rejected")
    run.add_argument("--tree", choices=["random", "bottleneck", "overcast"], default=None,
                     help="overlay tree construction (default random)")
    run.add_argument("--nodes", type=int, default=None, help="overlay size (default 50)")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (default 200)")
    run.add_argument("--rate", type=float, default=None,
                     help="stream rate in Kbps (default 600)")
    run.add_argument("--bandwidth", choices=["low", "medium", "high"], default=None,
                     help="Table 1 bandwidth class (default medium)")
    run.add_argument("--lossy", action="store_true", help="apply the Section 4.5 loss model")
    run.add_argument("--fail-at", type=float, default=None,
                     help="fail the worst-case node at this time (seconds)")
    run.add_argument("--churn", type=int, default=None,
                     help="fail this many random receivers spread over the run")
    run.add_argument("--joins", type=int, default=None,
                     help="join this many new receivers mid-run (flash crowd)")
    run.add_argument("--solver", choices=["max_min", "single_pass"], default="max_min")
    run.add_argument("--engines", choices=["legacy", "incremental"], default=None,
                     help="engine mode: 'incremental' (default; all four"
                     " incremental engines on) or 'legacy' (the byte-identical"
                     " from-scratch reference mode for all four)")
    run.add_argument("--no-incremental", action="store_true",
                     help="DEPRECATED (use --engines legacy): force a"
                     " from-scratch bandwidth solve every step")
    run.add_argument("--no-incremental-protocol", action="store_true",
                     help="DEPRECATED (use --engines legacy): force the"
                     " from-scratch protocol plane (Bloom rebuilds and full"
                     " refresh installs every period)")
    run.add_argument("--no-routing-engine", action="store_true",
                     help="DEPRECATED (use --engines legacy): force the"
                     " legacy per-pair networkx path resolution instead of"
                     " the amortized routing engine")
    run.add_argument("--no-step-engine", action="store_true",
                     help="DEPRECATED (use --engines legacy): force the"
                     " legacy every-node-every-step loop instead of the"
                     " quiescence-aware step core (wakeups plus vectorized"
                     " per-flow batches)")
    run.add_argument("--cluster-size", type=int, default=None,
                     help="target cluster size for hierarchical systems"
                     " (e.g. bullet-clustered; default 50)")
    run.add_argument("--shard-workers", type=int, default=None,
                     help="step cluster interiors and their heads' mesh state"
                     " in this many parallel worker processes (hierarchical"
                     " systems; 1 = serial, byte-identical to sharded)")
    run.add_argument("--hierarchy-levels", type=int, default=None,
                     help="clustering depth for hierarchical systems: 1 (flat"
                     " mesh), 2 (leaf clusters under mesh heads; default) or"
                     " 3 (head groups of leaf clusters, for 100k-node runs)")
    run.add_argument("--latency-estimator", choices=["exact", "landmark"],
                     default=None,
                     help="RTT source for head election, join routing and"
                     " mesh peer scoring: 'exact' underlay routing (default)"
                     " or seeded 'landmark' coordinates (O(landmarks) per"
                     " pair instead of O(pairs))")
    run.add_argument("--seed", type=int, default=None, help="root seed (default 1)")
    run.add_argument("--csv", type=str, default=None, help="write bandwidth series to this CSV")
    run.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    scenarios = sub.add_parser("scenarios", help="list the scale scenario presets")
    scenarios.add_argument("--json", action="store_true")

    figure = sub.add_parser("figure", help="regenerate one paper figure", epilog=_EPILOG)
    figure.add_argument("number", choices=list(_FIGURES), help="figure number (or 'headline')")
    figure.add_argument("--nodes", type=int, default=40,
                        help="overlay size (ignored by figure 15, which uses"
                        " the PlanetLab-style fixed topology)")
    figure.add_argument("--duration", type=float, default=200.0)
    figure.add_argument("--seed", type=int, default=1)

    reproduce = sub.add_parser(
        "reproduce",
        help="run the full evaluation catalog and render the report",
        description="Drive every registered experiment (figures 6-15, Table 1,"
        " the ablations, the cross-system matrix and the scale/churn scenario"
        " pack) into results/<run-id>/ and render a markdown + HTML report"
        " comparing the four systems against paper-expected ranges.  Runs are"
        " resumable: already-complete experiments are skipped unless"
        " --no-resume is given.",
        epilog=_EPILOG,
    )
    reproduce.add_argument("--tier", choices=list(TIER_NAMES), default="smoke",
                           help="experiment scale: smoke (CI, ~1 min), paper"
                           " (paper-comparable), scale (500 nodes)")
    reproduce.add_argument("--only", default=None, metavar="ID1,ID2",
                           help="run only these catalog experiments (see --list)")
    reproduce.add_argument("--out", default="results",
                           help="results root directory (default: results/)")
    reproduce.add_argument("--run-id", default=None,
                           help="results subdirectory name (default: the tier name)")
    reproduce.add_argument("--stability", type=int, default=1, metavar="N",
                           help="run every experiment across N consecutive seeds"
                           " and report mean / std / Student-t 95%% CI per metric")
    reproduce.add_argument("--workers", type=int, default=1,
                           help="fan batch experiments out over this many processes")
    reproduce.add_argument("--seed", type=int, default=None,
                           help="base seed override (default: the tier's seed)")
    reproduce.add_argument("--no-resume", action="store_true",
                           help="re-run experiments even when the manifest"
                           " already records them as complete")
    reproduce.add_argument("--list", action="store_true",
                           help="list the experiment catalog and exit")
    reproduce.add_argument("--strict-expectations", action="store_true",
                           help="exit non-zero when any paper expectation fails")
    reproduce.add_argument("--refresh-docs", action="store_true",
                           help="rewrite the measured-timing table in"
                           " docs/REPRODUCTION.md from this run's timing.json")
    reproduce.add_argument("--json", action="store_true",
                           help="print a JSON run summary instead of text")

    sweep_cmd = sub.add_parser(
        "sweep", help="run a systems × parameters × seeds batch and aggregate"
    )
    sweep_cmd.add_argument(
        "--systems", default="bullet",
        help="comma-separated system names (any registered system)",
    )
    sweep_cmd.add_argument(
        "--seeds", default="1",
        help="comma-separated seeds; aggregates report mean/CI across them",
    )
    sweep_cmd.add_argument(
        "--param", action="append", default=[], metavar="NAME=V1,V2",
        help="sweep an ExperimentConfig field over comma-separated values"
        " (repeatable)",
    )
    sweep_cmd.add_argument("--scenario", choices=scale_scenario_names(), default=None,
                           help="use a scale-scenario preset as the sweep's"
                           " base config (other base flags are ignored)")
    sweep_cmd.add_argument("--tree", choices=["random", "bottleneck", "overcast"],
                           default="random")
    sweep_cmd.add_argument("--nodes", type=int, default=30)
    sweep_cmd.add_argument("--duration", type=float, default=120.0)
    sweep_cmd.add_argument("--rate", type=float, default=600.0)
    sweep_cmd.add_argument("--bandwidth", choices=["low", "medium", "high"], default="medium")
    sweep_cmd.add_argument("--lossy", action="store_true")
    sweep_cmd.add_argument("--workers", type=int, default=1,
                           help="fan runs out over this many processes")
    sweep_cmd.add_argument("--metric", default="average_useful_kbps",
                           help="ExperimentResult attribute to aggregate")
    sweep_cmd.add_argument("--csv", type=str, default=None,
                           help="write the aggregate table to this CSV")
    sweep_cmd.add_argument("--json", action="store_true")
    return parser


def _print_result(result: ExperimentResult, as_json: bool) -> None:
    summary = {
        "average_useful_kbps": round(result.average_useful_kbps, 1),
        "duplicate_ratio": round(result.duplicate_ratio, 4),
        "control_overhead_kbps": round(result.control_overhead_kbps, 2),
        "link_stress_avg": round(result.link_stress_avg, 2),
        "link_stress_max": result.link_stress_max,
    }
    if as_json:
        print(json.dumps(summary, indent=2))
        return
    print("results")
    for key, value in summary.items():
        print(f"  {key:<24}: {value}")


_DEPRECATED_ENGINE_FLAGS = (
    ("no_incremental", "--no-incremental", "incremental_allocation"),
    ("no_incremental_protocol", "--no-incremental-protocol", "incremental_protocol"),
    ("no_routing_engine", "--no-routing-engine", "routing_engine"),
    ("no_step_engine", "--no-step-engine", "step_engine"),
)


def _engine_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """Engine-mode config kwargs from the CLI flags.

    ``--engines legacy|incremental`` is the consolidated selector; the old
    ``--no-*`` flags remain as deprecated per-engine overrides (a warning
    goes to stderr, never stdout, so JSON/CSV output stays clean).  Only
    flags the user actually passed produce kwargs, so they compose with
    ``--engines`` and scenario presets instead of silently resetting them.
    """
    overrides: Dict[str, object] = {}
    if args.engines is not None:
        overrides["engines"] = args.engines
    for attr, flag, field_name in _DEPRECATED_ENGINE_FLAGS:
        if getattr(args, attr):
            with warnings.catch_warnings():
                # The default filter drops DeprecationWarning outside
                # __main__; a CLI user passing the flag must always see it.
                warnings.simplefilter("always", DeprecationWarning)
                warnings.warn(
                    f"{flag} is deprecated; use --engines legacy"
                    f" (or the {field_name} config field)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            overrides[field_name] = False
    return overrides


def _validate_hierarchy_flags(args: argparse.Namespace) -> None:
    """Range-check the hierarchy knobs before any config is built.

    Bad values exit with the same usage-error ergonomics as unknown catalog
    ids: ``error: ...`` on stderr, exit code 2, the valid range spelled out.
    """
    if args.shard_workers is not None and args.shard_workers < 1:
        raise ValueError(
            f"--shard-workers must be >= 1 (1 steps serially, >= 2 forks"
            f" that many shard workers); got {args.shard_workers}"
        )
    if args.hierarchy_levels is not None and not 1 <= args.hierarchy_levels <= 3:
        raise ValueError(
            f"--hierarchy-levels must be between 1 and 3 (1 = flat mesh,"
            f" 2 = leaf clusters, 3 = head groups); got {args.hierarchy_levels}"
        )


def _command_run(args: argparse.Namespace) -> int:
    _validate_hierarchy_flags(args)
    if args.scenario is not None:
        fixed_by_preset = [
            ("--system", args.system is not None),
            ("--tree", args.tree is not None),
            ("--rate", args.rate is not None),
            ("--bandwidth", args.bandwidth is not None),
            ("--lossy", args.lossy),
            ("--fail-at", args.fail_at is not None),
        ]
        conflicts = [flag for flag, given in fixed_by_preset if given]
        if conflicts:
            raise SystemExit(
                f"--scenario presets fix {', '.join(conflicts)}; only"
                " --nodes/--duration/--seed/--churn/--joins/--solver/"
                "--engines (plus the deprecated --no-* engine flags)/"
                "--cluster-size/--shard-workers/--hierarchy-levels/"
                "--latency-estimator can override a preset"
            )
        overrides: Dict[str, object] = {"solver": args.solver}
        overrides.update(_engine_overrides(args))
        if args.nodes is not None:
            overrides["n_overlay"] = args.nodes
        if args.duration is not None:
            overrides["duration_s"] = args.duration
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.churn is not None:
            overrides["churn_failures"] = args.churn
        if args.joins is not None:
            overrides["churn_joins"] = args.joins
        if args.cluster_size is not None:
            overrides["cluster_size"] = args.cluster_size
        if args.shard_workers is not None:
            overrides["shard_workers"] = args.shard_workers
        if args.hierarchy_levels is not None:
            overrides["hierarchy_levels"] = args.hierarchy_levels
        if args.latency_estimator is not None:
            overrides["latency_estimator"] = args.latency_estimator
        config = scenario_config(args.scenario, **overrides)
    else:
        config = ExperimentConfig(
            system=args.system if args.system is not None else "bullet",
            tree_kind=args.tree if args.tree is not None else "random",
            n_overlay=args.nodes if args.nodes is not None else 50,
            duration_s=args.duration if args.duration is not None else 200.0,
            stream_rate_kbps=args.rate if args.rate is not None else 600.0,
            bandwidth_class=BandwidthClass(args.bandwidth or "medium"),
            lossy=args.lossy,
            failure_at_s=args.fail_at,
            churn_failures=args.churn if args.churn is not None else 0,
            churn_joins=args.joins if args.joins is not None else 0,
            solver=args.solver,
            cluster_size=args.cluster_size if args.cluster_size is not None else 50,
            shard_workers=args.shard_workers if args.shard_workers is not None else 0,
            hierarchy_levels=(
                args.hierarchy_levels if args.hierarchy_levels is not None else 2
            ),
            latency_estimator=(
                args.latency_estimator if args.latency_estimator is not None else "exact"
            ),
            seed=args.seed if args.seed is not None else 1,
            **_engine_overrides(args),
        )
    result = run_experiment(config)
    _print_result(result, as_json=args.json)
    if args.csv:
        path = write_result_csv(args.csv, result)
        print(f"series written to {path}")
    return 0


def _summarize(value: object) -> object:
    """Reduce figure-runner output to something printable."""
    if isinstance(value, (int, float)):
        return round(float(value), 2)
    if isinstance(value, list):
        return f"<series with {len(value)} points>"
    if isinstance(value, dict):
        return {key: _summarize(inner) for key, inner in value.items()}
    return str(type(value).__name__)


def _command_figure(args: argparse.Namespace) -> int:
    runner = _FIGURES[args.number]
    if args.number == "15":
        # Figure 15 replays the PlanetLab-style run on its fixed topology;
        # it has no overlay-size knob.
        data = runner(duration_s=args.duration, seed=args.seed)
    else:
        scale = FigureScale(n_overlay=args.nodes, duration_s=args.duration, seed=args.seed)
        data = runner(scale)
    printable = {key: _summarize(value) for key, value in data.items() if key != "result"}
    print(json.dumps(printable, indent=2))
    return 0


def _coerce_value(name: str, text: str) -> object:
    """Parse a swept parameter value with sensible typing."""
    if name == "bandwidth_class":
        try:
            return BandwidthClass(text)
        except ValueError:
            choices = ", ".join(cls.value for cls in BandwidthClass)
            raise SystemExit(
                f"unknown bandwidth class {text!r}; choose from: {choices}"
            )
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _parse_params(specs: Sequence[str]) -> Dict[str, List[object]]:
    parameters: Dict[str, List[object]] = {}
    for spec in specs:
        name, separator, values = spec.partition("=")
        name = name.strip()
        if not separator or not name or not values:
            raise SystemExit(f"--param expects NAME=V1,V2,... (got {spec!r})")
        if name in ("system", "seed"):
            raise SystemExit(
                f"--param cannot sweep {name!r}; use --systems / --seeds instead"
            )
        parameters[name] = [
            _coerce_value(name, value.strip()) for value in values.split(",")
        ]
    return parameters


def _command_scenarios(args: argparse.Namespace) -> int:
    if args.json:
        payload = {
            name: {
                "description": scenario.description,
                "config": {
                    key: plain_value(value)
                    for key, value in scenario.overrides.items()
                },
            }
            for name, scenario in sorted(SCALE_SCENARIOS.items())
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("scale scenarios (run with: repro run --scenario NAME)")
    for name, scenario in sorted(SCALE_SCENARIOS.items()):
        print(f"  {name:<14} {scenario.description}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    systems = [name.strip() for name in args.systems.split(",") if name.strip()]
    if not systems:
        raise SystemExit("--systems needs at least one system name")
    seeds = [int(value) for value in args.seeds.split(",") if value.strip()]
    parameters: Dict[str, List[object]] = {"system": systems}
    parameters.update(_parse_params(args.param))

    if args.scenario is not None:
        base = scenario_config(args.scenario, seed=seeds[0] if seeds else 1)
    else:
        base = ExperimentConfig(
            system=systems[0],
            tree_kind=args.tree,
            n_overlay=args.nodes,
            duration_s=args.duration,
            stream_rate_kbps=args.rate,
            bandwidth_class=BandwidthClass(args.bandwidth),
            lossy=args.lossy,
            seed=seeds[0] if seeds else 1,
        )
    try:
        results = sweep(base, parameters, seeds=seeds, workers=args.workers)
        rows = results.aggregate(args.metric, by=tuple(parameters))
    except ValueError as error:
        raise SystemExit(f"sweep failed: {error}")
    except AttributeError:
        raise SystemExit(
            f"unknown metric {args.metric!r}; use an ExperimentResult attribute"
            " such as average_useful_kbps, duplicate_ratio or"
            " control_overhead_kbps"
        )

    if args.json:
        payload = [
            {
                "group": {name: plain_value(value) for name, value in row.group},
                "metric": row.metric,
                "n": row.n,
                "mean": row.mean,
                "std": row.std,
                "ci95": row.ci95,
            }
            for row in rows
        ]
        print(json.dumps(payload, indent=2))
    else:
        label = " ".join(name for name in parameters)
        print(f"sweep over {label} — {args.metric}, {len(seeds)} seed(s)")
        print(f"  {'configuration':<40} {'mean':>10} {'±95% CI':>10} {'n':>4}")
        for row in rows:
            name = ", ".join(f"{k}={plain_value(v)}" for k, v in row.group)
            print(f"  {name:<40} {row.mean:>10.1f} {row.ci95:>10.1f} {row.n:>4}")
    if args.csv:
        path = write_aggregate_csv(args.csv, rows)
        print(f"aggregates written to {path}")
    return 0


def _print_catalog() -> None:
    print(f"experiment catalog ({len(CATALOG)} entries; run with:"
          " repro reproduce --only ID1,ID2)")
    print(f"  {'#':>2} {'id':<18} {'paper ref':<20} title")
    for entry in CATALOG:
        print(f"  {entry.number:>2} {entry.id:<18} {entry.paper_ref:<20} {entry.title}")


def _command_reproduce(args: argparse.Namespace) -> int:
    if args.list:
        _print_catalog()
        return 0
    only = None
    if args.only is not None:
        only = [token.strip() for token in args.only.split(",") if token.strip()]
        if not only:
            raise SystemExit("--only expects a comma-separated list of experiment ids")
    plan = ReproducePlan(
        tier=args.tier,
        out_dir=args.out,
        run_id=args.run_id,
        only=only,
        stability=args.stability,
        workers=args.workers,
        seed=args.seed,
        resume=not args.no_resume,
    )
    tier = TIERS[args.tier]
    say = (lambda _line: None) if args.json else print
    say(f"reproduce: tier {tier.name} ({tier.description})"
        f" -> {plan.results_dir}")
    run = run_reproduction(plan, progress=say)

    failures = expectation_failures(run.manifest)
    if args.refresh_docs:
        timing = load_timing(run.results_dir)
        changed = refresh_timing_table(DEFAULT_DOC, run.manifest, timing)
        say(f"{DEFAULT_DOC}: timing table"
            f" {'refreshed' if changed else 'already up to date'}")
    if args.json:
        print(json.dumps({
            "results_dir": str(run.results_dir),
            "completed": run.completed,
            "skipped": run.skipped,
            "failed": run.failed,
            "expectation_failures": failures,
            "report_markdown": str(run.report_markdown),
            "report_html": str(run.report_html),
        }, indent=2))
    else:
        say(f"{len(run.completed)} complete, {len(run.skipped)} skipped,"
            f" {len(run.failed)} failed")
        for line in failures:
            say(f"  expectation FAIL - {line}")
    if run.failed:
        return 1
    if args.strict_expectations and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    commands = {
        "run": _command_run,
        "sweep": _command_sweep,
        "scenarios": _command_scenarios,
        "figure": _command_figure,
        "reproduce": _command_reproduce,
    }
    try:
        return commands[args.command](args)
    except ValueError as error:
        # Configuration errors (bad --only ids, invalid ExperimentConfig
        # values, unknown scenario names) are usage errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
