"""Command-line interface for running reproduction experiments.

``python -m repro.cli run --system bullet --nodes 50 --duration 300`` runs
one scenario and prints the headline numbers; ``--csv`` additionally writes
the bandwidth-over-time series for plotting.  ``python -m repro.cli figure 7``
regenerates a specific paper figure at a chosen scale.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.export import write_result_csv
from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure9_bandwidth_sweep,
    figure10_nondisjoint,
    figure11_epidemic,
    figure12_lossy,
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
    figure15_planetlab,
    headline_metrics,
)
from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.topology.links import BandwidthClass

_FIGURES = {
    "6": figure6_tree_streaming,
    "7": figure7_bullet_random_tree,
    "8": figure8_bandwidth_cdf,
    "9": figure9_bandwidth_sweep,
    "10": figure10_nondisjoint,
    "11": figure11_epidemic,
    "12": figure12_lossy,
    "13": figure13_failure_no_recovery,
    "14": figure14_failure_with_recovery,
    "headline": headline_metrics,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Bullet (SOSP 2003) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment scenario")
    run.add_argument("--system", choices=["bullet", "stream", "gossip", "antientropy"],
                     default="bullet")
    run.add_argument("--tree", choices=["random", "bottleneck", "overcast"], default="random")
    run.add_argument("--nodes", type=int, default=50)
    run.add_argument("--duration", type=float, default=200.0)
    run.add_argument("--rate", type=float, default=600.0, help="stream rate in Kbps")
    run.add_argument("--bandwidth", choices=["low", "medium", "high"], default="medium")
    run.add_argument("--lossy", action="store_true", help="apply the Section 4.5 loss model")
    run.add_argument("--fail-at", type=float, default=None,
                     help="fail the worst-case node at this time (seconds)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--csv", type=str, default=None, help="write bandwidth series to this CSV")
    run.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("number", choices=sorted(_FIGURES), help="figure number (or 'headline')")
    figure.add_argument("--nodes", type=int, default=40)
    figure.add_argument("--duration", type=float, default=200.0)
    figure.add_argument("--seed", type=int, default=1)
    return parser


def _print_result(result: ExperimentResult, as_json: bool) -> None:
    summary = {
        "average_useful_kbps": round(result.average_useful_kbps, 1),
        "duplicate_ratio": round(result.duplicate_ratio, 4),
        "control_overhead_kbps": round(result.control_overhead_kbps, 2),
        "link_stress_avg": round(result.link_stress_avg, 2),
        "link_stress_max": result.link_stress_max,
    }
    if as_json:
        print(json.dumps(summary, indent=2))
        return
    print("results")
    for key, value in summary.items():
        print(f"  {key:<24}: {value}")


def _command_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        system=args.system,
        tree_kind=args.tree,
        n_overlay=args.nodes,
        duration_s=args.duration,
        stream_rate_kbps=args.rate,
        bandwidth_class=BandwidthClass(args.bandwidth),
        lossy=args.lossy,
        failure_at_s=args.fail_at,
        seed=args.seed,
    )
    result = run_experiment(config)
    _print_result(result, as_json=args.json)
    if args.csv:
        path = write_result_csv(args.csv, result)
        print(f"series written to {path}")
    return 0


def _summarize(value: object) -> object:
    """Reduce figure-runner output to something printable."""
    if isinstance(value, (int, float)):
        return round(float(value), 2)
    if isinstance(value, list):
        return f"<series with {len(value)} points>"
    if isinstance(value, dict):
        return {key: _summarize(inner) for key, inner in value.items()}
    return str(type(value).__name__)


def _command_figure(args: argparse.Namespace) -> int:
    runner = _FIGURES[args.number]
    if args.number == "headline" or args.number in {"6", "7", "8", "9", "10", "11", "12", "13", "14"}:
        scale = FigureScale(n_overlay=args.nodes, duration_s=args.duration, seed=args.seed)
        data = runner(scale)
    else:  # pragma: no cover - only figure 15 takes keyword arguments
        data = runner(duration_s=args.duration, seed=args.seed)
    printable = {key: _summarize(value) for key, value in data.items() if key != "result"}
    print(json.dumps(printable, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    return _command_figure(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
