"""Failure injection for the Section 4.6 experiments."""

from repro.failure.injector import FailureEvent, FailureInjector, worst_case_victim

__all__ = ["FailureEvent", "FailureInjector", "worst_case_victim"]
