"""Membership-event injection: failures (Section 4.6) and mid-run joins.

The paper fails one of the root's children — the child with a large subtree
(110 of 1000 descendants in the paper) — 250 seconds into the run, with the
underlying tree deliberately left unrepaired.  The injector encapsulates
"pick the worst-case victim" and "fail it at time T" so experiments stay
declarative.

Joins are the symmetric operation: a flash-crowd scenario schedules batches
of new participants that call the system's ``add_node`` while the stream is
live, so the overlay (and its protocol state — RanSub membership, recovery
peerings) genuinely grows mid-run rather than being modeled as a cold-start
ramp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.network.events import EventScheduler
from repro.trees.tree import OverlayTree


class SupportsFailNode(Protocol):
    """Any protocol driver that can fail a participant (BulletMesh, TreeStreaming)."""

    def fail_node(self, node: int) -> None:  # pragma: no cover - protocol definition
        ...


class SupportsAddNode(Protocol):
    """Any protocol driver that can grow its membership mid-run."""

    def add_node(self, node: int) -> int:  # pragma: no cover - protocol definition
        ...


@dataclass
class FailureEvent:
    """One scheduled failure."""

    node: int
    at_time_s: float
    fired: bool = False


@dataclass
class JoinEvent:
    """One scheduled mid-run join."""

    node: int
    at_time_s: float
    fired: bool = False


def worst_case_victim(tree: OverlayTree) -> int:
    """The root child with the largest subtree — the paper's worst-case failure."""
    children = tree.children(tree.root)
    if not children:
        raise ValueError("the root has no children to fail")
    return max(children, key=lambda child: (tree.descendant_count(child), -child))


def targeted_victims(tree: OverlayTree, count: int) -> list[int]:
    """The ``count`` most-depended-upon non-root members, worst first.

    The adversarial churn strategy: instead of sampling uniformly, fail the
    nodes whose departure orphans the largest subtrees (ties broken by the
    smaller node id, so the selection is deterministic).  This is the
    generalization of :func:`worst_case_victim` from "the root's worst child"
    to "the overlay's ``count`` worst interior nodes".
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    members = [node for node in tree.members() if node != tree.root]
    members.sort(key=lambda node: (-tree.descendant_count(node), node))
    return members[:count]


def targeted_victims_for(system, tree: Optional[OverlayTree]) -> list[int]:
    """The full most-depended-upon-first ordering for ``system``.

    Flat tree-based systems are ranked by dissemination-tree subtree size
    (:func:`targeted_victims`).  Hierarchical systems do not have one flat
    tree per node — a cluster head's blast radius is its whole cluster plus
    every cluster downstream of it in the head mesh — so systems exposing
    ``targeted_victim_order()`` (e.g. the clustered Bullet overlay) supply
    their own head/interior-aware ordering and it is used as-is.
    """
    order = getattr(system, "targeted_victim_order", None)
    if order is not None:
        return list(order())
    if tree is None:
        raise ValueError(
            "churn_strategy='targeted' requires a tree-based system or one"
            " exposing targeted_victim_order() (subtree sizes define who is"
            " most depended upon)"
        )
    return targeted_victims(tree, len(tree.members()))


class FailureInjector:
    """Schedules membership events (failures and joins) against a driver."""

    def __init__(self, driver: SupportsFailNode) -> None:
        self.driver = driver
        self.scheduler = EventScheduler()
        self.events: list[FailureEvent] = []
        self.join_events: list[JoinEvent] = []

    def schedule_failure(self, node: int, at_time_s: float) -> FailureEvent:
        """Fail ``node`` once the simulation clock reaches ``at_time_s``."""
        event = FailureEvent(node=node, at_time_s=at_time_s)
        self.events.append(event)

        def fire() -> None:
            self.driver.fail_node(node)
            event.fired = True

        self.scheduler.schedule(at_time_s, fire)
        return event

    def schedule_join(
        self,
        node: int,
        at_time_s: float,
        prepare: Optional[Callable[[int], None]] = None,
    ) -> JoinEvent:
        """Join ``node`` once the simulation clock reaches ``at_time_s``.

        The driver must implement ``add_node`` (see :class:`SupportsAddNode`).
        ``prepare``, when given, runs immediately before the join fires —
        the session uses it to pre-warm the joiner's underlay routes so the
        join itself never computes paths inside the step loop.
        """
        add_node = getattr(self.driver, "add_node", None)
        if add_node is None:
            raise ValueError(
                f"driver {type(self.driver).__name__} does not support add_node"
            )
        event = JoinEvent(node=node, at_time_s=at_time_s)
        self.join_events.append(event)

        def fire() -> None:
            if prepare is not None:
                prepare(node)
            add_node(node)
            event.fired = True

        self.scheduler.schedule(at_time_s, fire)
        return event

    def schedule_worst_case(self, tree: OverlayTree, at_time_s: float) -> FailureEvent:
        """Schedule the paper's worst-case failure: the largest root subtree."""
        return self.schedule_failure(worst_case_victim(tree), at_time_s)

    def tick(self, now: float) -> int:
        """Fire any due failures; returns how many fired."""
        return self.scheduler.run_due(now)

    def next_event_time(self) -> Optional[float]:
        """When the earliest still-pending event fires (``None`` when drained).

        This is the injector's wakeup deadline under the step engine: steps
        before it skip the tick (and the pending-event bookkeeping) entirely.
        """
        return self.scheduler.next_time()

    def pending(self) -> int:
        """Failures not yet fired."""
        return self.scheduler.pending()
