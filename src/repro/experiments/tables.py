"""Programmatic runners for the paper's tables.

Table 1 is configuration rather than measurement: the published bandwidth
ranges per physical link class for each of the three bandwidth settings.
:func:`table1_bandwidth_ranges` generates one topology per setting, verifies
every link honours its published range and reports the generated mean per
class — the same check the benchmark test makes, now returning structured
results the reproduction pipeline can export.
"""

from __future__ import annotations

from typing import Dict

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.links import TABLE_1_RANGES, BandwidthClass, LinkType


def table1_bandwidth_ranges(seed: int = 1) -> Dict[str, object]:
    """Verify generated topologies against Table 1's published ranges.

    Returns, per bandwidth class and link type: the published (low, high)
    range, the generated mean capacity, and whether every individual link of
    that type fell inside the range.  ``all_within_ranges`` aggregates the
    verdict over the whole table.
    """
    by_class: Dict[str, Dict[str, Dict[str, object]]] = {}
    all_ok = True
    for bandwidth_class in BandwidthClass:
        topology = generate_topology(
            TopologyConfig(
                transit_routers=4,
                stub_domains=10,
                routers_per_stub=3,
                clients_per_stub=6,
                bandwidth_class=bandwidth_class,
                seed=seed,
            )
        )
        rows: Dict[str, Dict[str, object]] = {}
        for link_type in LinkType:
            low, high = TABLE_1_RANGES[bandwidth_class][link_type]
            links = topology.links_of_type(link_type)
            mean = sum(link.capacity_kbps for link in links) / len(links)
            within = all(low <= link.capacity_kbps <= high for link in links)
            all_ok = all_ok and within and low <= mean <= high
            rows[link_type.value] = {
                "range_kbps": [low, high],
                "mean_kbps": mean,
                "n_links": len(links),
                "within_range": within,
            }
        by_class[bandwidth_class.value] = rows
    return {"by_class": by_class, "all_within_ranges": all_ok}
