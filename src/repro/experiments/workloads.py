"""Workload construction: topologies, participant placement and overlay trees.

Every evaluation scenario in the paper starts the same way: generate a
topology, constrain its link bandwidths (Table 1 class), optionally add loss
(Section 4.5), place overlay participants on random client hosts, pick a
random source, and build the overlay tree under test (random, offline
bottleneck, or hand-crafted for PlanetLab).  This module packages those steps
so the harness and the benchmarks stay declarative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional

from repro.topology.generator import TopologyConfig, generate_topology, place_overlay_participants
from repro.topology.graph import Topology
from repro.topology.links import BandwidthClass
from repro.topology.loss import LossConfig, apply_loss_model
from repro.topology.planetlab import (
    PlanetLabConfig,
    PlanetLabTopology,
    build_good_tree,
    build_worst_tree,
    generate_planetlab,
)
from repro.trees.bottleneck_tree import build_bottleneck_tree
from repro.trees.overcast import build_overcast_tree
from repro.trees.random_tree import build_random_tree
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng

#: Overlay tree kinds the harness knows how to build.
TREE_KINDS = ("random", "bottleneck", "overcast")


@dataclass
class Workload:
    """A fully prepared evaluation scenario."""

    topology: Topology
    participants: List[int]
    source: int
    tree: OverlayTree
    bandwidth_class: BandwidthClass
    lossy: bool

    @property
    def receivers(self) -> List[int]:
        """Participants other than the source."""
        return [node for node in self.participants if node != self.source]


def scaled_topology_config(
    n_overlay: int, bandwidth_class: BandwidthClass, seed: int
) -> TopologyConfig:
    """A topology sized for ``n_overlay`` participants.

    The sizing keeps the *contention level* of the paper's setup rather than
    its node count: the paper multiplexes 1000 participants onto stub domains
    whose transit uplinks cannot carry the full stream to every local
    participant at the constrained bandwidth settings.  We therefore pack
    roughly four participants per stub domain (clients_per_stub = 6 with a
    ~25% placement surplus), so a domain's Transit-Stub uplink — 1-4 Mbps at
    the medium setting — is genuinely contended by the 600 Kbps stream, which
    is what makes "medium" mean "slightly not sufficient" as in the paper.
    """
    if n_overlay < 2:
        raise ValueError("need at least a source and one receiver")
    clients_per_stub = 6
    stub_domains = max(4, math.ceil(1.25 * n_overlay / clients_per_stub))
    transit_routers = max(3, stub_domains // 6)
    return TopologyConfig(
        transit_routers=transit_routers,
        stub_domains=stub_domains,
        routers_per_stub=3,
        clients_per_stub=clients_per_stub,
        extra_stub_stub_links=max(3, stub_domains // 5),
        bandwidth_class=bandwidth_class,
        seed=seed,
    )


def build_workload(
    n_overlay: int = 60,
    bandwidth_class: BandwidthClass = BandwidthClass.MEDIUM,
    tree_kind: str = "random",
    lossy: bool = False,
    loss_config: Optional[LossConfig] = None,
    seed: int = 1,
    max_fanout: int = 4,
    topology_config: Optional[TopologyConfig] = None,
    routing_engine: bool = True,
) -> Workload:
    """Prepare a transit-stub scenario: topology, placement, source and tree.

    ``routing_engine=False`` pins the topology to the legacy per-pair
    networkx path resolution *before* any tree construction touches it, so a
    legacy-mode run never benefits from engine-side amortization.
    """
    if tree_kind not in TREE_KINDS:
        raise ValueError(f"tree_kind must be one of {TREE_KINDS}")
    config = topology_config or scaled_topology_config(n_overlay, bandwidth_class, seed)
    topology = generate_topology(config)
    topology.use_routing_engine = routing_engine
    if lossy:
        apply_loss_model(topology, loss_config or LossConfig(seed=seed))
    participants = place_overlay_participants(topology, n_overlay, seed=seed)
    rng = SeededRng(seed, "workload")
    source = rng.choice(participants)

    if tree_kind == "random":
        tree = build_random_tree(source, participants, max_fanout=max_fanout, seed=seed)
    elif tree_kind == "bottleneck":
        tree = build_bottleneck_tree(topology, source, participants, max_fanout=max_fanout)
    else:
        tree = build_overcast_tree(topology, source, participants, max_fanout=max_fanout, seed=seed)

    return Workload(
        topology=topology,
        participants=participants,
        source=source,
        tree=tree,
        bandwidth_class=bandwidth_class,
        lossy=lossy,
    )


def build_workload_for(config) -> Workload:
    """Build the transit-stub workload an ExperimentConfig describes.

    ``config`` is duck-typed: anything carrying ``n_overlay``,
    ``bandwidth_class``, ``tree_kind``, ``lossy``, ``seed`` and ``max_fanout``
    works, so custom config objects can reuse the standard workload pipeline.
    A config that schedules mid-run joins (``churn_joins``) gets a topology
    sized for the *grown* overlay, so the joiners have spare client hosts to
    occupy and the contention level at full size matches a from-the-start
    run of the same total.
    """
    joins = int(getattr(config, "churn_joins", 0) or 0)
    topology_config = None
    if joins > 0:
        topology_config = scaled_topology_config(
            config.n_overlay + joins, config.bandwidth_class, config.seed
        )
    return build_workload(
        n_overlay=config.n_overlay,
        bandwidth_class=config.bandwidth_class,
        tree_kind=config.tree_kind,
        lossy=config.lossy,
        seed=config.seed,
        max_fanout=config.max_fanout,
        topology_config=topology_config,
        routing_engine=getattr(config, "routing_engine", True),
    )


# ------------------------------------------------------------- scale scenarios
@dataclass(frozen=True)
class ScaleScenario:
    """A named large-scale evaluation preset (see :data:`SCALE_SCENARIOS`)."""

    name: str
    description: str
    overrides: Mapping[str, object]


def _scenario(name: str, description: str, **overrides: object) -> ScaleScenario:
    return ScaleScenario(
        name=name, description=description, overrides=MappingProxyType(overrides)
    )


#: The scale scenario pack: presets that push the simulator toward (and past)
#: the paper's 1000-node setting, runnable through ``repro.cli run/sweep
#: --scenario`` and :func:`scenario_config`.  All of them lean on the
#: incremental allocation engine; the from-scratch solver makes the larger
#: ones impractically slow.
SCALE_SCENARIOS: Dict[str, ScaleScenario] = {
    scenario.name: scenario
    for scenario in (
        _scenario(
            "scale-500",
            "500-node Bullet over a medium transit-stub topology (half the"
            " paper's scale), steady-state dissemination",
            system="bullet",
            n_overlay=500,
            duration_s=300.0,
        ),
        _scenario(
            "scale-1000",
            "the paper's 1000-node scale: Bullet over a ~2500-node"
            " transit-stub topology",
            system="bullet",
            n_overlay=1000,
            duration_s=300.0,
        ),
        _scenario(
            "scale-10000",
            "an order of magnitude past the paper: 10000 receivers in a"
            " two-level clustered overlay (bullet-clustered) — ~80 cluster"
            " heads run the full Bullet mesh while cluster interiors ride"
            " cheap intra-cluster trees, stepped in parallel shard workers",
            system="bullet-clustered",
            n_overlay=10000,
            cluster_size=125,
            shard_workers=4,
            duration_s=240.0,
        ),
        _scenario(
            "scale-100000",
            "two orders of magnitude past the paper: 100000 receivers in a"
            " three-level clustered overlay — ~800 leaf-cluster heads are"
            " grouped under ~8 super-heads that alone run the full Bullet"
            " mesh, head state steps inside the shard workers next to their"
            " interiors, and peer scoring uses seeded landmark coordinates"
            " instead of exact per-pair routing",
            system="bullet-clustered",
            n_overlay=100000,
            cluster_size=125,
            hierarchy_levels=3,
            latency_estimator="landmark",
            shard_workers=4,
            duration_s=180.0,
        ),
        _scenario(
            "flash-crowd",
            "flash-crowd join: a 100-node overlay is hit by 400 receivers"
            " joining mid-run over a 30-second window; fine-grained sampling"
            " captures the ramp while the mesh absorbs them",
            system="bullet",
            n_overlay=100,
            churn_joins=400,
            join_start_s=30.0,
            join_duration_s=30.0,
            duration_s=180.0,
            sample_interval_s=2.0,
        ),
        _scenario(
            "churn-heavy",
            "churn-heavy dissemination: 60 of 300 receivers depart at a"
            " steady rate while the stream is live and the mesh re-peers"
            " around them",
            system="bullet",
            n_overlay=300,
            duration_s=300.0,
            churn_failures=60,
            churn_start_s=60.0,
        ),
        _scenario(
            "churn-adversarial",
            "adversarial churn: the 40 most-depended-upon interior nodes of"
            " a 300-node overlay (largest dissemination subtrees) are failed"
            " in order of impact, modelling a targeted attack or correlated"
            " failure of the overlay's backbone while the mesh routes"
            " around it",
            system="bullet",
            n_overlay=300,
            duration_s=300.0,
            churn_failures=40,
            churn_strategy="targeted",
            churn_start_s=60.0,
        ),
    )
}


def scale_scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    return sorted(SCALE_SCENARIOS)


def scenario_config(name: str, **overrides: object):
    """Build the :class:`ExperimentConfig` for a named scale scenario.

    Keyword overrides replace scenario values (``seed=7`` for replication,
    or ``n_overlay=40, duration_s=60`` for smoke-testing a scenario's shape
    at reduced scale).
    """
    try:
        scenario = SCALE_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(scale_scenario_names())}"
        ) from None
    from repro.experiments.harness import ExperimentConfig

    parameters = dict(scenario.overrides)
    parameters.update(overrides)
    return ExperimentConfig(**parameters)


@dataclass
class PlanetLabWorkload:
    """The Section 4.7 scenario: testbed plus the hand-crafted trees."""

    testbed: PlanetLabTopology
    good_tree: OverlayTree
    worst_tree: OverlayTree
    random_tree: OverlayTree

    @property
    def topology(self) -> Topology:
        """The underlying physical topology."""
        return self.testbed.topology

    @property
    def source(self) -> int:
        """The (possibly constrained) source node."""
        return self.testbed.root


def build_planetlab_workload(
    config: Optional[PlanetLabConfig] = None, seed: int = 7, max_fanout: int = 3
) -> PlanetLabWorkload:
    """Prepare the PlanetLab-like scenario with good, worst and random trees."""
    testbed = generate_planetlab(config or PlanetLabConfig(seed=seed))
    good = OverlayTree(testbed.root, build_good_tree(testbed, fanout=max_fanout))
    worst = OverlayTree(testbed.root, build_worst_tree(testbed, fanout=max_fanout))
    random_tree = build_random_tree(testbed.root, testbed.sites, max_fanout=max_fanout, seed=seed)
    return PlanetLabWorkload(
        testbed=testbed, good_tree=good, worst_tree=worst, random_tree=random_tree
    )
