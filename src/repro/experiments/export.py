"""Export experiment results to CSV for external plotting.

The paper's figures are bandwidth-versus-time curves and one CDF; this module
writes :class:`~repro.experiments.harness.ExperimentResult` objects (or the
dictionaries returned by the per-figure runners) into plain CSV files so they
can be plotted with any tool (gnuplot, matplotlib, a spreadsheet) without the
library taking a plotting dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.experiments.harness import ExperimentResult

TimeSeries = Sequence[Tuple[float, float]]
PathLike = Union[str, Path]


def write_time_series_csv(
    path: PathLike, series_by_name: Mapping[str, TimeSeries]
) -> Path:
    """Write several named time series into one CSV with a shared time column.

    Rows are the union of all timestamps; a series missing a timestamp gets an
    empty cell.  Returns the written path.
    """
    if not series_by_name:
        raise ValueError("need at least one series to export")
    path = Path(path)
    timestamps = sorted({t for series in series_by_name.values() for t, _ in series})
    lookup: Dict[str, Dict[float, float]] = {
        name: dict(series) for name, series in series_by_name.items()
    }
    names = list(series_by_name)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s"] + names)
        for t in timestamps:
            row: List[object] = [t]
            for name in names:
                value = lookup[name].get(t)
                row.append("" if value is None else value)
            writer.writerow(row)
    return path


def write_cdf_csv(path: PathLike, cdf: Sequence[Tuple[float, float]]) -> Path:
    """Write CDF points (value, cumulative fraction) to CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bandwidth_kbps", "fraction_of_nodes"])
        for value, fraction in cdf:
            writer.writerow([value, fraction])
    return path


def write_result_csv(path: PathLike, result: ExperimentResult) -> Path:
    """Write an ExperimentResult's four bandwidth series to one CSV."""
    return write_time_series_csv(
        path,
        {
            "useful_kbps": result.useful_series,
            "raw_kbps": result.raw_series,
            "from_parent_kbps": result.from_parent_series,
            "control_kbps": result.control_series,
        },
    )


def write_aggregate_csv(path: PathLike, rows: Sequence) -> Path:
    """Write :class:`~repro.experiments.batch.AggregateRow` objects to CSV.

    One row per aggregate group; the grouping parameters become leading
    columns (the union across rows, blank where a row lacks a parameter).
    """
    if not rows:
        raise ValueError("need at least one aggregate row to export")
    path = Path(path)
    group_names: List[str] = []
    for row in rows:
        for name, _ in row.group:
            if name not in group_names:
                group_names.append(name)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(group_names + ["metric", "n", "mean", "std", "ci95", "min", "max"])
        for row in rows:
            group = row.group_dict
            writer.writerow(
                [plain_value(group.get(name, "")) for name in group_names]
                + [row.metric, row.n, row.mean, row.std, row.ci95, row.minimum, row.maximum]
            )
    return path


def plain_value(value: object) -> object:
    """Plain (CSV/JSON-friendly) rendering for enum-like config values."""
    return getattr(value, "value", value)


def write_summary_csv(path: PathLike, results: Mapping[str, ExperimentResult]) -> Path:
    """Write one summary row per named result (the table-style comparisons)."""
    if not results:
        raise ValueError("need at least one result to export")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "name",
                "average_useful_kbps",
                "duplicate_ratio",
                "control_overhead_kbps",
                "link_stress_avg",
                "link_stress_max",
            ]
        )
        for name, result in results.items():
            writer.writerow(
                [
                    name,
                    result.average_useful_kbps,
                    result.duplicate_ratio,
                    result.control_overhead_kbps,
                    result.link_stress_avg,
                    result.link_stress_max,
                ]
            )
    return path
