"""Experiment configuration and results, plus the classic entry points.

``run_experiment(ExperimentConfig(...))`` remains the one-call way to run an
evaluation scenario; it is now a thin wrapper over
:class:`~repro.experiments.session.ExperimentSession`, which owns the
simulate–sample–inject loop.  Systems are no longer hard-coded: the config's
``system`` field names any entry in the pluggable
:mod:`~repro.experiments.registry` (built-ins: ``bullet``, ``stream``,
``gossip``, ``antientropy``), so registering a new
:class:`~repro.experiments.registry.DisseminationSystem` makes it runnable
here, in batch sweeps and from the CLI without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import BulletConfig
from repro.experiments.metrics import SeriesSummary, steady_state_average
from repro.experiments.registry import available_systems, system_known
from repro.experiments.session import ExperimentSession
from repro.experiments.workloads import PlanetLabWorkload, build_planetlab_workload
from repro.network.fairshare import SOLVERS
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass
from repro.topology.planetlab import PlanetLabConfig


@dataclass(frozen=True)
class EngineModes:
    """Which incremental engines a run uses, as one coherent mode object.

    The four engines (dirty-region allocation, incremental protocol plane,
    routing engine, quiescence step core) each keep a byte-identical legacy
    reference mode.  Historically each was its own config boolean plus a
    ``--no-*`` CLI flag; ``EngineModes`` consolidates them: pick a named mode
    (``incremental`` — the default — or ``legacy``), then override individual
    engines if a benchmark needs a mixed mode.
    """

    allocation: bool = True
    protocol: bool = True
    routing: bool = True
    step: bool = True

    #: The named modes ``parse`` accepts (also the CLI's ``--engines`` choices).
    NAMES = ("incremental", "legacy")

    @classmethod
    def incremental(cls) -> "EngineModes":
        """Every incremental engine on — the production default."""
        return cls()

    @classmethod
    def legacy(cls) -> "EngineModes":
        """Every engine off: the byte-identical from-scratch reference mode."""
        return cls(allocation=False, protocol=False, routing=False, step=False)

    @classmethod
    def parse(cls, value: "Union[EngineModes, str, None]") -> "EngineModes":
        """Coerce a mode name / instance / None into an :class:`EngineModes`."""
        if value is None:
            return cls.incremental()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if value == "incremental":
                return cls.incremental()
            if value == "legacy":
                return cls.legacy()
            raise ValueError(
                f"unknown engine mode {value!r}; expected one of {cls.NAMES}"
            )
        raise ValueError(f"engines must be an EngineModes, mode name or None, not {value!r}")


@dataclass
class ExperimentConfig:
    """Declarative description of one evaluation run."""

    #: Which system to run: any name in the system registry (built-ins:
    #: ``bullet``, ``stream``, ``gossip``, ``antientropy``).
    system: str = "bullet"
    #: Overlay tree under the system (ignored by tree-less systems):
    #: ``random``, ``bottleneck`` or ``overcast``.
    tree_kind: str = "random"
    #: Number of overlay participants (paper: 1000; default scaled down).
    n_overlay: int = 60
    #: Table 1 bandwidth class.
    bandwidth_class: BandwidthClass = BandwidthClass.MEDIUM
    #: Source streaming rate in Kbps.
    stream_rate_kbps: float = 600.0
    #: Simulated duration in seconds.
    duration_s: float = 240.0
    #: Simulation step in seconds.
    dt: float = 1.0
    #: Interval between bandwidth samples (the figures' x-axis granularity).
    sample_interval_s: float = 5.0
    #: Apply the Section 4.5 loss model.
    lossy: bool = False
    #: Fail the worst-case node (largest root subtree) at this time, if set.
    failure_at_s: Optional[float] = None
    #: RanSub failure detection (Figure 13 disables it, Figure 14 enables it).
    ransub_failure_detection: bool = True
    #: Extra Bernoulli loss applied to every control-plane message, on top of
    #: the routing path's own loss (lossy-control-plane scenarios).  Reaches
    #: every system that routes control traffic over the ControlChannel.
    control_loss_rate: float = 0.0
    #: Bandwidth solver the simulator runs: ``max_min`` (the paper's fairness
    #: model) or ``single_pass`` (the cheaper c/n estimate), or any name
    #: registered via :func:`repro.network.fairshare.register_solver`.
    solver: str = "max_min"
    #: Consolidated engine-mode selection: an :class:`EngineModes`, a mode
    #: name (``"incremental"`` / ``"legacy"``) or ``None`` (incremental).
    #: ``__post_init__`` resolves it against the four per-engine overrides
    #: below and stores the resolved :class:`EngineModes` here.
    engines: Union[EngineModes, str, None] = None
    #: Per-engine override of ``engines``: re-solve only the flows affected
    #: by cap/membership changes each step (False forces the original
    #: from-scratch solve, kept for benchmarks).  ``None`` follows ``engines``.
    incremental_allocation: Optional[bool] = None
    #: Churn-heavy dissemination: fail this many random non-source overlay
    #: participants, spread evenly across the run (0 disables churn).  The
    #: system under test must support ``fail_node``.
    churn_failures: int = 0
    #: How churn victims are picked: ``uniform`` draws a seeded random sample
    #: of non-source participants; ``targeted`` is the adversarial mode that
    #: fails the most-depended-upon nodes first (largest subtrees under the
    #: dissemination tree), modelling an attacker or correlated failure of
    #: the overlay's most loaded interior nodes.
    churn_strategy: str = "uniform"
    #: Simulated time the first churn departure fires at (clamped into the
    #: run when a short ``duration_s`` would otherwise push churn past it).
    churn_start_s: float = 30.0
    #: Mid-run membership growth: join this many new participants while the
    #: stream is live (0 disables joins).  ``n_overlay`` is the *initial*
    #: overlay; the workload topology is sized for the grown total, and
    #: joiners are drawn deterministically from its spare client hosts.  The
    #: system under test must support ``add_node``.
    churn_joins: int = 0
    #: Simulated time the first join fires at (clamped into short runs the
    #: same way churn is).
    join_start_s: float = 20.0
    #: Window the joins are spread over, in seconds: a small value models a
    #: flash crowd, a large one steady growth.
    join_duration_s: float = 30.0
    #: Per-engine override of ``engines``: route underlay path queries
    #: through the amortized routing engine (per-source shortest-path trees,
    #: split route/attribute caches, batch warm-up at construction and
    #: joins).  False forces the legacy per-pair networkx resolution — the
    #: byte-identical reference mode kept for benchmarks and equivalence
    #: tests.  ``None`` follows ``engines``.
    routing_engine: Optional[bool] = None
    #: Quiescence-aware step core (``repro.sched``): systems and flows
    #: register wakeups instead of being polled every ``dt``, and the
    #: remaining per-flow work runs as numpy batches.  False forces the
    #: legacy every-node-every-step loop — the byte-identical reference mode
    #: kept for benchmarks and equivalence tests.  ``None`` follows
    #: ``engines``.
    step_engine: Optional[bool] = None
    #: Incremental protocol plane (versioned in-place Bloom/working-set
    #: maintenance, snapshot reuse, skip-unchanged refresh installs) for the
    #: bullet system.  False forces the pre-incremental from-scratch hot
    #: path; kept for benchmarks and equivalence tests.  Like the other
    #: bullet knobs here, this is ignored when an explicit ``bullet=``
    #: BulletConfig override is supplied — set it on that config instead.
    #: ``None`` follows ``engines``.
    incremental_protocol: Optional[bool] = None
    #: Bullet-specific overrides (peer counts, epochs, disjointness, ...).
    bullet: Optional[BulletConfig] = None
    #: Transport for the plain streaming baseline.
    transport: str = "tfrc"
    #: Target cluster size for hierarchical (clustered) systems: interiors
    #: are grouped into clusters of roughly this many members, each led by
    #: an elected head.  Ignored by flat systems.
    cluster_size: int = 50
    #: Step cluster interiors in this many parallel worker processes
    #: (``run_experiment`` dispatches to a ShardedSession when >= 2; 0 or 1
    #: is the serial mode, byte-identical to sharded).  Only hierarchical
    #: systems shard; flat systems ignore it.
    shard_workers: int = 0
    #: How many levels the clustered hierarchy builds (hierarchical systems
    #: only): 1 puts every participant straight into the mesh (flat), 2 is
    #: the classic clusters-of-interiors-under-elected-heads layout, and 3
    #: additionally groups the cluster heads into super-clusters so only the
    #: super-heads ever join the Bullet mesh (100k-node runs never
    #: materialize a flat mesh).
    hierarchy_levels: int = 2
    #: How hierarchical systems measure inter-node latency when electing
    #: heads, routing joins to the nearest cluster and scoring mesh peers:
    #: ``exact`` resolves every pair through the underlay (byte-identical to
    #: the historical behaviour), ``landmark`` uses the seeded
    #: landmark/virtual-coordinate estimator in
    #: :mod:`repro.topology.landmarks` (O(landmarks) per node instead of
    #: O(pairs)).
    latency_estimator: str = "exact"
    #: Root seed for every stochastic component of the run.
    seed: int = 1
    #: Overlay tree fanout limit used by the tree constructions.
    max_fanout: int = 4

    def __post_init__(self) -> None:
        # Resolve the consolidated engine mode against per-engine overrides:
        # an explicit True/False on an individual field wins over ``engines``;
        # ``None`` (the default) follows it.  The resolved plain booleans are
        # written back so every existing ``config.routing_engine`` read (and
        # ``dataclasses.replace`` round-trip) keeps working unchanged.
        base = EngineModes.parse(self.engines)
        self.engines = EngineModes(
            allocation=base.allocation
            if self.incremental_allocation is None
            else self.incremental_allocation,
            protocol=base.protocol
            if self.incremental_protocol is None
            else self.incremental_protocol,
            routing=base.routing if self.routing_engine is None else self.routing_engine,
            step=base.step if self.step_engine is None else self.step_engine,
        )
        self.incremental_allocation = self.engines.allocation
        self.incremental_protocol = self.engines.protocol
        self.routing_engine = self.engines.routing
        self.step_engine = self.engines.step
        if not system_known(self.system):
            raise ValueError(
                f"system must be one of {tuple(available_systems())}"
                " (or registered via repro.experiments.registry.register_system)"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.sample_interval_s < self.dt:
            raise ValueError("sample_interval_s must be >= dt")
        if not 0.0 <= self.control_loss_rate < 1.0:
            raise ValueError("control_loss_rate must be in [0, 1)")
        if self.solver not in SOLVERS:
            raise ValueError(
                f"solver must be one of {tuple(sorted(SOLVERS))}"
                " (or registered via repro.network.fairshare.register_solver)"
            )
        if self.churn_failures < 0:
            raise ValueError("churn_failures must be non-negative")
        if self.churn_strategy not in ("uniform", "targeted"):
            raise ValueError("churn_strategy must be 'uniform' or 'targeted'")
        if self.churn_start_s < 0:
            raise ValueError("churn_start_s must be non-negative")
        if self.churn_joins < 0:
            raise ValueError("churn_joins must be non-negative")
        if self.join_start_s < 0:
            raise ValueError("join_start_s must be non-negative")
        if self.join_duration_s < 0:
            raise ValueError("join_duration_s must be non-negative")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be at least 1")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be non-negative")
        if not 1 <= self.hierarchy_levels <= 3:
            raise ValueError("hierarchy_levels must be between 1 and 3")
        if self.latency_estimator not in ("exact", "landmark"):
            raise ValueError("latency_estimator must be 'exact' or 'landmark'")

    def bullet_config(self) -> BulletConfig:
        """The Bullet configuration for this run (stream rate kept in sync)."""
        if self.bullet is not None:
            return self.bullet
        return BulletConfig(
            stream_rate_kbps=self.stream_rate_kbps,
            ransub_failure_detection=self.ransub_failure_detection,
            control_loss_rate=self.control_loss_rate,
            incremental_protocol=self.incremental_protocol,
            seed=self.seed,
        )


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    config: ExperimentConfig
    useful_series: List[Tuple[float, float]]
    raw_series: List[Tuple[float, float]]
    from_parent_series: List[Tuple[float, float]]
    control_series: List[Tuple[float, float]]
    average_useful_kbps: float
    duplicate_ratio: float
    control_overhead_kbps: float
    link_stress_avg: float
    link_stress_max: int
    per_node_bandwidth_final: Dict[int, float]
    bandwidth_cdf_final: List[Tuple[float, float]]
    failure_time_s: Optional[float] = None

    def summary(self) -> SeriesSummary:
        """Plateau / peak / final summary of the useful-bandwidth series."""
        return SeriesSummary.from_series(self.useful_series)


def collect_result(
    config: ExperimentConfig,
    simulator: NetworkSimulator,
    system,
    failure_time: Optional[float] = None,
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from a driven simulator."""
    stats = simulator.stats
    receivers = system.receivers()
    duration = simulator.time
    useful = stats.time_series("useful")
    final_time = useful[-1][0] if useful else duration
    stress_avg, stress_max = stats.link_stress()
    return ExperimentResult(
        config=config,
        useful_series=useful,
        raw_series=stats.time_series("raw"),
        from_parent_series=stats.time_series("from_parent"),
        control_series=stats.time_series("control"),
        average_useful_kbps=steady_state_average(useful),
        duplicate_ratio=stats.duplicate_ratio(receivers),
        control_overhead_kbps=stats.control_overhead_kbps(receivers, duration),
        link_stress_avg=stress_avg,
        link_stress_max=stress_max,
        per_node_bandwidth_final=stats.per_node_bandwidth_at(final_time),
        bandwidth_cdf_final=stats.bandwidth_cdf_at(final_time),
        failure_time_s=failure_time,
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one transit-stub evaluation scenario end to end.

    Configs asking for sharded interior stepping (``shard_workers >= 2``)
    run through :class:`~repro.hierarchy.sharding.ShardedSession`, which is
    byte-identical to the serial session; everything else takes the plain
    :class:`ExperimentSession`.
    """
    if getattr(config, "shard_workers", 0) >= 2:
        from repro.hierarchy.sharding import ShardedSession

        return ShardedSession(config).run()
    return ExperimentSession(config).run()


def run_planetlab_experiment(
    system: str = "bullet",
    tree_kind: str = "random",
    stream_rate_kbps: float = 1500.0,
    duration_s: float = 240.0,
    dt: float = 1.0,
    sample_interval_s: float = 5.0,
    seed: int = 7,
    unconstrained_root: bool = False,
    planetlab_config: Optional[PlanetLabConfig] = None,
) -> ExperimentResult:
    """Run the Section 4.7 PlanetLab-like scenario.

    ``tree_kind`` selects the underlying tree: ``random`` (what Bullet runs
    over), ``good`` (high-bandwidth nodes near the root) or ``worst`` (the
    lowest-bandwidth nodes directly under the root).  This is simply a
    :class:`ExperimentSession` over a PlanetLab workload with a hand-picked
    tree — the drive loop and result collection are the standard ones.
    """
    if system not in ("bullet", "stream"):
        raise ValueError("the PlanetLab comparison uses bullet or stream")
    if tree_kind not in ("random", "good", "worst"):
        raise ValueError("tree_kind must be random, good or worst")
    pl_config = planetlab_config or PlanetLabConfig(seed=seed, unconstrained_root=unconstrained_root)
    workload: PlanetLabWorkload = build_planetlab_workload(pl_config, seed=seed)
    tree = {
        "random": workload.random_tree,
        "good": workload.good_tree,
        "worst": workload.worst_tree,
    }[tree_kind]

    config = ExperimentConfig(
        system=system,
        tree_kind="random",
        n_overlay=len(workload.testbed.sites),
        stream_rate_kbps=stream_rate_kbps,
        duration_s=duration_s,
        dt=dt,
        sample_interval_s=sample_interval_s,
        seed=seed,
    )
    return ExperimentSession(config, workload=workload, tree=tree).run()
