"""The experiment harness: one entry point for every evaluation scenario.

``run_experiment(ExperimentConfig(...))`` builds the workload, instantiates
the system under test (Bullet, plain tree streaming, push gossiping or
streaming with anti-entropy), drives the fluid simulator for the configured
duration — injecting failures on schedule — and returns an
:class:`ExperimentResult` holding the same series the paper plots plus the
headline scalar metrics (steady-state useful bandwidth, duplicate ratio,
control overhead, link stress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.antientropy import AntiEntropyStreaming
from repro.baselines.gossip import PushGossip
from repro.baselines.streaming import TreeStreaming
from repro.core.config import BulletConfig
from repro.core.mesh import BulletMesh
from repro.experiments.metrics import SeriesSummary, steady_state_average
from repro.experiments.workloads import (
    PlanetLabWorkload,
    Workload,
    build_planetlab_workload,
    build_workload,
)
from repro.failure.injector import FailureInjector, worst_case_victim
from repro.network.events import PeriodicTimer
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass
from repro.topology.planetlab import PlanetLabConfig
from repro.trees.tree import OverlayTree

#: Systems the harness can run.
SYSTEMS = ("bullet", "stream", "gossip", "antientropy")


@dataclass
class ExperimentConfig:
    """Declarative description of one evaluation run."""

    #: Which system to run: ``bullet``, ``stream``, ``gossip`` or ``antientropy``.
    system: str = "bullet"
    #: Overlay tree under the system (ignored by gossip): ``random``,
    #: ``bottleneck`` or ``overcast``.
    tree_kind: str = "random"
    #: Number of overlay participants (paper: 1000; default scaled down).
    n_overlay: int = 60
    #: Table 1 bandwidth class.
    bandwidth_class: BandwidthClass = BandwidthClass.MEDIUM
    #: Source streaming rate in Kbps.
    stream_rate_kbps: float = 600.0
    #: Simulated duration in seconds.
    duration_s: float = 240.0
    #: Simulation step in seconds.
    dt: float = 1.0
    #: Interval between bandwidth samples (the figures' x-axis granularity).
    sample_interval_s: float = 5.0
    #: Apply the Section 4.5 loss model.
    lossy: bool = False
    #: Fail the worst-case node (largest root subtree) at this time, if set.
    failure_at_s: Optional[float] = None
    #: RanSub failure detection (Figure 13 disables it, Figure 14 enables it).
    ransub_failure_detection: bool = True
    #: Bullet-specific overrides (peer counts, epochs, disjointness, ...).
    bullet: Optional[BulletConfig] = None
    #: Transport for the plain streaming baseline.
    transport: str = "tfrc"
    #: Root seed for every stochastic component of the run.
    seed: int = 1
    #: Overlay tree fanout limit used by the tree constructions.
    max_fanout: int = 4

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"system must be one of {SYSTEMS}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.sample_interval_s < self.dt:
            raise ValueError("sample_interval_s must be >= dt")

    def bullet_config(self) -> BulletConfig:
        """The Bullet configuration for this run (stream rate kept in sync)."""
        if self.bullet is not None:
            return self.bullet
        return BulletConfig(
            stream_rate_kbps=self.stream_rate_kbps,
            ransub_failure_detection=self.ransub_failure_detection,
            seed=self.seed,
        )


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    config: ExperimentConfig
    useful_series: List[Tuple[float, float]]
    raw_series: List[Tuple[float, float]]
    from_parent_series: List[Tuple[float, float]]
    control_series: List[Tuple[float, float]]
    average_useful_kbps: float
    duplicate_ratio: float
    control_overhead_kbps: float
    link_stress_avg: float
    link_stress_max: int
    per_node_bandwidth_final: Dict[int, float]
    bandwidth_cdf_final: List[Tuple[float, float]]
    failure_time_s: Optional[float] = None

    def summary(self) -> SeriesSummary:
        """Plateau / peak / final summary of the useful-bandwidth series."""
        return SeriesSummary.from_series(self.useful_series)


def _build_system(
    config: ExperimentConfig, workload: Workload, simulator: NetworkSimulator
):
    """Instantiate the system under test against a prepared workload."""
    if config.system == "bullet":
        return BulletMesh(simulator, workload.tree, config.bullet_config())
    if config.system == "stream":
        return TreeStreaming(
            simulator,
            workload.tree,
            stream_rate_kbps=config.stream_rate_kbps,
            transport=config.transport,
        )
    if config.system == "gossip":
        return PushGossip(
            simulator,
            source=workload.source,
            members=workload.participants,
            stream_rate_kbps=config.stream_rate_kbps,
            seed=config.seed,
        )
    return AntiEntropyStreaming(
        simulator,
        workload.tree,
        stream_rate_kbps=config.stream_rate_kbps,
        seed=config.seed,
    )


def _drive(
    config: ExperimentConfig,
    simulator: NetworkSimulator,
    system,
    tree: Optional[OverlayTree],
) -> Optional[float]:
    """Run the main loop: protocol phases, sampling and failure injection."""
    injector: Optional[FailureInjector] = None
    failure_time: Optional[float] = None
    if config.failure_at_s is not None:
        if tree is None:
            raise ValueError("failure injection requires a tree-based system")
        injector = FailureInjector(system)
        injector.schedule_worst_case(tree, config.failure_at_s)
        failure_time = config.failure_at_s

    sample_timer = PeriodicTimer(config.sample_interval_s)
    steps = int(round(config.duration_s / config.dt))
    for _ in range(steps):
        simulator.begin_step()
        if injector is not None:
            injector.tick(simulator.time)
        system.protocol_phase(simulator.time)
        simulator.end_step()
        if sample_timer.fire(simulator.time):
            simulator.stats.sample_interval(
                simulator.time, config.sample_interval_s, system.receivers()
            )
    return failure_time


def _collect_result(
    config: ExperimentConfig,
    simulator: NetworkSimulator,
    system,
    failure_time: Optional[float],
) -> ExperimentResult:
    stats = simulator.stats
    receivers = system.receivers()
    duration = simulator.time
    useful = stats.time_series("useful")
    final_time = useful[-1][0] if useful else duration
    stress_avg, stress_max = stats.link_stress()
    return ExperimentResult(
        config=config,
        useful_series=useful,
        raw_series=stats.time_series("raw"),
        from_parent_series=stats.time_series("from_parent"),
        control_series=stats.time_series("control"),
        average_useful_kbps=steady_state_average(useful),
        duplicate_ratio=stats.duplicate_ratio(receivers),
        control_overhead_kbps=stats.control_overhead_kbps(receivers, duration),
        link_stress_avg=stress_avg,
        link_stress_max=stress_max,
        per_node_bandwidth_final=stats.per_node_bandwidth_at(final_time),
        bandwidth_cdf_final=stats.bandwidth_cdf_at(final_time),
        failure_time_s=failure_time,
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one transit-stub evaluation scenario end to end."""
    workload = build_workload(
        n_overlay=config.n_overlay,
        bandwidth_class=config.bandwidth_class,
        tree_kind=config.tree_kind,
        lossy=config.lossy,
        seed=config.seed,
        max_fanout=config.max_fanout,
    )
    simulator = NetworkSimulator(workload.topology, dt=config.dt, seed=config.seed)
    system = _build_system(config, workload, simulator)
    tree = workload.tree if config.system != "gossip" else workload.tree
    failure_time = _drive(config, simulator, system, tree)
    return _collect_result(config, simulator, system, failure_time)


def run_planetlab_experiment(
    system: str = "bullet",
    tree_kind: str = "random",
    stream_rate_kbps: float = 1500.0,
    duration_s: float = 240.0,
    dt: float = 1.0,
    sample_interval_s: float = 5.0,
    seed: int = 7,
    unconstrained_root: bool = False,
    planetlab_config: Optional[PlanetLabConfig] = None,
) -> ExperimentResult:
    """Run the Section 4.7 PlanetLab-like scenario.

    ``tree_kind`` selects the underlying tree: ``random`` (what Bullet runs
    over), ``good`` (high-bandwidth nodes near the root) or ``worst`` (the
    lowest-bandwidth nodes directly under the root).
    """
    if system not in ("bullet", "stream"):
        raise ValueError("the PlanetLab comparison uses bullet or stream")
    if tree_kind not in ("random", "good", "worst"):
        raise ValueError("tree_kind must be random, good or worst")
    pl_config = planetlab_config or PlanetLabConfig(seed=seed, unconstrained_root=unconstrained_root)
    workload: PlanetLabWorkload = build_planetlab_workload(pl_config, seed=seed)
    tree = {
        "random": workload.random_tree,
        "good": workload.good_tree,
        "worst": workload.worst_tree,
    }[tree_kind]

    config = ExperimentConfig(
        system=system,
        tree_kind="random",
        n_overlay=len(workload.testbed.sites),
        stream_rate_kbps=stream_rate_kbps,
        duration_s=duration_s,
        dt=dt,
        sample_interval_s=sample_interval_s,
        seed=seed,
    )
    simulator = NetworkSimulator(workload.topology, dt=dt, seed=seed)
    if system == "bullet":
        driver = BulletMesh(simulator, tree, config.bullet_config())
    else:
        driver = TreeStreaming(simulator, tree, stream_rate_kbps=stream_rate_kbps)
    failure_time = _drive(config, simulator, driver, tree)
    return _collect_result(config, simulator, driver, failure_time)
