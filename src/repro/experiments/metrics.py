"""Metric helpers shared by the experiment harness and the benchmarks.

The paper's figures are all derived from a handful of quantities: per-node
bandwidth over time (raw / useful / from-parent), steady-state averages, the
CDF of instantaneous bandwidth, duplicate ratios, control overhead and link
stress.  The helpers here turn the :class:`~repro.network.stats.StatsCollector`
series into those quantities and into the comparison ratios the paper quotes
("up to a factor of two", "25% higher", "60% more").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

TimeSeries = List[Tuple[float, float]]


def steady_state_average(series: TimeSeries, tail_fraction: float = 0.5) -> float:
    """Average of the last ``tail_fraction`` of a time series.

    The paper's bandwidth-over-time plots ramp up (TFRC slow start, peer
    discovery) and then plateau; comparisons are about the plateau, so the
    default averages the second half of the run.
    """
    if not series:
        return 0.0
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    start = int(len(series) * (1.0 - tail_fraction))
    tail = series[start:] or series
    return sum(value for _, value in tail) / len(tail)


def peak_value(series: TimeSeries) -> float:
    """Maximum value reached by a series."""
    return max((value for _, value in series), default=0.0)


def value_at(series: TimeSeries, time_s: float) -> float:
    """The series value at the sample closest to ``time_s``."""
    if not series:
        return 0.0
    closest = min(series, key=lambda entry: abs(entry[0] - time_s))
    return closest[1]


def window_average(series: TimeSeries, start_s: float, end_s: float) -> float:
    """Average of the samples with timestamps inside ``[start_s, end_s]``."""
    window = [value for time_s, value in series if start_s <= time_s <= end_s]
    if not window:
        return 0.0
    return sum(window) / len(window)


def improvement_factor(candidate: float, baseline: float) -> float:
    """``candidate / baseline`` guarding against a zero baseline."""
    if baseline <= 0:
        return float("inf") if candidate > 0 else 1.0
    return candidate / baseline


def cdf_from_values(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points (value, fraction <= value) from raw samples."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(cdf: Sequence[Tuple[float, float]], threshold: float) -> float:
    """Fraction of nodes whose value is strictly below ``threshold``."""
    fraction = 0.0
    for value, cumulative in cdf:
        if value < threshold:
            fraction = cumulative
        else:
            break
    return fraction


def median_from_cdf(cdf: Sequence[Tuple[float, float]]) -> float:
    """Median value implied by an empirical CDF."""
    for value, cumulative in cdf:
        if cumulative >= 0.5:
            return value
    return cdf[-1][0] if cdf else 0.0


@dataclass
class SeriesSummary:
    """Compact description of one bandwidth-over-time series."""

    steady_state_kbps: float
    peak_kbps: float
    final_kbps: float

    @classmethod
    def from_series(cls, series: TimeSeries, tail_fraction: float = 0.5) -> "SeriesSummary":
        """Summarize a series with the plateau average, peak and final value."""
        final = series[-1][1] if series else 0.0
        return cls(
            steady_state_kbps=steady_state_average(series, tail_fraction),
            peak_kbps=peak_value(series),
            final_kbps=final,
        )


def summarize_many(series_by_name: Dict[str, TimeSeries]) -> Dict[str, SeriesSummary]:
    """Summarize several named series at once."""
    return {name: SeriesSummary.from_series(series) for name, series in series_by_name.items()}
