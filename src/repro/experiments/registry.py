"""Pluggable registry of dissemination systems.

The paper's evaluation compares Bullet against three baselines, and follow-up
work (CliqueStream-style clustered meshes, multi-source epidemic multicast)
adds more.  Rather than hard-coding an if-chain in the harness, every system
registers a *builder* under a short name with :func:`register_system`; the
harness looks systems up by name through :func:`get_system` and builds them
from a :class:`BuildContext`.  Registering a new system therefore requires no
harness edits:

    from repro.experiments.registry import BuildContext, register_system

    @register_system("my-mesh", description="my experimental mesh")
    def _build_my_mesh(ctx: BuildContext):
        return MyMesh(ctx.simulator, ctx.tree, rate=ctx.config.stream_rate_kbps)

A system is anything satisfying :class:`DisseminationSystem`: it exposes
``protocol_phase(now)`` (one protocol step between simulator begin/end) and
``receivers()`` (the nodes whose bandwidth the figures average).  Systems that
support failure injection additionally implement ``fail_node(node)``, and
systems that support mid-run membership growth implement ``add_node(node)``
(all four built-ins do both; the session's churn and join injectors require
the respective method).

The four built-in systems live in their own modules and register themselves at
import time; :func:`get_system` imports them lazily so that importing this
module never drags in the whole protocol stack (and so the system modules can
import the registry without cycles).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # annotation-only: keep this module import-light
    from repro.network.simulator import NetworkSimulator
    from repro.trees.tree import OverlayTree


@runtime_checkable
class DisseminationSystem(Protocol):
    """What the experiment session requires of a system under test."""

    def protocol_phase(self, now: float) -> None:
        """Run one protocol step; called between simulator begin/end step."""
        ...  # pragma: no cover - protocol definition

    def receivers(self) -> List[int]:
        """The live data receivers (bandwidth is averaged over these)."""
        ...  # pragma: no cover - protocol definition


@dataclass
class BuildContext:
    """Everything a system builder may need to instantiate its system.

    ``config`` is the :class:`~repro.experiments.harness.ExperimentConfig`
    (duck-typed: builders read only the attributes they care about, so custom
    configs work as long as they carry the same fields).  ``tree`` is ``None``
    for systems registered with ``uses_tree=False``.
    """

    simulator: NetworkSimulator
    config: object
    tree: Optional[OverlayTree]
    source: int
    participants: List[int]


SystemBuilder = Callable[[BuildContext], DisseminationSystem]


@dataclass(frozen=True)
class SystemSpec:
    """A registered dissemination system."""

    name: str
    build: SystemBuilder
    #: Whether the system runs over an overlay tree (gossip does not).
    uses_tree: bool = True
    description: str = ""


_REGISTRY: Dict[str, SystemSpec] = {}

#: Built-in systems register themselves when their module is imported.
_BUILTIN_MODULES: Dict[str, str] = {
    "bullet": "repro.core.mesh",
    "stream": "repro.baselines.streaming",
    "gossip": "repro.baselines.gossip",
    "antientropy": "repro.baselines.antientropy",
}


def register_system(
    name: str,
    *,
    uses_tree: bool = True,
    description: str = "",
    replace: bool = False,
) -> Callable[[SystemBuilder], SystemBuilder]:
    """Class/function decorator registering a system builder under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError("system name must be a non-empty string")

    def decorator(builder: SystemBuilder) -> SystemBuilder:
        builtin_module = _BUILTIN_MODULES.get(name)
        if builtin_module is not None:
            # Built-in names are reserved: a third-party builder registered
            # under one would shadow the builtin (or crash its deferred
            # import); only the builtin's own module may (re)register it.
            if getattr(builder, "__module__", "") != builtin_module:
                raise ValueError(
                    f"{name!r} is reserved for a built-in system; pick another name"
                )
        elif name in _REGISTRY and not replace:
            raise ValueError(f"system {name!r} is already registered")
        doc = description or (builder.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[name] = SystemSpec(
            name=name, build=builder, uses_tree=uses_tree, description=doc
        )
        return builder

    return decorator


def unregister_system(name: str) -> None:
    """Remove a registered system (mainly for tests registering toys).

    Built-in systems cannot be removed: their registration re-runs only on
    (first) module import, so removal would leave the name known to
    :func:`system_known` but unbuildable by :func:`get_system`.
    """
    if name in _BUILTIN_MODULES:
        raise ValueError(f"cannot unregister built-in system {name!r}")
    _REGISTRY.pop(name, None)


def get_system(name: str) -> SystemSpec:
    """Look up a system spec by name, importing built-ins on first use."""
    spec = _REGISTRY.get(name)
    if spec is None and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
        spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown system {name!r}; available: {', '.join(available_systems())}"
        )
    return spec


def system_known(name: str) -> bool:
    """True if ``name`` is a registered or built-in system."""
    return name in _REGISTRY or name in _BUILTIN_MODULES


def available_systems() -> List[str]:
    """Names of every registered and built-in system, sorted."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))
