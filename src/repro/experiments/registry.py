"""Pluggable registry of dissemination systems.

The paper's evaluation compares Bullet against three baselines, and follow-up
work (CliqueStream-style clustered meshes, multi-source epidemic multicast)
adds more.  Rather than hard-coding an if-chain in the harness, every system
registers a *builder* under a short name with :func:`register_system`; the
harness looks systems up by name through :func:`get_system` and builds them
from a :class:`BuildContext`.  Registering a new system therefore requires no
harness edits:

    from repro.experiments.registry import BuildContext, register_system

    @register_system("my-mesh", description="my experimental mesh")
    def _build_my_mesh(ctx: BuildContext):
        return MyMesh(ctx.simulator, ctx.tree, rate=ctx.config.stream_rate_kbps)

A system is anything satisfying :class:`DisseminationSystem`: it exposes
``protocol_phase(now)`` (one protocol step between simulator begin/end) and
``receivers()`` (the nodes whose bandwidth the figures average).  What else a
system can do is *declared*, not probed: every registration carries a
:class:`SystemCapabilities` record (``supports_fail_node``, ``supports_join``,
``supports_multi_source``, ``hierarchical``), and the session's churn/join
injectors, the reproduction catalog's cross-system matrix and the report
renderer all consult the spec instead of ``hasattr``-sniffing the instance.
A system declaring ``supports_fail_node`` must implement ``fail_node(node)``;
one declaring ``supports_join`` must implement ``add_node(node)``.

The four built-in systems live in their own modules and register themselves at
import time; :func:`get_system` imports them lazily so that importing this
module never drags in the whole protocol stack (and so the system modules can
import the registry without cycles).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # annotation-only: keep this module import-light
    from repro.network.simulator import NetworkSimulator
    from repro.trees.tree import OverlayTree


@runtime_checkable
class DisseminationSystem(Protocol):
    """What the experiment session requires of a system under test."""

    def protocol_phase(self, now: float) -> None:
        """Run one protocol step; called between simulator begin/end step."""
        ...  # pragma: no cover - protocol definition

    def receivers(self) -> List[int]:
        """The live data receivers (bandwidth is averaged over these)."""
        ...  # pragma: no cover - protocol definition


@dataclass
class BuildContext:
    """Everything a system builder may need to instantiate its system.

    ``config`` is the :class:`~repro.experiments.harness.ExperimentConfig`
    (duck-typed: builders read only the attributes they care about, so custom
    configs work as long as they carry the same fields).  ``tree`` is ``None``
    for systems registered with ``uses_tree=False``.
    """

    simulator: NetworkSimulator
    config: object
    tree: Optional[OverlayTree]
    source: int
    participants: List[int]


SystemBuilder = Callable[[BuildContext], DisseminationSystem]


@dataclass(frozen=True)
class SystemCapabilities:
    """What a registered system declares it can do.

    The defaults describe the common case for this repo's systems (churn and
    mid-run joins supported, single source, flat overlay); registrations
    override individual fields via the ``supports_*`` / ``hierarchical``
    keywords of :func:`register_system`.
    """

    #: The system implements ``fail_node(node)`` (churn / failure injection).
    supports_fail_node: bool = True
    #: The system implements ``add_node(node)`` (mid-run membership growth).
    supports_join: bool = True
    #: The system can disseminate from several concurrent sources.
    supports_multi_source: bool = False
    #: Two-level (clustered) overlay: the session skips whole-overlay route
    #: warming (the builder warms what it needs, e.g. cluster heads only),
    #: and targeted churn consults the system's own impact ordering.
    hierarchical: bool = False


@dataclass(frozen=True)
class SystemSpec:
    """A registered dissemination system."""

    name: str
    build: SystemBuilder
    #: Whether the system runs over an overlay tree (gossip does not).
    uses_tree: bool = True
    description: str = ""
    #: Declared capabilities; consulted by the session, catalog and report.
    capabilities: SystemCapabilities = SystemCapabilities()


_REGISTRY: Dict[str, SystemSpec] = {}

#: Built-in systems register themselves when their module is imported.
_BUILTIN_MODULES: Dict[str, str] = {
    "bullet": "repro.core.mesh",
    "bullet-clustered": "repro.hierarchy.system",
    "stream": "repro.baselines.streaming",
    "gossip": "repro.baselines.gossip",
    "antientropy": "repro.baselines.antientropy",
}


def register_system(
    name: str,
    *,
    uses_tree: bool = True,
    description: str = "",
    replace: bool = False,
    supports_fail_node: bool = True,
    supports_join: bool = True,
    supports_multi_source: bool = False,
    hierarchical: bool = False,
) -> Callable[[SystemBuilder], SystemBuilder]:
    """Class/function decorator registering a system builder under ``name``.

    The ``supports_*`` / ``hierarchical`` keywords populate the spec's
    :class:`SystemCapabilities`; injectors and reports consult them rather
    than probing the built instance.
    """
    if not name or not isinstance(name, str):
        raise ValueError("system name must be a non-empty string")
    capabilities = SystemCapabilities(
        supports_fail_node=supports_fail_node,
        supports_join=supports_join,
        supports_multi_source=supports_multi_source,
        hierarchical=hierarchical,
    )

    def decorator(builder: SystemBuilder) -> SystemBuilder:
        builtin_module = _BUILTIN_MODULES.get(name)
        if builtin_module is not None:
            # Built-in names are reserved: a third-party builder registered
            # under one would shadow the builtin (or crash its deferred
            # import); only the builtin's own module may (re)register it.
            if getattr(builder, "__module__", "") != builtin_module:
                raise ValueError(
                    f"{name!r} is reserved for a built-in system; pick another name"
                )
        elif name in _REGISTRY and not replace:
            raise ValueError(f"system {name!r} is already registered")
        doc = description or (builder.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[name] = SystemSpec(
            name=name,
            build=builder,
            uses_tree=uses_tree,
            description=doc,
            capabilities=capabilities,
        )
        return builder

    return decorator


def unregister_system(name: str) -> None:
    """Remove a registered system (mainly for tests registering toys).

    Built-in systems cannot be removed: their registration re-runs only on
    (first) module import, so removal would leave the name known to
    :func:`system_known` but unbuildable by :func:`get_system`.
    """
    if name in _BUILTIN_MODULES:
        raise ValueError(f"cannot unregister built-in system {name!r}")
    _REGISTRY.pop(name, None)


def get_system(name: str) -> SystemSpec:
    """Look up a system spec by name, importing built-ins on first use."""
    spec = _REGISTRY.get(name)
    if spec is None and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
        spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown system {name!r}; available: {', '.join(available_systems())}"
        )
    return spec


def system_known(name: str) -> bool:
    """True if ``name`` is a registered or built-in system."""
    return name in _REGISTRY or name in _BUILTIN_MODULES


def available_systems() -> List[str]:
    """Names of every registered and built-in system, sorted."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))
