"""Experiment layer: pluggable system registry, the unified session, batch
sweeps, workload builders and the per-figure reproduction entry points.

The layering (see the top-level README for the architecture map):

* :mod:`~repro.experiments.registry` — ``@register_system`` plug-in point for
  dissemination systems;
* :mod:`~repro.experiments.session` — :class:`ExperimentSession`, the one
  simulate–sample–inject loop with observer hooks;
* :mod:`~repro.experiments.harness` — :class:`ExperimentConfig` /
  :class:`ExperimentResult` and the classic ``run_experiment`` entry points;
* :mod:`~repro.experiments.batch` — ``run_batch`` / ``sweep`` returning a
  :class:`ResultSet` with multi-seed aggregation and process fan-out;
* :mod:`~repro.experiments.figures` — the paper's figures on top of all that.
"""

from repro.experiments.batch import (
    AggregateRow,
    ResultSet,
    run_batch,
    sweep,
)
from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure9_bandwidth_sweep,
    figure10_nondisjoint,
    figure11_epidemic,
    figure12_lossy,
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
    figure15_planetlab,
    figure15_unconstrained_root,
    headline_metrics,
)
from repro.experiments.export import (
    write_aggregate_csv,
    write_cdf_csv,
    write_result_csv,
    write_summary_csv,
    write_time_series_csv,
)
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    collect_result,
    run_experiment,
    run_planetlab_experiment,
)
from repro.experiments.metrics import (
    SeriesSummary,
    cdf_from_values,
    improvement_factor,
    steady_state_average,
)
from repro.experiments.registry import (
    BuildContext,
    DisseminationSystem,
    SystemSpec,
    available_systems,
    get_system,
    register_system,
    system_known,
    unregister_system,
)
from repro.experiments.session import ExperimentSession, SessionObserver
from repro.experiments.workloads import (
    PlanetLabWorkload,
    Workload,
    build_planetlab_workload,
    build_workload,
    build_workload_for,
    scaled_topology_config,
)

__all__ = [
    "AggregateRow",
    "BuildContext",
    "DisseminationSystem",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSession",
    "FigureScale",
    "PlanetLabWorkload",
    "ResultSet",
    "SeriesSummary",
    "SessionObserver",
    "SystemSpec",
    "Workload",
    "available_systems",
    "build_planetlab_workload",
    "build_workload",
    "build_workload_for",
    "cdf_from_values",
    "collect_result",
    "figure6_tree_streaming",
    "figure7_bullet_random_tree",
    "figure8_bandwidth_cdf",
    "figure9_bandwidth_sweep",
    "figure10_nondisjoint",
    "figure11_epidemic",
    "figure12_lossy",
    "figure13_failure_no_recovery",
    "figure14_failure_with_recovery",
    "figure15_planetlab",
    "figure15_unconstrained_root",
    "get_system",
    "headline_metrics",
    "improvement_factor",
    "register_system",
    "run_batch",
    "run_experiment",
    "run_planetlab_experiment",
    "scaled_topology_config",
    "steady_state_average",
    "sweep",
    "system_known",
    "unregister_system",
    "write_aggregate_csv",
    "write_cdf_csv",
    "write_result_csv",
    "write_summary_csv",
    "write_time_series_csv",
]
