"""Experiment harness: workload builders, the generic runner and the
per-figure reproduction entry points."""

from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure9_bandwidth_sweep,
    figure10_nondisjoint,
    figure11_epidemic,
    figure12_lossy,
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
    figure15_planetlab,
    figure15_unconstrained_root,
    headline_metrics,
)
from repro.experiments.export import (
    write_cdf_csv,
    write_result_csv,
    write_summary_csv,
    write_time_series_csv,
)
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_planetlab_experiment,
)
from repro.experiments.metrics import (
    SeriesSummary,
    cdf_from_values,
    improvement_factor,
    steady_state_average,
)
from repro.experiments.workloads import (
    PlanetLabWorkload,
    Workload,
    build_planetlab_workload,
    build_workload,
    scaled_topology_config,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FigureScale",
    "PlanetLabWorkload",
    "SeriesSummary",
    "Workload",
    "build_planetlab_workload",
    "build_workload",
    "cdf_from_values",
    "figure6_tree_streaming",
    "figure7_bullet_random_tree",
    "figure8_bandwidth_cdf",
    "figure9_bandwidth_sweep",
    "figure10_nondisjoint",
    "figure11_epidemic",
    "figure12_lossy",
    "figure13_failure_no_recovery",
    "figure14_failure_with_recovery",
    "figure15_planetlab",
    "figure15_unconstrained_root",
    "headline_metrics",
    "improvement_factor",
    "run_experiment",
    "run_planetlab_experiment",
    "scaled_topology_config",
    "steady_state_average",
    "write_cdf_csv",
    "write_result_csv",
    "write_summary_csv",
    "write_time_series_csv",
]
