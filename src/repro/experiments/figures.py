"""Per-figure experiment runners.

Each ``figureNN`` function reproduces one figure of the paper's evaluation
section: it runs the systems the figure compares, at a configurable (reduced
by default) scale, and returns a dictionary holding exactly the series /
numbers the paper plots.  The benchmark suite calls these functions and
prints the same rows, so ``pytest benchmarks/ --benchmark-only`` regenerates
the whole evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_planetlab_experiment,
)
from repro.experiments.metrics import steady_state_average
from repro.topology.links import BandwidthClass

TimeSeries = List[Tuple[float, float]]


@dataclass
class FigureScale:
    """Common scale knobs shared by every figure runner.

    The paper uses 1000 overlay nodes, 20,000-node topologies and ~400-500
    second runs; the defaults here are sized so the full benchmark suite runs
    on a laptop in minutes.  Pass a larger scale to approach the paper's.
    """

    n_overlay: int = 50
    duration_s: float = 200.0
    dt: float = 1.0
    sample_interval_s: float = 5.0
    seed: int = 1

    def config(self, **overrides) -> ExperimentConfig:
        """Build an ExperimentConfig pre-filled with this scale."""
        base = dict(
            n_overlay=self.n_overlay,
            duration_s=self.duration_s,
            dt=self.dt,
            sample_interval_s=self.sample_interval_s,
            seed=self.seed,
        )
        base.update(overrides)
        return ExperimentConfig(**base)


# --------------------------------------------------------------------- Fig 6
def figure6_tree_streaming(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """TFRC streaming over the bottleneck-bandwidth tree vs a random tree."""
    scale = scale or FigureScale()
    bottleneck, random_tree = run_batch(
        [
            scale.config(system="stream", tree_kind="bottleneck"),
            scale.config(system="stream", tree_kind="random"),
        ],
        workers=workers,
    )
    return {
        "bottleneck_tree_series": bottleneck.useful_series,
        "random_tree_series": random_tree.useful_series,
        "bottleneck_tree_kbps": bottleneck.average_useful_kbps,
        "random_tree_kbps": random_tree.average_useful_kbps,
    }


# --------------------------------------------------------------------- Fig 7
def figure7_bullet_random_tree(scale: Optional[FigureScale] = None) -> Dict[str, object]:
    """Bullet over a random tree: raw total, useful total and from-parent."""
    scale = scale or FigureScale()
    result = run_experiment(scale.config(system="bullet", tree_kind="random"))
    return {
        "raw_series": result.raw_series,
        "useful_series": result.useful_series,
        "from_parent_series": result.from_parent_series,
        "useful_kbps": result.average_useful_kbps,
        "raw_kbps": steady_state_average(result.raw_series),
        "from_parent_kbps": steady_state_average(result.from_parent_series),
        "duplicate_ratio": result.duplicate_ratio,
        "control_overhead_kbps": result.control_overhead_kbps,
        "link_stress_avg": result.link_stress_avg,
        "link_stress_max": result.link_stress_max,
        "result": result,
    }


# --------------------------------------------------------------------- Fig 8
def figure8_bandwidth_cdf(
    scale: Optional[FigureScale] = None, result: Optional[ExperimentResult] = None
) -> Dict[str, object]:
    """CDF of instantaneous per-node bandwidth near the end of a Bullet run."""
    scale = scale or FigureScale()
    if result is None:
        result = run_experiment(scale.config(system="bullet", tree_kind="random"))
    return {
        "cdf": result.bandwidth_cdf_final,
        "per_node_kbps": result.per_node_bandwidth_final,
        "median_kbps": _median(result.bandwidth_cdf_final),
        "result": result,
    }


def _median(cdf: List[Tuple[float, float]]) -> float:
    for value, cumulative in cdf:
        if cumulative >= 0.5:
            return value
    return cdf[-1][0] if cdf else 0.0


# --------------------------------------------------------------------- Fig 9
def figure9_bandwidth_sweep(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Bullet vs the bottleneck tree for high, medium and low bandwidth."""
    return _bandwidth_class_comparison(scale, lossy=False, workers=workers)


def _bandwidth_class_comparison(
    scale: Optional[FigureScale], lossy: bool, workers: int
) -> Dict[str, object]:
    """Shared batch for Figures 9 and 12: two systems × three bandwidths."""
    scale = scale or FigureScale()
    classes = (BandwidthClass.HIGH, BandwidthClass.MEDIUM, BandwidthClass.LOW)
    configs = []
    for bandwidth_class in classes:
        configs.append(
            scale.config(
                system="bullet",
                tree_kind="random",
                bandwidth_class=bandwidth_class,
                lossy=lossy,
            )
        )
        configs.append(
            scale.config(
                system="stream",
                tree_kind="bottleneck",
                bandwidth_class=bandwidth_class,
                lossy=lossy,
            )
        )
    results = run_batch(configs, workers=workers)
    rows: Dict[str, Dict[str, object]] = {}
    for bandwidth_class in classes:
        bullet = results.where(system="bullet", bandwidth_class=bandwidth_class)[0]
        tree = results.where(system="stream", bandwidth_class=bandwidth_class)[0]
        rows[bandwidth_class.value] = {
            "bullet_series": bullet.useful_series,
            "bottleneck_tree_series": tree.useful_series,
            "bullet_kbps": bullet.average_useful_kbps,
            "bottleneck_tree_kbps": tree.average_useful_kbps,
        }
    return rows


# -------------------------------------------------------------------- Fig 10
def figure10_nondisjoint(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Bullet with the disjoint-transmission strategy disabled (ablation)."""
    scale = scale or FigureScale()
    disjoint_cfg = BulletConfig(stream_rate_kbps=600.0, seed=scale.seed)
    nondisjoint_cfg = BulletConfig(stream_rate_kbps=600.0, seed=scale.seed, disjoint_send=False)
    disjoint, nondisjoint = run_batch(
        [
            scale.config(system="bullet", tree_kind="random", bullet=disjoint_cfg),
            scale.config(system="bullet", tree_kind="random", bullet=nondisjoint_cfg),
        ],
        workers=workers,
    )
    return {
        "disjoint_series": disjoint.useful_series,
        "nondisjoint_series": nondisjoint.useful_series,
        "nondisjoint_raw_series": nondisjoint.raw_series,
        "nondisjoint_from_parent_series": nondisjoint.from_parent_series,
        "disjoint_kbps": disjoint.average_useful_kbps,
        "nondisjoint_kbps": nondisjoint.average_useful_kbps,
    }


# -------------------------------------------------------------------- Fig 11
def figure11_epidemic(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Bullet vs push gossiping vs streaming with anti-entropy at 900 Kbps."""
    scale = scale or FigureScale()
    rate = 900.0
    bullet, gossip, antientropy = run_batch(
        [
            scale.config(system="bullet", tree_kind="random", stream_rate_kbps=rate),
            scale.config(system="gossip", stream_rate_kbps=rate),
            scale.config(
                system="antientropy", tree_kind="bottleneck", stream_rate_kbps=rate
            ),
        ],
        workers=workers,
    )
    return {
        "bullet_useful_series": bullet.useful_series,
        "bullet_raw_series": bullet.raw_series,
        "gossip_useful_series": gossip.useful_series,
        "gossip_raw_series": gossip.raw_series,
        "antientropy_useful_series": antientropy.useful_series,
        "antientropy_raw_series": antientropy.raw_series,
        "bullet_useful_kbps": bullet.average_useful_kbps,
        "gossip_useful_kbps": gossip.average_useful_kbps,
        "antientropy_useful_kbps": antientropy.average_useful_kbps,
    }


# -------------------------------------------------------------------- Fig 12
def figure12_lossy(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Bullet vs bottleneck tree on lossy topologies (Section 4.5)."""
    return _bandwidth_class_comparison(scale, lossy=True, workers=workers)


# --------------------------------------------------------------- Figs 13 / 14
def figure13_failure_no_recovery(scale: Optional[FigureScale] = None) -> Dict[str, object]:
    """Worst-case root-child failure with RanSub failure detection disabled."""
    return _failure_run(scale, ransub_failure_detection=False)


def figure14_failure_with_recovery(scale: Optional[FigureScale] = None) -> Dict[str, object]:
    """Worst-case root-child failure with RanSub failure detection enabled."""
    return _failure_run(scale, ransub_failure_detection=True)


def _failure_run(
    scale: Optional[FigureScale], ransub_failure_detection: bool
) -> Dict[str, object]:
    scale = scale or FigureScale()
    failure_at = scale.duration_s * 0.5
    result = run_experiment(
        scale.config(
            system="bullet",
            tree_kind="random",
            failure_at_s=failure_at,
            ransub_failure_detection=ransub_failure_detection,
        )
    )
    before = [entry for entry in result.useful_series if entry[0] <= failure_at]
    after = [entry for entry in result.useful_series if entry[0] > failure_at]
    return {
        "useful_series": result.useful_series,
        "raw_series": result.raw_series,
        "from_parent_series": result.from_parent_series,
        "failure_time_s": failure_at,
        "before_failure_kbps": steady_state_average(before),
        "after_failure_kbps": steady_state_average(after),
        "result": result,
    }


# -------------------------------------------------------------------- Fig 15
def figure15_planetlab(
    duration_s: float = 200.0, seed: int = 7, stream_rate_kbps: float = 1500.0
) -> Dict[str, object]:
    """Bullet vs good and worst hand-crafted trees with a constrained source."""
    bullet = run_planetlab_experiment(
        system="bullet", tree_kind="random", duration_s=duration_s, seed=seed,
        stream_rate_kbps=stream_rate_kbps,
    )
    good = run_planetlab_experiment(
        system="stream", tree_kind="good", duration_s=duration_s, seed=seed,
        stream_rate_kbps=stream_rate_kbps,
    )
    worst = run_planetlab_experiment(
        system="stream", tree_kind="worst", duration_s=duration_s, seed=seed,
        stream_rate_kbps=stream_rate_kbps,
    )
    return {
        "bullet_series": bullet.useful_series,
        "good_tree_series": good.useful_series,
        "worst_tree_series": worst.useful_series,
        "bullet_kbps": bullet.average_useful_kbps,
        "good_tree_kbps": good.average_useful_kbps,
        "worst_tree_kbps": worst.average_useful_kbps,
    }


def figure15_unconstrained_root(
    duration_s: float = 200.0, seed: int = 7, stream_rate_kbps: float = 1500.0
) -> Dict[str, object]:
    """The paper's follow-up: all-US topology with an unconstrained source."""
    bullet = run_planetlab_experiment(
        system="bullet", tree_kind="random", duration_s=duration_s, seed=seed,
        stream_rate_kbps=stream_rate_kbps, unconstrained_root=True,
    )
    good = run_planetlab_experiment(
        system="stream", tree_kind="good", duration_s=duration_s, seed=seed,
        stream_rate_kbps=stream_rate_kbps, unconstrained_root=True,
    )
    return {
        "bullet_kbps": bullet.average_useful_kbps,
        "good_tree_kbps": good.average_useful_kbps,
        "bullet_series": bullet.useful_series,
        "good_tree_series": good.useful_series,
    }


# ------------------------------------------------------------ headline claims
def headline_metrics(scale: Optional[FigureScale] = None) -> Dict[str, float]:
    """Control overhead, duplicate ratio and link stress from a Bullet run."""
    data = figure7_bullet_random_tree(scale)
    return {
        "control_overhead_kbps": data["control_overhead_kbps"],
        "duplicate_ratio": data["duplicate_ratio"],
        "link_stress_avg": data["link_stress_avg"],
        "link_stress_max": float(data["link_stress_max"]),
        "useful_kbps": data["useful_kbps"],
    }
