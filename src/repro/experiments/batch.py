"""Batch execution and parameter sweeps over the experiment harness.

The paper's evaluation is a matrix of systems × trees × bandwidth classes ×
failure/loss scenarios, and the ROADMAP asks for multi-seed confidence
intervals on top.  This module makes that matrix a first-class API:

* :func:`run_batch` runs a list of :class:`ExperimentConfig` objects —
  serially or fanned out over a ``multiprocessing`` pool — and returns a
  :class:`ResultSet` in input order (parallel runs are bitwise identical to
  serial ones: each run is seeded from its own config and shares no state).
* :func:`sweep` builds the cartesian product of parameter overrides × seeds
  over a base config and runs it as a batch.
* :class:`ResultSet` holds the results with aggregation helpers: grouping by
  config parameters and mean / sample std / 95% CI across seeds.

Example::

    results = sweep(
        ExperimentConfig(n_overlay=40, duration_s=120.0),
        {"system": ["bullet", "stream"]},
        seeds=[1, 2, 3],
        workers=4,
    )
    for row in results.aggregate("average_useful_kbps", by=("system",)):
        print(row.group, row.mean, "+/-", row.ci95)
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment


def _run_one(config: ExperimentConfig) -> ExperimentResult:
    """Top-level worker so multiprocessing can pickle it."""
    return run_experiment(config)


def _pool_context():
    """Prefer fork (keeps custom registered systems visible to workers)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_batch(
    configs: Iterable[ExperimentConfig], workers: int = 1
) -> "ResultSet":
    """Run every config and return a :class:`ResultSet` in input order.

    ``workers > 1`` fans the runs out over a process pool; because every run
    is fully determined by its config (all randomness is seeded from
    ``config.seed``), the parallel result set is identical to the serial one.

    Workers are forked where the platform allows it, so systems registered at
    runtime via ``@register_system`` remain visible.  On platforms without
    fork (e.g. Windows) workers are spawned fresh and only see systems
    registered at import time; run custom runtime-registered systems with
    ``workers=1`` there.
    """
    configs = list(configs)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if workers == 1 or len(configs) <= 1:
        results = [_run_one(config) for config in configs]
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(configs))) as pool:
            results = pool.map(_run_one, configs)
    return ResultSet(results)


def sweep(
    base: ExperimentConfig,
    parameters: Optional[Mapping[str, Sequence[object]]] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    workers: int = 1,
) -> "ResultSet":
    """Run the cartesian product of ``parameters`` × ``seeds`` over ``base``.

    ``parameters`` maps :class:`ExperimentConfig` field names to the values to
    sweep; ``seeds`` (default: just ``base.seed``) replicates every grid point
    for confidence intervals.  Configs are generated in deterministic order:
    the grid varies fastest-last, with seeds innermost.
    """
    parameters = dict(parameters or {})
    if "seed" in parameters:
        raise ValueError("sweep seeds via the seeds= argument, not parameters")
    for name in parameters:
        if not hasattr(base, name):
            raise ValueError(f"unknown ExperimentConfig field {name!r}")
    seed_list = list(seeds) if seeds is not None else [base.seed]
    if not seed_list:
        raise ValueError("need at least one seed")
    names = list(parameters)
    configs: List[ExperimentConfig] = []
    for combo in itertools.product(*(parameters[name] for name in names)):
        overrides = dict(zip(names, combo))
        for seed in seed_list:
            configs.append(replace(base, seed=seed, **overrides))
    return run_batch(configs, workers=workers)


@dataclass(frozen=True)
class AggregateRow:
    """Mean / spread of one metric within one parameter group."""

    group: Tuple[Tuple[str, object], ...]
    metric: str
    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    @property
    def group_dict(self) -> Dict[str, object]:
        """The grouping parameters as a plain dict."""
        return dict(self.group)


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    return mean, math.sqrt(variance)


#: Two-sided 95% Student-t critical values by degrees of freedom (1..30).
#: Seed counts are typically tiny (2-5), where the normal z=1.96 would
#: understate the interval severely (df=1 needs 12.71, df=2 needs 4.30).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t95(df: int) -> float:
    """95% two-sided t critical value (normal approximation past df=30)."""
    if df < 1:
        return 0.0
    return _T95[df - 1] if df <= len(_T95) else 1.96


class ResultSet(Sequence):
    """An ordered collection of experiment results with aggregation helpers."""

    def __init__(self, results: Iterable[ExperimentResult]) -> None:
        self.results: List[ExperimentResult] = list(results)

    # ------------------------------------------------------------- sequence
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __getitem__(self, index):
        item = self.results[index]
        return ResultSet(item) if isinstance(index, slice) else item

    # -------------------------------------------------------------- queries
    @property
    def configs(self) -> List[ExperimentConfig]:
        """The config of every result, in run order."""
        return [result.config for result in self.results]

    def metric_values(self, metric: str = "average_useful_kbps") -> List[float]:
        """One scalar per result, read off the result attribute ``metric``."""
        return [float(getattr(result, metric)) for result in self.results]

    def filter(self, predicate: Callable[[ExperimentResult], bool]) -> "ResultSet":
        """Results for which ``predicate(result)`` holds."""
        return ResultSet(result for result in self.results if predicate(result))

    def where(self, **params: object) -> "ResultSet":
        """Results whose config matches every ``field=value`` given."""
        return self.filter(
            lambda result: all(
                getattr(result.config, name) == value for name, value in params.items()
            )
        )

    def group_by(self, *params: str) -> Dict[Tuple[object, ...], "ResultSet"]:
        """Partition by config parameter values (insertion-ordered)."""
        groups: Dict[Tuple[object, ...], List[ExperimentResult]] = {}
        for result in self.results:
            key = tuple(getattr(result.config, name) for name in params)
            groups.setdefault(key, []).append(result)
        return {key: ResultSet(members) for key, members in groups.items()}

    # ---------------------------------------------------------- aggregation
    def aggregate(
        self,
        metric: str = "average_useful_kbps",
        by: Sequence[str] = (),
    ) -> List[AggregateRow]:
        """Mean / sample std / Student-t 95% CI of ``metric``.

        With ``by=()`` a single row aggregates the whole set (e.g. across
        seeds); otherwise one row per distinct combination of the named
        config parameters, in first-seen order.
        """
        by = tuple(by)
        rows: List[AggregateRow] = []
        groups = (
            self.group_by(*by) if by else ({(): self} if self.results else {})
        )
        for key, members in groups.items():
            values = members.metric_values(metric)
            mean, std = _mean_std(values)
            n = len(values)
            ci95 = _t95(n - 1) * std / math.sqrt(n) if n > 1 else 0.0
            rows.append(
                AggregateRow(
                    group=tuple(zip(by, key)),
                    metric=metric,
                    n=len(values),
                    mean=mean,
                    std=std,
                    ci95=ci95,
                    minimum=min(values),
                    maximum=max(values),
                )
            )
        return rows

    def best(self, metric: str = "average_useful_kbps") -> ExperimentResult:
        """The result maximizing ``metric``."""
        if not self.results:
            raise ValueError("empty result set")
        return max(self.results, key=lambda result: getattr(result, metric))
