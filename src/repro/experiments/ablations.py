"""Programmatic ablation runners.

The four design-choice ablations of the evaluation used to live only inside
the benchmark suite as test functions; reproducing them meant running pytest
and reading captured stdout.  Each ablation is now an ordinary function —
same shape as the ``figureNN`` runners in :mod:`repro.experiments.figures` —
that builds its configs, runs them through :func:`run_batch` and returns a
structured, JSON-friendly dictionary.  The benchmark tests call these
functions and keep their shape assertions; the reproduction pipeline
(``python -m repro.cli reproduce``) exports their results directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.figures import FigureScale
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.topology.links import BandwidthClass

#: Peer limits swept by :func:`ablation_peer_count` (paper default: 10).
PEER_LIMITS = (2, 5, 10)
#: Seeds averaged per peer limit (a single reduced-scale run is noisy).
PEER_COUNT_SEEDS = 3

#: RanSub epoch lengths swept by :func:`ablation_epoch_length` (paper: 5 s).
EPOCH_LENGTHS_S = (5.0, 20.0)

#: The disjoint-send variants swept by :func:`ablation_disjoint_lookahead`:
#: (key, label, recovery lookahead seconds, disjoint transmission enabled).
DISJOINT_VARIANTS = (
    ("disjoint", "disjoint, no lookahead", 0.0, True),
    ("lookahead", "disjoint, 5 s lookahead", 5.0, True),
    ("nondisjoint", "non-disjoint", 0.0, False),
)

#: The eviction variants swept by :func:`ablation_eviction`:
#: (key, label, eviction period in RanSub epochs).  10000 epochs never
#: fires inside any practical run, i.e. eviction disabled.
EVICTION_VARIANTS = (
    ("eviction", "paper (every 3 epochs)", 3),
    ("disabled", "disabled (10000 epochs)", 10_000),
)


def _summary(result: ExperimentResult) -> Dict[str, float]:
    """The scalar row every ablation reports per configuration."""
    return {
        "useful_kbps": result.average_useful_kbps,
        "duplicate_ratio": result.duplicate_ratio,
        "control_overhead_kbps": result.control_overhead_kbps,
    }


# ------------------------------------------------------------ peer count
def ablation_peer_count(
    scale: Optional[FigureScale] = None, workers: int = 1, n_seeds: int = PEER_COUNT_SEEDS
) -> Dict[str, object]:
    """Sweep the per-node sender/receiver limit (paper default: 10).

    Returns per-limit mean useful bandwidth and duplicate ratio, averaged
    over ``n_seeds`` consecutive seeds starting at ``scale.seed``.
    """
    scale = scale or FigureScale()
    duration = min(scale.duration_s, 160.0)
    seeds = [scale.seed + offset for offset in range(n_seeds)]
    configs = [
        ExperimentConfig(
            system="bullet",
            tree_kind="random",
            n_overlay=scale.n_overlay,
            duration_s=duration,
            seed=seed,
            bandwidth_class=BandwidthClass.LOW,
            bullet=BulletConfig(
                stream_rate_kbps=600.0, seed=seed,
                max_senders=limit, max_receivers=limit,
            ),
        )
        for limit in PEER_LIMITS
        for seed in seeds
    ]
    results = run_batch(configs, workers=workers)
    grouped: Dict[int, List[ExperimentResult]] = {}
    for config, result in zip(configs, results):
        grouped.setdefault(config.bullet.max_senders, []).append(result)
    rows: Dict[str, Dict[str, float]] = {}
    for limit, runs in grouped.items():
        rows[str(limit)] = {
            "useful_kbps": sum(r.average_useful_kbps for r in runs) / len(runs),
            "duplicate_ratio": sum(r.duplicate_ratio for r in runs) / len(runs),
        }
    return {"peer_limits": list(PEER_LIMITS), "n_seeds": n_seeds, "by_limit": rows}


# ---------------------------------------------------------- epoch length
def ablation_epoch_length(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Sweep the RanSub epoch length (paper default: 5 seconds)."""
    scale = scale or FigureScale()
    duration = min(scale.duration_s, 160.0)
    configs = [
        ExperimentConfig(
            system="bullet",
            tree_kind="random",
            n_overlay=scale.n_overlay,
            duration_s=duration,
            seed=scale.seed,
            bandwidth_class=BandwidthClass.MEDIUM,
            bullet=BulletConfig(
                stream_rate_kbps=600.0, seed=scale.seed, ransub_epoch_s=epoch_s
            ),
        )
        for epoch_s in EPOCH_LENGTHS_S
    ]
    results = run_batch(configs, workers=workers)
    rows = {
        f"{epoch_s:g}": _summary(result)
        for epoch_s, result in zip(EPOCH_LENGTHS_S, results)
    }
    return {"epoch_lengths_s": list(EPOCH_LENGTHS_S), "by_epoch": rows}


# --------------------------------------------------- disjoint / lookahead
def ablation_disjoint_lookahead(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Sweep disjoint transmission and the recovery-range lookahead."""
    scale = scale or FigureScale()
    duration = min(scale.duration_s, 160.0)
    configs = [
        ExperimentConfig(
            system="bullet",
            tree_kind="random",
            n_overlay=scale.n_overlay,
            duration_s=duration,
            seed=scale.seed,
            bandwidth_class=BandwidthClass.MEDIUM,
            bullet=BulletConfig(
                stream_rate_kbps=600.0,
                seed=scale.seed,
                disjoint_send=disjoint,
                recovery_lookahead_s=lookahead_s,
            ),
        )
        for _, _, lookahead_s, disjoint in DISJOINT_VARIANTS
    ]
    results = run_batch(configs, workers=workers)
    rows = {
        key: _summary(result)
        for (key, _, _, _), result in zip(DISJOINT_VARIANTS, results)
    }
    return {
        "labels": {key: label for key, label, _, _ in DISJOINT_VARIANTS},
        "by_variant": rows,
    }


# --------------------------------------------------------------- eviction
def ablation_eviction(
    scale: Optional[FigureScale] = None, workers: int = 1
) -> Dict[str, object]:
    """Compare periodic sender eviction (Section 3.4) against no eviction."""
    scale = scale or FigureScale()
    duration = min(scale.duration_s, 200.0)
    configs = [
        ExperimentConfig(
            system="bullet",
            tree_kind="random",
            n_overlay=scale.n_overlay,
            duration_s=duration,
            seed=scale.seed,
            bandwidth_class=BandwidthClass.LOW,
            bullet=BulletConfig(
                stream_rate_kbps=600.0, seed=scale.seed,
                eviction_period_epochs=period,
            ),
        )
        for _, _, period in EVICTION_VARIANTS
    ]
    results = run_batch(configs, workers=workers)
    rows = {
        key: _summary(result)
        for (key, _, _), result in zip(EVICTION_VARIANTS, results)
    }
    return {
        "labels": {key: label for key, label, _ in EVICTION_VARIANTS},
        "by_variant": rows,
    }
