"""The experiment session: one simulate–sample–inject loop for every scenario.

Historically the repository carried four copies of the same drive loop (the
harness, ``BulletMesh.run``, ``TreeStreaming.run`` and ``PushGossip.run``).
:class:`ExperimentSession` is now the single owner of that loop.  A session

* prepares whatever was not supplied — workload (from the config), simulator
  (from the workload topology) and system (through the pluggable
  :mod:`~repro.experiments.registry`);
* drives the simulator step by step, running the system's protocol phase,
  firing scheduled failures and sampling bandwidth on the configured interval;
* notifies :class:`SessionObserver` hooks (``on_start`` / ``on_step`` /
  ``on_sample`` / ``on_failure`` / ``on_control`` / ``on_end``) so custom
  probes can watch a run — including its control-plane traffic — without
  forking the loop;
* collects the :class:`~repro.experiments.harness.ExperimentResult`.

Typical use::

    session = ExperimentSession(ExperimentConfig(system="bullet"))
    result = session.run()

Systems that expose their own ``run()`` convenience (BulletMesh,
TreeStreaming, PushGossip) delegate here by wrapping an already-built
simulator/system pair::

    ExperimentSession(simulator=sim, system=mesh).drive(duration_s)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.registry import (
    BuildContext,
    DisseminationSystem,
    SystemSpec,
    get_system,
)
from repro.experiments.workloads import build_workload_for
from repro.failure.injector import FailureInjector
from repro.network.events import PeriodicTimer
from repro.network.simulator import NetworkSimulator
from repro.sched.engine import StepEngine

_UNSET = object()


class SessionObserver:
    """Base class for session hooks; override any subset of the callbacks."""

    def on_start(self, session: "ExperimentSession") -> None:
        """Called once, before the first simulation step of ``run()``."""

    def on_step(self, session: "ExperimentSession", now: float) -> None:
        """Called after every simulation step."""

    def on_sample(self, session: "ExperimentSession", now: float) -> None:
        """Called after each bandwidth sample is recorded."""

    def on_failure(self, session: "ExperimentSession", now: float, node: int) -> None:
        """Called when a scheduled failure fires against ``node``."""

    def on_join(self, session: "ExperimentSession", now: float, node: int) -> None:
        """Called when a scheduled mid-run join adds ``node``."""

    def on_control(
        self, session: "ExperimentSession", now: float, message, event: str
    ) -> None:
        """Called for control-plane traffic on systems that expose a channel.

        ``event`` is ``"sent"``, ``"delivered"`` or ``"dropped"``; ``message``
        is the :class:`~repro.network.control.ControlMessage`.  Only fires
        for systems exposing a ``control_channel`` attribute.
        """

    def on_end(self, session: "ExperimentSession", result) -> None:
        """Called once, after ``run()`` collected its result."""


class ExperimentSession:
    """Owns one experiment run: build, drive, observe, collect.

    Every argument except ``config`` is optional and built on demand:

    * ``workload`` defaults to :func:`build_workload_for` applied to the
      config (any object with ``topology`` — and ideally ``source`` /
      ``participants`` — works, e.g. a PlanetLab workload);
    * ``simulator`` defaults to a fresh :class:`NetworkSimulator` over the
      workload topology; passing a simulator *without* a workload requires
      also passing the ``system`` (there is nothing to build one from);
    * ``tree`` defaults to the workload tree for tree-based systems and
      ``None`` for systems registered with ``uses_tree=False``;
    * ``system`` defaults to the registry builder for ``config.system``.

    A session may also wrap an already-built ``simulator``/``system`` pair
    with no config at all; such a session supports :meth:`drive` (used by the
    systems' ``run()`` conveniences) but not :meth:`run`.
    """

    def __init__(
        self,
        config=None,
        *,
        workload=None,
        simulator: Optional[NetworkSimulator] = None,
        system: Optional[DisseminationSystem] = None,
        tree=_UNSET,
        observers: Sequence[SessionObserver] = (),
        sample_interval_s: Optional[float] = None,
    ) -> None:
        if config is None and (simulator is None or system is None):
            raise ValueError(
                "a session without a config needs an explicit simulator and system"
            )
        self.config = config
        self.observers: List[SessionObserver] = list(observers)

        #: The quiescence-aware step engine (None in legacy mode).  Bare
        #: sessions wrapping a pre-built simulator/system pair stay legacy —
        #: the flag is an ExperimentConfig contract.
        self.step_engine: Optional[StepEngine] = None
        if config is not None and getattr(config, "step_engine", True):
            self.step_engine = StepEngine()

        self.spec: Optional[SystemSpec] = None
        if system is None and config is not None:
            self.spec = get_system(config.system)

        self.workload = workload
        if self.workload is None:
            if simulator is None:
                self.workload = build_workload_for(config)
            elif system is None:
                # A foreign simulator with no workload gives the registry
                # builder nothing to build from (no tree/participants).
                raise ValueError(
                    "a session with an explicit simulator needs an explicit"
                    " system or workload"
                )

        # Pin the underlay routing mode before anything resolves a path.
        # build_workload_for already applied the config's flag; this covers
        # externally supplied workloads (e.g. PlanetLab) as well.
        topology = getattr(self.workload, "topology", None)
        if config is not None and topology is not None:
            topology.use_routing_engine = getattr(config, "routing_engine", True)

        if simulator is None:
            simulator = NetworkSimulator(
                self.workload.topology,
                dt=config.dt,
                seed=config.seed,
                solver=getattr(config, "solver", "max_min"),
                incremental=getattr(config, "incremental_allocation", True),
                step_engine=self.step_engine is not None,
            )
        self.simulator = simulator

        if tree is _UNSET:
            if self.spec is not None and not self.spec.uses_tree:
                tree = None
            else:
                tree = getattr(self.workload, "tree", None)
        self.tree = tree

        if system is None:
            context = self._build_context()
            self._warm_initial_routes(context)
            system = self.spec.build(context)
        self.system = system
        if self.step_engine is not None:
            attach = getattr(self.system, "attach_step_engine", None)
            if attach is not None:
                attach(self.step_engine)

        # Systems that route control traffic over a ControlChannel expose it
        # as ``control_channel``; tap it so observers can watch the control
        # plane without forking the loop.  Only the most recent session's tap
        # stays installed, so re-driving the same system (e.g. repeated
        # ``mesh.run()`` calls) neither duplicates notifications nor pins
        # finished sessions in memory.
        channel = getattr(self.system, "control_channel", None)
        if channel is not None:
            channel.set_exclusive_tap(self._notify_control)

        if sample_interval_s is None:
            sample_interval_s = config.sample_interval_s if config is not None else 5.0
        self.sample_interval_s = sample_interval_s
        self._sample_timer = PeriodicTimer(sample_interval_s)

        self.failure_time: Optional[float] = None
        self._injector: Optional[FailureInjector] = None
        if config is not None and config.failure_at_s is not None:
            victim_order = getattr(self.system, "targeted_victim_order", None)
            if self.tree is not None:
                self._injector = FailureInjector(self.system)
                self._injector.schedule_worst_case(self.tree, config.failure_at_s)
            elif victim_order is not None:
                # Hierarchical systems have no flat dissemination tree; their
                # own blast-radius ordering names the worst-case victim (the
                # head whose failure orphans the most downstream clusters).
                victims = list(victim_order())
                if not victims:
                    raise ValueError("no victim available for failure injection")
                self._injector = FailureInjector(self.system)
                self._injector.schedule_failure(victims[0], config.failure_at_s)
            else:
                raise ValueError("failure injection requires a tree-based system")
            self.failure_time = config.failure_at_s
        if config is not None and getattr(config, "churn_failures", 0):
            self._schedule_churn(config)
        if config is not None and getattr(config, "churn_joins", 0):
            self._schedule_joins(config)

    # ----------------------------------------------------------------- setup
    def _warm_initial_routes(self, context) -> None:
        """Pre-solve the overlay's underlay routing before the system builds.

        One shortest-path tree per participant (plus the source) resolves in
        a batch here, so peer discovery during the run — where any pair of
        participants may open control exchanges or mesh flows — extracts
        paths from cached trees instead of running a Dijkstra inside the
        step loop.  No-op in legacy routing mode.

        Hierarchical (clustered) systems opt out via their capability
        declaration: only cluster heads touch the underlay, so the builder
        warms those few routes itself instead of paying one Dijkstra per
        overlay participant here.
        """
        if self.spec is not None and self.spec.capabilities.hierarchical:
            return
        topology = getattr(self.workload, "topology", None)
        if topology is None or not getattr(topology, "use_routing_engine", False):
            return
        hosts = list(dict.fromkeys(context.participants))
        if context.source is not None and context.source not in hosts:
            hosts.append(context.source)
        if hosts:
            topology.warm_routes(hosts)

    def _warm_join_routes(self, node: int) -> None:
        """Pre-solve a mid-run joiner's routing just before it joins.

        Called by the injector ahead of ``add_node``: one shortest-path-tree
        solve for the joiner covers its path to *every* member it will ever
        discover, and the standing members' trees (warmed at construction)
        already cover the reverse direction — so a flash-crowd arrival wave
        never pays per-pair Dijkstras inside the steps it lands on, only
        O(hops) extractions from cached trees.
        """
        topology = getattr(self.workload, "topology", None)
        if topology is None or not getattr(topology, "use_routing_engine", False):
            return
        topology.warm_routes([node])

    def _schedule_churn(self, config) -> None:
        """Schedule ``config.churn_failures`` departures across the run.

        Victims are a seeded random sample of non-source participants, failed
        at evenly spaced times from ``churn_start_s`` to 90% of the run — the
        churn-heavy dissemination scenario, where the overlay keeps repairing
        itself while the stream is live.  A ``churn_start_s`` that would push
        departures past the end of a short run (e.g. a full-scale scenario
        smoke-tested at reduced duration) is clamped into the run, so churn
        always actually fires.
        """
        # Capability-declared check first (the registry spec is the contract);
        # the hasattr check remains for bare sessions wrapping a pre-built
        # system with no spec, and catches declared-but-unimplemented bugs.
        if self.spec is not None and not self.spec.capabilities.supports_fail_node:
            raise ValueError(
                f"system {self.spec.name!r} declares supports_fail_node=False;"
                " churn_failures requires a system with fail_node support"
            )
        if not hasattr(self.system, "fail_node"):
            raise ValueError(
                f"system {type(self.system).__name__} does not support"
                " fail_node; churn_failures requires it"
            )
        from repro.util.rng import SeededRng

        source = getattr(self.workload, "source", None)
        if source is None and self.tree is not None:
            source = self.tree.root
        participants = getattr(self.workload, "participants", None)
        if participants is None:
            participants = list(self.tree.members()) if self.tree is not None else []
        victims_pool = sorted(node for node in participants if node != source)
        if not victims_pool:
            raise ValueError("churn_failures needs at least one non-source participant")
        count = min(config.churn_failures, len(victims_pool))
        strategy = getattr(config, "churn_strategy", "uniform")
        if strategy == "targeted":
            # Adversarial churn: fail the most-depended-upon members first,
            # deterministically — no sampling involved.  Flat systems rank by
            # dissemination-tree subtree size; hierarchical systems expose
            # their own head/interior impact ordering (a cluster head's blast
            # radius is its whole cluster, which no single flat tree shows).
            from repro.failure.injector import targeted_victims_for

            pool = set(victims_pool)
            ordered = targeted_victims_for(self.system, self.tree)
            victims = [node for node in ordered if node in pool][:count]
        else:
            rng = SeededRng(config.seed, "churn")
            victims = rng.sample(victims_pool, count)
        end = 0.9 * config.duration_s
        start = min(getattr(config, "churn_start_s", 30.0), 0.5 * end)
        if self._injector is None:
            self._injector = FailureInjector(self.system)
        for index, victim in enumerate(victims):
            when = start + (end - start) * index / max(count - 1, 1)
            self._injector.schedule_failure(victim, when)

    def _schedule_joins(self, config) -> None:
        """Schedule ``config.churn_joins`` mid-run joins.

        Joiners are a seeded deterministic draw from the workload topology's
        *spare* client hosts (hosts no initial participant occupies), joined
        at evenly spaced times across the ``join_start_s`` ..
        ``join_start_s + join_duration_s`` window — the flash-crowd
        scenario's mid-run arrival wave.  Like churn, a window that a short
        smoke run would push past its end is clamped into the run.
        """
        if self.spec is not None and not self.spec.capabilities.supports_join:
            raise ValueError(
                f"system {self.spec.name!r} declares supports_join=False;"
                " churn_joins requires a system with add_node support"
            )
        if not hasattr(self.system, "add_node"):
            raise ValueError(
                f"system {type(self.system).__name__} does not support"
                " add_node; churn_joins requires it"
            )
        from repro.util.rng import SeededRng

        topology = getattr(self.workload, "topology", None)
        if topology is None:
            raise ValueError("churn_joins needs a workload with a topology")
        participants = set(getattr(self.workload, "participants", ()) or ())
        pool = sorted(
            host for host in topology.client_nodes if host not in participants
        )
        if not pool:
            raise ValueError(
                "churn_joins needs spare client hosts; none are left in the"
                " topology (it is sized for n_overlay + churn_joins)"
            )
        count = min(config.churn_joins, len(pool))
        rng = SeededRng(config.seed, "joins")
        joiners = rng.sample(pool, count)
        end_cap = 0.9 * config.duration_s
        start = min(getattr(config, "join_start_s", 20.0), 0.5 * end_cap)
        end = min(start + getattr(config, "join_duration_s", 30.0), end_cap)
        if self._injector is None:
            self._injector = FailureInjector(self.system)
        for index, joiner in enumerate(joiners):
            when = start + (end - start) * index / max(count - 1, 1)
            self._injector.schedule_join(
                joiner, when, prepare=self._warm_join_routes
            )

    def _build_context(self) -> BuildContext:
        source = getattr(self.workload, "source", None)
        participants = getattr(self.workload, "participants", None)
        if source is None and self.tree is not None:
            source = self.tree.root
        if participants is None:
            participants = list(self.tree.members()) if self.tree is not None else []
        return BuildContext(
            simulator=self.simulator,
            config=self.config,
            tree=self.tree,
            source=source,
            participants=list(participants),
        )

    def add_observer(self, observer: SessionObserver) -> "ExperimentSession":
        """Attach an observer; returns the session for chaining."""
        self.observers.append(observer)
        return self

    def _notify_control(self, event: str, time_s: float, message) -> None:
        for observer in self.observers:
            observer.on_control(self, time_s, message, event)

    @property
    def injector(self) -> Optional[FailureInjector]:
        """The failure injector, if this session schedules failures."""
        return self._injector

    # ----------------------------------------------------------------- drive
    def step(self) -> float:
        """Advance the simulation by one ``dt``; returns the new sim time."""
        simulator = self.simulator
        simulator.begin_step()
        injector_due = self._injector is not None
        if injector_due and self.step_engine is not None:
            # Injector wakeup: skip the tick (and the pending-event scans)
            # on steps where no failure/join can fire.  run_due with nothing
            # due is a no-op, so skipping it is behaviour-identical.
            next_event = self._injector.next_event_time()
            injector_due = (
                next_event is not None and next_event <= simulator.time + 1e-12
            )
        if injector_due:
            pending = [event for event in self._injector.events if not event.fired]
            pending_joins = [
                event for event in self._injector.join_events if not event.fired
            ]
            self._injector.tick(simulator.time)
            for event in pending:
                if event.fired:
                    for observer in self.observers:
                        observer.on_failure(self, simulator.time, event.node)
            for event in pending_joins:
                if event.fired:
                    for observer in self.observers:
                        observer.on_join(self, simulator.time, event.node)
        self.system.protocol_phase(simulator.time)
        simulator.end_step()
        now = simulator.time
        for observer in self.observers:
            observer.on_step(self, now)
        if self._sample_timer.fire(now):
            simulator.stats.sample_interval(
                now, self.sample_interval_s, self.system.receivers()
            )
            for observer in self.observers:
                observer.on_sample(self, now)
        return now

    def drive(self, duration_s: float) -> "ExperimentSession":
        """Run the loop for ``duration_s`` simulated seconds; may be chained."""
        steps = int(round(duration_s / self.simulator.dt))
        for _ in range(steps):
            self.step()
        return self

    # ---------------------------------------------------------------- result
    def run(self):
        """Drive the configured duration and collect the ExperimentResult."""
        if self.config is None:
            raise ValueError("run() needs a config; use drive() for bare sessions")
        for observer in self.observers:
            observer.on_start(self)
        self.drive(self.config.duration_s)
        result = self.collect()
        for observer in self.observers:
            observer.on_end(self, result)
        return result

    def collect(self):
        """Collect an ExperimentResult from the current simulator state."""
        from repro.experiments.harness import collect_result

        return collect_result(
            self.config, self.simulator, self.system, self.failure_time
        )
