"""Non-blocking send abstraction used by Bullet's disjoint send routine.

Section 3.3: "Bullet data transport sockets are non-blocking; successful
transmissions are send attempts that are accepted by the non-blocking
transport.  If the transport would block on a send (i.e., transmission of the
packet would exceed the TCP-friendly fair share of network resources), the
send fails."

In the fluid simulator each flow receives a per-step packet budget derived
from its allocated rate.  :class:`NonBlockingSender` exposes exactly the
``try_send`` semantics the pseudocode of Figure 5 relies on: a send succeeds
while budget remains and fails once the budget for the current step is
exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class SendResult:
    """Outcome of one send attempt."""

    accepted: bool
    sequence: int


@dataclass
class NonBlockingSender:
    """Per-destination non-blocking send window refreshed each simulation step."""

    #: Packets the transport will accept this step.
    budget: int = 0
    #: Fractional budget carried over between steps so long-run rates are exact.
    carryover: float = 0.0
    #: Sequence numbers accepted during the current step (drained by the simulator).
    accepted: List[int] = field(default_factory=list)
    #: Counters for accounting / tests.
    total_accepted: int = 0
    total_rejected: int = 0

    def refresh(self, rate_packets_per_step: float) -> None:
        """Start a new step with a budget derived from the allocated rate."""
        if rate_packets_per_step < 0:
            raise ValueError("rate must be non-negative")
        whole = self.carryover + rate_packets_per_step
        # Truncate with an epsilon: repeated float carries can leave ``whole``
        # a hair under an integer (e.g. 1.9999999999999998 for rate 1.9),
        # which would silently drop one packet from the long-run budget.
        self.budget = int(whole + 1e-9)
        self.carryover = whole - self.budget
        self.accepted = []

    def try_send(self, sequence: int) -> bool:
        """Attempt to enqueue one packet; returns False if it would block."""
        if self.budget <= 0:
            self.total_rejected += 1
            return False
        self.budget -= 1
        self.accepted.append(sequence)
        self.total_accepted += 1
        return True

    def would_block(self) -> bool:
        """True if the next ``try_send`` would fail."""
        return self.budget <= 0

    def drain(self) -> List[int]:
        """Return and clear the packets accepted this step (delivery hand-off)."""
        accepted, self.accepted = self.accepted, []
        return accepted


@dataclass
class ReliableQueue:
    """A simple FIFO send queue for transports that do not drop on overflow.

    Used by the TCP-like baseline streaming mode: packets that exceed the
    current budget are queued and sent in later steps rather than dropped.
    """

    pending: List[int] = field(default_factory=list)
    max_queue: Optional[int] = None
    dropped_overflow: int = 0

    def offer(self, sequence: int) -> None:
        """Enqueue a packet, dropping the oldest if the queue is bounded and full."""
        if self.max_queue is not None and len(self.pending) >= self.max_queue:
            self.pending.pop(0)
            self.dropped_overflow += 1
        self.pending.append(sequence)

    def take(self, budget: int) -> List[int]:
        """Dequeue up to ``budget`` packets."""
        if budget <= 0:
            return []
        taken, self.pending = self.pending[:budget], self.pending[budget:]
        return taken

    def __len__(self) -> int:
        return len(self.pending)
