"""Transport models: TCP steady-state throughput, TFRC rate control and the
non-blocking send abstraction Bullet's disjoint send routine relies on."""

from repro.transport.socket import NonBlockingSender, ReliableQueue, SendResult
from repro.transport.tcp_model import tcp_throughput_bytes_per_second, tcp_throughput_kbps
from repro.transport.tfrc import LossHistory, TfrcFlowState

__all__ = [
    "LossHistory",
    "NonBlockingSender",
    "ReliableQueue",
    "SendResult",
    "TfrcFlowState",
    "tcp_throughput_bytes_per_second",
    "tcp_throughput_kbps",
]
