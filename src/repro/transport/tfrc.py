"""TCP Friendly Rate Control (TFRC) — the per-flow rate model.

The paper transfers all data (tree edges and mesh perpendicular links) over
an *unreliable* TFRC: equation-based congestion control with no
retransmissions, a smooth sending rate, slow-start-style doubling until the
first loss, and the standard eight-interval weighted loss-history average
(RFC 3448 / Floyd et al. 2000).

Inside the fluid simulator a :class:`TfrcFlowState` is attached to each
overlay flow.  Once per simulated feedback interval (one RTT, but at least
one simulation step) the simulator reports the loss observed on the flow's
path; the state updates its allowed rate, which the fair-share allocator then
uses as a per-flow cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.transport.tcp_model import tcp_throughput_kbps
from repro.util.units import PACKET_SIZE_BYTES, PACKET_SIZE_KBITS

#: RFC 3448 weights for the eight most recent loss intervals.
LOSS_INTERVAL_WEIGHTS: List[float] = [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2]

#: Initial sending rate: one packet per RTT expressed in packets/second is the
#: RFC initial rate; we use two packets per second as a pragmatic floor so
#: flows make progress in coarse-grained simulations.
MIN_RATE_KBPS: float = 2.0 * PACKET_SIZE_KBITS


@dataclass
class LossHistory:
    """The receiver-side loss interval array from Section 2.4.

    A loss interval is the number of packets received correctly between two
    loss events.  The loss event rate reported to the sender is the inverse
    of the weighted average of the last eight intervals.
    """

    max_intervals: int = 8
    intervals: List[int] = field(default_factory=list)
    _current: int = 0
    _seen_loss: bool = False

    def record_packets(self, received: int, lost: int) -> None:
        """Account one feedback period's worth of received / lost packets.

        Losses within one period count as a single loss event, mirroring
        TFRC's definition of a loss event as one-or-more losses per RTT.
        """
        if received < 0 or lost < 0:
            raise ValueError("packet counts must be non-negative")
        self._current += received
        if lost > 0:
            self._seen_loss = True
            self.intervals.insert(0, max(self._current, 1))
            del self.intervals[self.max_intervals :]
            self._current = 0

    def loss_event_rate(self) -> float:
        """The weighted average loss event rate ``p`` (0.0 until first loss)."""
        if not self._seen_loss or not self.intervals:
            return 0.0
        # Include the currently open interval if it is already longer than the
        # most recent closed one (standard TFRC history discounting).
        intervals = list(self.intervals)
        if self._current > intervals[0]:
            intervals.insert(0, self._current)
            intervals = intervals[: self.max_intervals]
        weights = LOSS_INTERVAL_WEIGHTS[: len(intervals)]
        weighted = sum(weight * interval for weight, interval in zip(weights, intervals))
        mean_interval = weighted / sum(weights)
        if mean_interval <= 1.0:
            # Every packet is part of a loss event; report just under 1 so the
            # TCP response function stays defined (it diverges at p = 1).
            return 0.99
        return min(0.99, 1.0 / mean_interval)


@dataclass
class TfrcFlowState:
    """Sender-side TFRC state for one overlay flow.

    The model captures the aspects of TFRC that matter for the paper's
    evaluation: slow-start doubling until the first loss event, the
    equation-based cap afterwards, smooth (rather than instantaneous) rate
    increases, and responsiveness to congestion signalled by losses.
    """

    rtt_s: float
    packet_size_bytes: int = PACKET_SIZE_BYTES
    initial_rate_kbps: float = MIN_RATE_KBPS
    #: Multiplicative ramp per feedback interval while in slow start.
    slow_start_gain: float = 2.0
    #: Additive-increase fraction per feedback interval after slow start.
    congestion_avoidance_gain: float = 0.25

    allowed_rate_kbps: float = field(init=False)
    loss_history: LossHistory = field(default_factory=LossHistory)
    _in_slow_start: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        self.allowed_rate_kbps = max(self.initial_rate_kbps, MIN_RATE_KBPS)

    @property
    def in_slow_start(self) -> bool:
        """True until the first loss event has been observed."""
        return self._in_slow_start

    def equation_rate_kbps(self) -> float:
        """The TCP response function evaluated at the current loss event rate."""
        p = self.loss_history.loss_event_rate()
        return tcp_throughput_kbps(self.rtt_s, p, self.packet_size_bytes)

    def on_feedback(self, received_packets: int, lost_packets: int) -> float:
        """Process one feedback interval and return the new allowed rate (Kbps).

        ``received_packets`` / ``lost_packets`` describe what the receiver saw
        since the previous feedback.  Behaviour:

        * no loss yet (slow start): double the allowed rate, like TCP slow
          start, as the paper describes ("the sender doubles its transmission
          rate each time it receives feedback" until the first loss);
        * after a loss event: cap at the equation rate; approach it additively
          from below, drop to it immediately from above.
        """
        self.loss_history.record_packets(received_packets, lost_packets)
        if lost_packets > 0:
            self._in_slow_start = False

        if self._in_slow_start:
            self.allowed_rate_kbps = max(
                MIN_RATE_KBPS, self.allowed_rate_kbps * self.slow_start_gain
            )
            return self.allowed_rate_kbps

        target = self.equation_rate_kbps()
        if target == float("inf"):
            # Loss history has drained back to zero; resume gentle growth.
            self.allowed_rate_kbps *= 1.0 + self.congestion_avoidance_gain
        elif self.allowed_rate_kbps > target:
            self.allowed_rate_kbps = max(MIN_RATE_KBPS, target)
        else:
            step = self.congestion_avoidance_gain * self.allowed_rate_kbps
            self.allowed_rate_kbps = min(target, self.allowed_rate_kbps + step)
        self.allowed_rate_kbps = max(MIN_RATE_KBPS, self.allowed_rate_kbps)
        return self.allowed_rate_kbps

    def rate_cap_kbps(self) -> float:
        """The rate the fair-share allocator should not exceed for this flow."""
        return self.allowed_rate_kbps
