"""Steady-state TCP throughput model (Padhye et al., SIGCOMM 1998).

Both TFRC and the offline bottleneck-tree algorithm (Section 4.1, assumption
3) use the TCP response function to estimate the TCP-friendly sending rate of
a flow given its round-trip time and loss event rate:

    T = s / ( R*sqrt(2p/3) + t_RTO * (3*sqrt(3p/8)) * p * (1 + 32 p^2) )

with ``s`` the packet size in bytes, ``R`` the RTT in seconds, ``p`` the loss
event rate and ``t_RTO`` the retransmission timeout (the paper uses the
simple ``t_RTO = 4R``).
"""

from __future__ import annotations

import math

from repro.util.units import PACKET_SIZE_BYTES, bytes_to_kbits


def tcp_throughput_bytes_per_second(
    rtt_s: float,
    loss_rate: float,
    packet_size_bytes: int = PACKET_SIZE_BYTES,
    rto_s: float | None = None,
) -> float:
    """Steady-state TCP throughput in bytes/second.

    For a loss rate of zero the formula diverges; the caller is expected to
    treat the result as "unconstrained" — we return ``inf`` in that case so
    the minimum with link fair shares still does the right thing.
    """
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss rate must be in [0, 1)")
    if loss_rate == 0.0:
        return float("inf")
    p = loss_rate
    rto = 4.0 * rtt_s if rto_s is None else rto_s
    denominator = rtt_s * math.sqrt(2.0 * p / 3.0) + rto * (
        3.0 * math.sqrt(3.0 * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    if denominator <= 0:
        return float("inf")
    return packet_size_bytes / denominator


def tcp_throughput_kbps(
    rtt_s: float,
    loss_rate: float,
    packet_size_bytes: int = PACKET_SIZE_BYTES,
    rto_s: float | None = None,
) -> float:
    """Steady-state TCP throughput in Kbps (the unit used everywhere else)."""
    rate_bytes = tcp_throughput_bytes_per_second(rtt_s, loss_rate, packet_size_bytes, rto_s)
    if math.isinf(rate_bytes):
        return float("inf")
    return bytes_to_kbits(rate_bytes)
