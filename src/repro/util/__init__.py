"""Small shared utilities: deterministic RNG management, unit helpers, hashing."""

from repro.util.hashing import stable_hash, universal_hash_family
from repro.util.rng import SeededRng, spawn_rng
from repro.util.units import (
    KBPS,
    MBPS,
    PACKET_SIZE_BYTES,
    PACKET_SIZE_KBITS,
    bytes_to_kbits,
    kbits_to_bytes,
    kbps_to_packets_per_second,
    packets_to_kbits,
)

__all__ = [
    "KBPS",
    "MBPS",
    "PACKET_SIZE_BYTES",
    "PACKET_SIZE_KBITS",
    "SeededRng",
    "bytes_to_kbits",
    "kbits_to_bytes",
    "kbps_to_packets_per_second",
    "packets_to_kbits",
    "spawn_rng",
    "stable_hash",
    "universal_hash_family",
]
