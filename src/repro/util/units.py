"""Units used throughout the simulator.

All bandwidths are expressed in Kbps (kilobits per second) to match the
numbers reported in the paper (Table 1 link ranges, 600 Kbps streaming rate,
30 Kbps control overhead).  Data is modelled as fixed-size packets carrying a
monotonically increasing sequence number, exactly as in the paper's "null"
encoding where "each sequence number directly specifies a particular data
block".
"""

from __future__ import annotations

#: One Kbps expressed in Kbps (identity; kept for readability at call sites).
KBPS: float = 1.0

#: One Mbps expressed in Kbps.
MBPS: float = 1000.0

#: Packet payload size used by the paper's prototype (typical MTU-sized).
PACKET_SIZE_BYTES: int = 1500

#: Packet size in kilobits; 1500 bytes == 12 Kbit.
PACKET_SIZE_KBITS: float = PACKET_SIZE_BYTES * 8 / 1000.0


def bytes_to_kbits(n_bytes: float) -> float:
    """Convert a byte count to kilobits."""
    return n_bytes * 8.0 / 1000.0


def kbits_to_bytes(kbits: float) -> float:
    """Convert kilobits to bytes."""
    return kbits * 1000.0 / 8.0


def kbps_to_packets_per_second(rate_kbps: float, packet_kbits: float = PACKET_SIZE_KBITS) -> float:
    """Convert a rate in Kbps to packets per second for a given packet size."""
    if packet_kbits <= 0:
        raise ValueError("packet size must be positive")
    return rate_kbps / packet_kbits


def packets_to_kbits(n_packets: float, packet_kbits: float = PACKET_SIZE_KBITS) -> float:
    """Convert a packet count to kilobits."""
    return n_packets * packet_kbits
