"""Deterministic random number management.

Every stochastic component of the reproduction (topology generation, random
tree construction, RanSub subset selection, loss draws, gossip target
selection) draws from a named child of a single root seed, so a whole
experiment is reproducible from one integer and individual subsystems remain
decoupled: adding draws to one subsystem does not perturb another.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and a label."""
    digest = zlib.crc32(f"{root_seed}:{name}".encode("utf-8"))
    return (root_seed * 1_000_003 + digest) & 0x7FFF_FFFF_FFFF_FFFF


class SeededRng:
    """A labelled wrapper around :class:`random.Random`.

    Provides the handful of sampling helpers the protocols need, plus the
    ability to spawn further named children (e.g. one per overlay node).
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(_derive_seed(seed, name))

    def child(self, name: str) -> "SeededRng":
        """Create a child generator whose stream is independent of this one."""
        return SeededRng(_derive_seed(self.seed, self.name + "/" + name), name)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements; clamps ``k`` to the population size."""
        k = min(k, len(population))
        return self._random.sample(population, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one element with probability proportional to its weight."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def coin(self, p_true: float) -> bool:
        """Return ``True`` with probability ``p_true``."""
        return self._random.random() < p_true

    def permutation(self, items: Iterable[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._random.shuffle(out)
        return out


def spawn_rng(seed: int, *names: str) -> SeededRng:
    """Convenience constructor walking a path of child names from a root seed."""
    rng = SeededRng(seed)
    for name in names:
        rng = rng.child(name)
    return rng
