"""Hash helpers used by the Bloom filters and min-wise summary tickets.

The paper uses cheap universal permutation functions of the form
``P_j(x) = (a * x + b) mod |U|`` for summary tickets, and ``k`` independent
hash functions for Bloom filters.  Both are provided here so the reconcile
package stays free of hashing details.
"""

from __future__ import annotations

import zlib
from typing import Callable, List

#: A large prime used as the default universe size for permutation functions.
DEFAULT_UNIVERSE: int = (1 << 31) - 1  # Mersenne prime 2^31 - 1


def stable_hash(value: int | str, salt: int = 0) -> int:
    """A deterministic 32-bit hash, stable across processes and Python runs.

    ``hash()`` is randomized per process for strings, so protocol state that
    must be comparable across runs (summary tickets, Bloom filter contents)
    goes through this helper instead.
    """
    data = f"{salt}:{value}".encode("utf-8")
    return zlib.crc32(data) & 0xFFFF_FFFF


def linear_permutation(a: int, b: int, universe: int = DEFAULT_UNIVERSE) -> Callable[[int], int]:
    """Return the permutation function ``x -> (a*x + b) mod universe``.

    With a prime universe and ``a`` not a multiple of the modulus this is a
    bijection on ``[0, universe)``, exactly the "specialized hash function"
    the paper describes for populating summary tickets.
    """
    if universe <= 1:
        raise ValueError("universe must be > 1")
    a = a % universe
    if a == 0:
        a = 1
    b = b % universe

    def permute(x: int) -> int:
        return (a * x + b) % universe

    return permute


def universal_hash_family(
    count: int, seed: int = 0, universe: int = DEFAULT_UNIVERSE
) -> List[Callable[[int], int]]:
    """Build ``count`` independent linear permutation functions.

    The coefficients are derived deterministically from ``seed`` so two nodes
    configured with the same seed agree on the family — a requirement for
    comparing summary tickets between nodes.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    functions: List[Callable[[int], int]] = []
    for index in range(count):
        a = (stable_hash(f"a:{index}", seed) % (universe - 1)) + 1
        b = stable_hash(f"b:{index}", seed) % universe
        functions.append(linear_permutation(a, b, universe))
    return functions
