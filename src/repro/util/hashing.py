"""Hash helpers used by the Bloom filters and min-wise summary tickets.

The paper uses cheap universal permutation functions of the form
``P_j(x) = (a * x + b) mod |U|`` for summary tickets, and ``k`` independent
hash functions for Bloom filters.  Both are provided here so the reconcile
package stays free of hashing details.
"""

from __future__ import annotations

import zlib
from typing import Callable, List

#: A large prime used as the default universe size for permutation functions.
DEFAULT_UNIVERSE: int = (1 << 31) - 1  # Mersenne prime 2^31 - 1


def stable_hash(value: int | str, salt: int = 0) -> int:
    """A deterministic 32-bit hash, stable across processes and Python runs.

    ``hash()`` is randomized per process for strings, so protocol state that
    must be comparable across runs (summary tickets, Bloom filter contents)
    goes through this helper instead.
    """
    data = f"{salt}:{value}".encode("utf-8")
    return zlib.crc32(data) & 0xFFFF_FFFF


class _LinearPermutation:
    """The permutation ``x -> (a*x + b) mod universe``, as a picklable callable.

    Summary tickets travel inside RanSub control messages, which cross
    process boundaries when the head mesh runs sharded — a plain closure
    cannot be pickled, this can.
    """

    __slots__ = ("a", "b", "universe")

    def __init__(self, a: int, b: int, universe: int) -> None:
        self.a = a
        self.b = b
        self.universe = universe

    def __call__(self, x: int) -> int:
        return (self.a * x + self.b) % self.universe

    def __reduce__(self):
        return (_LinearPermutation, (self.a, self.b, self.universe))


def linear_permutation(a: int, b: int, universe: int = DEFAULT_UNIVERSE) -> Callable[[int], int]:
    """Return the permutation function ``x -> (a*x + b) mod universe``.

    With a prime universe and ``a`` not a multiple of the modulus this is a
    bijection on ``[0, universe)``, exactly the "specialized hash function"
    the paper describes for populating summary tickets.
    """
    if universe <= 1:
        raise ValueError("universe must be > 1")
    a = a % universe
    if a == 0:
        a = 1
    b = b % universe
    return _LinearPermutation(a, b, universe)


def permutation_coefficients(
    count: int, seed: int = 0, universe: int = DEFAULT_UNIVERSE
) -> List[tuple[int, int]]:
    """The raw ``(a, b)`` pairs behind :func:`universal_hash_family`.

    Returned in the family's order and already normalized exactly as
    :func:`linear_permutation` normalizes them, so
    ``(a * x + b) % universe`` reproduces ``family[i](x)`` bit for bit —
    callers use the pairs for batched arithmetic on hot paths.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    cached = _COEFFICIENT_CACHE.get((count, seed, universe))
    if cached is None:
        cached = []
        for index in range(count):
            a = (stable_hash(f"a:{index}", seed) % (universe - 1)) + 1
            b = stable_hash(f"b:{index}", seed) % universe
            cached.append((a, b))
        _COEFFICIENT_CACHE[(count, seed, universe)] = cached
    return list(cached)


def universal_hash_family(
    count: int, seed: int = 0, universe: int = DEFAULT_UNIVERSE
) -> List[Callable[[int], int]]:
    """Build ``count`` independent linear permutation functions.

    The coefficients are derived deterministically from ``seed`` so two nodes
    configured with the same seed agree on the family — a requirement for
    comparing summary tickets between nodes.  Families are cached per
    ``(count, seed, universe)``: the functions are pure, and constructing a
    summary ticket per node per RanSub epoch must not re-derive 2·count
    hashes every time.
    """
    cached = _FAMILY_CACHE.get((count, seed, universe))
    if cached is None:
        cached = [
            linear_permutation(a, b, universe)
            for a, b in permutation_coefficients(count, seed, universe)
        ]
        _FAMILY_CACHE[(count, seed, universe)] = cached
    return list(cached)


#: Caches for the deterministic permutation families (pure functions).
_COEFFICIENT_CACHE: dict = {}
_FAMILY_CACHE: dict = {}
