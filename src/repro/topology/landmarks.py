"""Seeded landmark / virtual-coordinate latency estimation.

Exact RTT lookups cost one underlay path resolution per *pair*; at 100k
overlay nodes the clustering layer would resolve millions of pairs just to
elect heads and route joins.  The classic fix (GNP/Vivaldi-style virtual
coordinates) is to measure each node against a small set of shared
*landmarks* and estimate everything else from those coordinates:
O(landmarks) measurements per node instead of O(pairs) overall.

This module implements the deterministic variant the reproduction needs:

* Landmarks are a seeded sample of the participant hosts, so the same seed
  always picks the same landmarks.
* A node's coordinate is its vector of RTTs to each landmark, computed from
  the landmark side (``topology.path(landmark, node)``) so that in routing
  engine mode every lookup is served by one of ``n_landmarks`` warm
  shortest-path trees.  Duplex links carry the same delay both ways, so
  landmark→node delay equals node→landmark delay and the RTT is twice the
  one-way delay.
* ``estimate_rtt(a, b)`` brackets the true RTT with the triangle
  inequality — ``lower = max_i |c_i(a) - c_i(b)|`` and
  ``upper = min_i (c_i(a) + c_i(b))`` — and returns the bracket midpoint.
  Because shortest-path delay over symmetric links is a metric, the true
  RTT always lies inside ``[lower, upper]``; the hypothesis suite in
  ``tests/topology/test_landmarks.py`` asserts exactly that bound.

The estimator is deliberately side-effect free with respect to determinism:
estimates are pure functions of (topology, seed, pair), independent of query
order, and the per-node coordinate cache only memoizes those pure values.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.topology.graph import Topology
from repro.util.rng import spawn_rng

#: How many landmarks the estimator samples by default.  Eight keeps the
#: per-node probe cost trivial while giving the triangle bracket enough
#: independent pivots to stay tight on transit-stub topologies.
DEFAULT_LANDMARKS = 8

#: The estimator mode names ``ExperimentConfig.latency_estimator`` accepts.
ESTIMATOR_NAMES = ("exact", "landmark")


class LandmarkLatencyEstimator:
    """Estimate pairwise RTTs from per-node landmark coordinates."""

    kind = "landmark"

    def __init__(
        self,
        topology: Topology,
        candidates: Sequence[int],
        seed: int,
        n_landmarks: int = DEFAULT_LANDMARKS,
    ) -> None:
        if n_landmarks < 1:
            raise ValueError("n_landmarks must be at least 1")
        if not candidates:
            raise ValueError("landmark estimator needs at least one candidate host")
        self.topology = topology
        self.seed = seed
        rng = spawn_rng(seed, "landmarks")
        self.landmarks: Tuple[int, ...] = tuple(
            sorted(rng.sample(sorted(set(candidates)), n_landmarks))
        )
        # One shortest-path tree per landmark serves every coordinate probe.
        topology.warm_routes(self.landmarks)
        self._coordinates: Dict[int, Tuple[float, ...]] = {}

    def coordinates(self, node: int) -> Tuple[float, ...]:
        """The node's RTT-to-each-landmark vector (memoized, pure)."""
        cached = self._coordinates.get(node)
        if cached is None:
            cached = tuple(
                2.0 * self.topology.path(landmark, node).delay_s
                for landmark in self.landmarks
            )
            self._coordinates[node] = cached
        return cached

    def bracket(self, a: int, b: int) -> Tuple[float, float]:
        """Triangle-inequality bounds ``(lower, upper)`` on rtt(a, b)."""
        if a == b:
            return 0.0, 0.0
        ca = self.coordinates(a)
        cb = self.coordinates(b)
        lower = max(abs(x - y) for x, y in zip(ca, cb))
        upper = min(x + y for x, y in zip(ca, cb))
        return lower, upper

    def estimate_rtt(self, a: int, b: int) -> float:
        """Estimated RTT in seconds: the midpoint of the triangle bracket."""
        lower, upper = self.bracket(a, b)
        return 0.5 * (lower + upper)


def build_estimator(
    name: str,
    topology: Topology,
    candidates: Sequence[int],
    seed: int,
    n_landmarks: int = DEFAULT_LANDMARKS,
) -> Optional[LandmarkLatencyEstimator]:
    """Resolve an ``ExperimentConfig.latency_estimator`` name.

    ``exact`` returns ``None`` — callers treat the absence of an estimator
    as "resolve pairs through the underlay", which keeps the historical
    byte-identical behaviour.  ``landmark`` builds the seeded estimator.
    """
    if name == "exact":
        return None
    if name == "landmark":
        return LandmarkLatencyEstimator(topology, candidates, seed, n_landmarks)
    raise ValueError(
        f"unknown latency estimator {name!r}; expected one of {ESTIMATOR_NAMES}"
    )
