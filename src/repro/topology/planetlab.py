"""Synthetic PlanetLab-like topology for the Section 4.7 experiments.

The paper's PlanetLab runs stress one scenario: the source is a European node
with a constrained access link, most receivers are well-connected US nodes,
and Bullet is compared against a "good" hand-crafted tree (Europeans near the
root) and a "worst" tree (the lowest-bandwidth children directly under the
root).  We cannot use PlanetLab itself, so this module builds a two-continent
topology with a trans-Atlantic transit core, a low-bandwidth source uplink,
and helpers that construct the same good/worst trees from measured
source-to-node available bandwidth (our stand-in for ``pathload``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.topology.graph import Topology
from repro.topology.links import LinkType
from repro.util.rng import SeededRng


@dataclass
class PlanetLabConfig:
    """Parameters of the synthetic wide-area testbed.

    Defaults mirror the paper's first PlanetLab experiment: 47 sites total,
    around 10 of them in Europe, a constrained root in Europe, and a
    1.5 Mbps target stream rate.
    """

    total_sites: int = 47
    europe_sites: int = 11  # includes the root
    #: Access-link capacity of the constrained European root, Kbps.
    root_access_kbps: float = 400.0
    #: Access-link range of other European sites, Kbps.
    europe_access_kbps: Tuple[float, float] = (1000.0, 3000.0)
    #: Access-link range of US sites, Kbps.
    us_access_kbps: Tuple[float, float] = (3000.0, 10000.0)
    #: Capacity of the trans-Atlantic transit links, Kbps.
    transatlantic_kbps: float = 20000.0
    #: Capacity of intra-continent transit links, Kbps.
    backbone_kbps: float = 50000.0
    seed: int = 7
    #: When True, the root is given a US-class (unconstrained) access link;
    #: used for the paper's second PlanetLab experiment.
    unconstrained_root: bool = False

    def __post_init__(self) -> None:
        if self.total_sites < 2:
            raise ValueError("need at least a root and one receiver")
        if not 1 <= self.europe_sites <= self.total_sites:
            raise ValueError("europe_sites must be within total_sites")


@dataclass
class PlanetLabTopology:
    """The generated topology plus site metadata the experiments need."""

    topology: Topology
    root: int
    sites: List[int]
    region: Dict[int, str]
    access_kbps: Dict[int, float]

    @property
    def receivers(self) -> List[int]:
        """All sites except the root."""
        return [site for site in self.sites if site != self.root]


def generate_planetlab(config: PlanetLabConfig | None = None) -> PlanetLabTopology:
    """Build the synthetic two-continent PlanetLab-like topology."""
    config = config or PlanetLabConfig()
    rng = SeededRng(config.seed, "planetlab")
    capacity_rng = rng.child("capacity")

    topology = Topology()
    next_node = 0

    def new_node(role: str) -> int:
        nonlocal next_node
        node = next_node
        topology.add_node(node, role)
        next_node += 1
        return node

    # Two regional backbone routers plus a trans-Atlantic pair of links.
    europe_core = new_node("transit")
    us_core = new_node("transit")
    topology.add_duplex_link(
        europe_core, us_core, LinkType.TRANSIT_TRANSIT, config.transatlantic_kbps, 0.045
    )

    # Regional aggregation routers (stub routers).
    europe_agg = new_node("stub")
    us_agg = new_node("stub")
    topology.add_duplex_link(
        europe_agg, europe_core, LinkType.TRANSIT_STUB, config.backbone_kbps, 0.005
    )
    topology.add_duplex_link(us_agg, us_core, LinkType.TRANSIT_STUB, config.backbone_kbps, 0.005)

    sites: List[int] = []
    region: Dict[int, str] = {}
    access: Dict[int, float] = {}

    def add_site(where: str, access_kbps: float) -> int:
        site = new_node("client")
        agg = europe_agg if where == "europe" else us_agg
        delay = 0.004 if where == "europe" else 0.006
        topology.add_duplex_link(site, agg, LinkType.CLIENT_STUB, access_kbps, delay)
        sites.append(site)
        region[site] = where
        access[site] = access_kbps
        return site

    root_access = (
        capacity_rng.uniform(*config.us_access_kbps)
        if config.unconstrained_root
        else config.root_access_kbps
    )
    root_region = "us" if config.unconstrained_root else "europe"
    root = add_site(root_region, root_access)

    europe_remaining = 0 if config.unconstrained_root else config.europe_sites - 1
    for _ in range(europe_remaining):
        add_site("europe", capacity_rng.uniform(*config.europe_access_kbps))
    while len(sites) < config.total_sites:
        add_site("us", capacity_rng.uniform(*config.us_access_kbps))

    topology.validate()
    return PlanetLabTopology(
        topology=topology, root=root, sites=sites, region=region, access_kbps=access
    )


def measure_available_bandwidth(testbed: PlanetLabTopology) -> Dict[int, float]:
    """Estimate source-to-site available bandwidth (the ``pathload`` stand-in).

    With nothing else running, the available bandwidth from the root to a
    site is the bottleneck capacity along the routing path — which is what an
    available-bandwidth probe measures on an otherwise idle path.
    """
    estimates: Dict[int, float] = {}
    for site in testbed.receivers:
        info = testbed.topology.path(testbed.root, site)
        estimates[site] = info.bottleneck_kbps
    return estimates


def _layered_tree(root: int, ordered: List[int], fanout: int) -> Dict[int, int]:
    """Build a parent map by filling a ``fanout``-ary tree in the given order."""
    parents: Dict[int, int] = {}
    frontier: List[int] = [root]
    child_count: Dict[int, int] = {root: 0}
    position = 0
    for node in ordered:
        while child_count[frontier[position]] >= fanout:
            position += 1
        parent = frontier[position]
        parents[node] = parent
        child_count[parent] += 1
        child_count[node] = 0
        frontier.append(node)
    return parents


def build_good_tree(testbed: PlanetLabTopology, fanout: int = 3) -> Dict[int, int]:
    """The paper's "good" tree: highest measured bandwidth nodes nearest the root."""
    estimates = measure_available_bandwidth(testbed)
    ordered = sorted(testbed.receivers, key=lambda site: estimates[site], reverse=True)
    return _layered_tree(testbed.root, ordered, fanout)


def build_worst_tree(testbed: PlanetLabTopology, fanout: int = 3) -> Dict[int, int]:
    """The paper's "worst" tree: lowest measured bandwidth nodes nearest the root."""
    estimates = measure_available_bandwidth(testbed)
    ordered = sorted(testbed.receivers, key=lambda site: estimates[site])
    return _layered_tree(testbed.root, ordered, fanout)
