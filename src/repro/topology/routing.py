"""The amortized underlay routing plane (per-source trees + versioned caches).

Every control and data exchange in this reproduction crosses real underlay
paths (the paper's Section 4.1 fixed-routing assumption), so path computation
sits under *everything*: the control channel, TFRC flows, OMBT probes and
tree construction.  Resolving each freshly discovered peer pair with its own
per-pair Dijkstra made underlay routing the dominant per-step cost at 500+
nodes, with the flash-crowd join spike as the worst case.

:class:`RoutingEngine` amortizes that work three ways:

* **per-source shortest-path trees** — a pure-python binary-heap Dijkstra
  computes the tree from one source *once*; the path to every destination a
  node ever discovers is then an O(hops) walk up the tree, instead of one
  bidirectional solve per pair;
* **split route / attribute caches** — routes depend only on link *delays*,
  so ``set_link_loss`` / ``set_link_capacity`` no longer invalidate routes at
  all: they bump loss/capacity epoch counters and cached routes lazily
  recompute ``PathInfo.loss_rate`` / ``bottleneck_kbps`` along the
  already-known links on next access;
* **a ``warm(sources, dsts)`` batch API** — the experiment session calls it
  at overlay construction and on every mid-run join, so the flash-crowd
  discovery spike resolves its paths outside the hot step loop.

Tie-breaking note: with the generators' continuous random link delays the
delay-weighted shortest path between two hosts is unique, so the engine's
Dijkstra and the legacy per-pair networkx resolution pick the same routes and
the two modes export byte-identical results (gated in CI).  ``PathInfo``
fields are computed by walking the chosen path in order, exactly as the
legacy code does, so even float rounding matches.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.topology.graph import PathInfo


@dataclass
class RoutingStats:
    """Work counters for the routing plane (what the engine avoided doing)."""

    #: Per-source shortest-path-tree solves (the only expensive operation).
    dijkstra_runs: int = 0
    #: Paths materialized by walking a tree (cheap, O(hops)).
    paths_extracted: int = 0
    #: Queries answered straight from the route cache.
    cache_hits: int = 0
    #: Cached routes whose loss was lazily recomputed after a loss epoch bump.
    loss_refreshes: int = 0
    #: Cached routes whose bottleneck was recomputed after a capacity bump.
    capacity_refreshes: int = 0
    #: Cached routes whose latency was recomputed after a delay epoch bump.
    delay_refreshes: int = 0
    #: Full invalidations (structural topology changes only).
    invalidations: int = 0
    #: Routes dropped by the LRU bound on the route cache.
    route_evictions: int = 0

    def describe(self) -> Dict[str, float]:
        """Counters as a flat float mapping (for logging/diagnostics)."""
        return {
            "dijkstra_runs": float(self.dijkstra_runs),
            "paths_extracted": float(self.paths_extracted),
            "cache_hits": float(self.cache_hits),
            "loss_refreshes": float(self.loss_refreshes),
            "capacity_refreshes": float(self.capacity_refreshes),
            "delay_refreshes": float(self.delay_refreshes),
            "invalidations": float(self.invalidations),
            "route_evictions": float(self.route_evictions),
        }


class _CachedRoute:
    """One resolved route plus the attribute epochs it was computed under."""

    __slots__ = ("info", "loss_epoch", "capacity_epoch", "delay_epoch")

    def __init__(
        self, info: PathInfo, loss_epoch: int, capacity_epoch: int, delay_epoch: int
    ) -> None:
        self.info = info
        self.loss_epoch = loss_epoch
        self.capacity_epoch = capacity_epoch
        self.delay_epoch = delay_epoch


#: A shortest-path tree: ``tree[node]`` is the index of the link that enters
#: ``node`` on the shortest path from the tree's source (-1 when unreachable
#: or when ``node`` is the source itself).  Dense node ids use a compact
#: ``array``; sparse ids fall back to a dict.
ShortestPathTree = Union[array, Dict[int, int]]


class RoutingEngine:
    """Amortized shortest-path routing over a :class:`Topology`'s links.

    The engine reads the topology's live link list and its structural
    version; it never touches networkx.  All state is rebuilt lazily when
    the structure version moves (nodes/links added), which only happens
    during topology construction in practice.
    """

    #: Default bound on materialized routes (~1M pairs covers a 1000-host
    #: full mesh; beyond that the cache evicts least-recently-used routes).
    DEFAULT_MAX_ROUTES = 1 << 20

    def __init__(self, topology, max_routes: Optional[int] = None) -> None:
        if max_routes is None:
            max_routes = self.DEFAULT_MAX_ROUTES
        if max_routes < 1:
            raise ValueError("max_routes must be positive")
        self._topology = topology
        self._links = topology.links  # the live list the topology appends to
        self._built_version = -1
        self._dense = True
        self._n = 0
        self._adjacency: Union[
            List[List[Tuple[int, float, int]]], Dict[int, List[Tuple[int, float, int]]]
        ] = []
        self._trees: Dict[int, ShortestPathTree] = {}
        #: Route cache in recency order (python dicts preserve insertion
        #: order; hits re-insert once the bound has been reached, making the
        #: dict an LRU without per-hit overhead while it is far from full).
        self._routes: Dict[Tuple[int, int], _CachedRoute] = {}
        self.max_routes = max_routes
        self._lru_active = False
        #: Bumped by the topology whenever any link's loss rate changes.
        self.loss_epoch = 0
        #: Bumped by the topology whenever any link's capacity changes.
        self.capacity_epoch = 0
        #: Bumped by the topology whenever any link's live delay changes.
        #: Routes are pinned (the paper's fixed-routing assumption), only
        #: the cached latency aggregate refreshes lazily.
        self.delay_epoch = 0
        self.stats = RoutingStats()

    # ------------------------------------------------------------ invalidation
    def note_loss_change(self) -> None:
        """A link loss rate changed: routes stay, loss refreshes lazily."""
        self.loss_epoch += 1

    def note_capacity_change(self) -> None:
        """A link capacity changed: routes stay, bottlenecks refresh lazily."""
        self.capacity_epoch += 1

    def note_delay_change(self) -> None:
        """A link's live delay changed: routes stay pinned to the fixed
        routing metric, cached ``PathInfo.delay_s`` refreshes lazily."""
        self.delay_epoch += 1

    def invalidate(self) -> None:
        """Drop all trees and routes (structural change or explicit clear)."""
        self._trees.clear()
        self._routes.clear()
        self._lru_active = False
        self._built_version = -1

    def _ensure_current(self) -> None:
        version = self._topology.structure_version
        if version == self._built_version:
            return
        links = self._links
        max_node = -1
        for link in links:
            if link.src > max_node:
                max_node = link.src
            if link.dst > max_node:
                max_node = link.dst
        n = max_node + 1
        # Generators number nodes densely from zero; guard against a caller
        # with huge sparse ids blowing up the per-source arrays.
        dense = n <= 4 * len(links) + 1024
        # Dijkstra weights use the frozen routing metric, not the live delay:
        # set_link_delay jitter must never change route choice, even across
        # a structural rebuild (the nx reference keeps its original weights
        # the same way).
        if dense:
            adjacency_list: List[List[Tuple[int, float, int]]] = [[] for _ in range(n)]
            for link in links:
                adjacency_list[link.src].append(
                    (link.dst, link.routing_metric_s, link.index)
                )
            self._adjacency = adjacency_list
        else:
            adjacency_dict: Dict[int, List[Tuple[int, float, int]]] = {}
            for link in links:
                adjacency_dict.setdefault(link.src, []).append(
                    (link.dst, link.routing_metric_s, link.index)
                )
            self._adjacency = adjacency_dict
        self._dense = dense
        self._n = n
        self._trees.clear()
        self._routes.clear()
        self._built_version = version
        self.stats.invalidations += 1

    # ---------------------------------------------------------------- solving
    def shortest_path_tree(self, src: int) -> ShortestPathTree:
        """The shortest-path tree rooted at ``src`` (computed once, cached)."""
        self._ensure_current()
        tree = self._trees.get(src)
        if tree is None:
            tree = self._solve(src)
            self._trees[src] = tree
        return tree

    def _solve(self, src: int) -> ShortestPathTree:
        """Binary-heap Dijkstra from ``src`` over the link-delay weights."""
        self.stats.dijkstra_runs += 1
        push, pop = heapq.heappush, heapq.heappop
        if self._dense:
            n = self._n
            parent = array("l", [-1]) * n
            if not 0 <= src < n:
                return parent
            infinity = float("inf")
            dist = [infinity] * n
            dist[src] = 0.0
            adjacency = self._adjacency
            heap: List[Tuple[float, int]] = [(0.0, src)]
            while heap:
                d, u = pop(heap)
                if d > dist[u]:
                    continue  # stale heap entry
                for v, weight, index in adjacency[u]:
                    nd = d + weight
                    if nd < dist[v]:
                        dist[v] = nd
                        parent[v] = index
                        push(heap, (nd, v))
            return parent
        parent_map: Dict[int, int] = {src: -1}
        dist_map: Dict[int, float] = {src: 0.0}
        adjacency = self._adjacency
        heap = [(0.0, src)]
        while heap:
            d, u = pop(heap)
            if d > dist_map.get(u, d):
                continue
            for v, weight, index in adjacency.get(u, ()):  # type: ignore[union-attr]
                nd = d + weight
                known = dist_map.get(v)
                if known is None or nd < known:
                    dist_map[v] = nd
                    parent_map[v] = index
                    push(heap, (nd, v))
        return parent_map

    # ---------------------------------------------------------------- queries
    def path_info(self, src: int, dst: int) -> PathInfo:
        """The shortest routing path ``src -> dst`` with fresh attributes.

        Raises ``ValueError`` when no route exists.  Cached routes survive
        loss and capacity changes: only the affected attribute is recomputed
        along the already-known links, never the route itself.
        """
        if src == dst:
            return PathInfo(
                links=(), delay_s=0.0, loss_rate=0.0, bottleneck_kbps=float("inf")
            )
        self._ensure_current()
        key = (src, dst)
        routes = self._routes
        route = routes.get(key)
        if route is not None:
            self.stats.cache_hits += 1
            if self._lru_active:
                # Under eviction pressure, refresh recency (dict order).
                del routes[key]
                routes[key] = route
            if (
                route.loss_epoch != self.loss_epoch
                or route.capacity_epoch != self.capacity_epoch
                or route.delay_epoch != self.delay_epoch
            ):
                self._refresh(route)
            return route.info
        tree = self.shortest_path_tree(src)
        links = self._links
        chain: List[int] = []
        append = chain.append
        node = dst
        # Walk the tree inline (one bounds check up front, none per hop:
        # every predecessor the walk visits is a known link endpoint).
        if isinstance(tree, dict):
            while node != src:
                index = tree.get(node, -1)
                if index < 0:
                    raise ValueError(f"no route from {src} to {dst}")
                append(index)
                node = links[index].src
        else:
            if not 0 <= node < len(tree) or tree[node] < 0:
                raise ValueError(f"no route from {src} to {dst}")
            while node != src:
                index = tree[node]
                append(index)
                node = links[index].src
        chain.reverse()
        info = self._materialize(tuple(chain))
        if len(routes) >= self.max_routes:
            self._lru_active = True
            del routes[next(iter(routes))]
            self.stats.route_evictions += 1
        routes[key] = _CachedRoute(
            info, self.loss_epoch, self.capacity_epoch, self.delay_epoch
        )
        self.stats.paths_extracted += 1
        return info

    def _materialize(self, link_indices: Tuple[int, ...]) -> PathInfo:
        """Build a PathInfo by walking the links in path order.

        The iteration order matches the legacy networkx-backed computation
        exactly, so float accumulation is bit-identical for the same route.
        """
        links = self._links
        delay = 0.0
        survive = 1.0
        bottleneck = float("inf")
        for index in link_indices:
            link = links[index]
            delay += link.delay_s
            survive *= 1.0 - link.loss_rate
            if link.capacity_kbps < bottleneck:
                bottleneck = link.capacity_kbps
        return PathInfo(
            links=link_indices,
            delay_s=delay,
            loss_rate=1.0 - survive,
            bottleneck_kbps=bottleneck,
        )

    def _refresh(self, route: _CachedRoute) -> None:
        """Recompute stale attributes along the cached route's links.

        A fresh ``PathInfo`` replaces the cached one (the old object may
        have escaped to callers that snapshot it, e.g. flows)."""
        if route.loss_epoch != self.loss_epoch:
            self.stats.loss_refreshes += 1
        if route.capacity_epoch != self.capacity_epoch:
            self.stats.capacity_refreshes += 1
        if route.delay_epoch != self.delay_epoch:
            self.stats.delay_refreshes += 1
        route.info = self._materialize(route.info.links)
        route.loss_epoch = self.loss_epoch
        route.capacity_epoch = self.capacity_epoch
        route.delay_epoch = self.delay_epoch

    # ----------------------------------------------------------------- warming
    def warm(
        self, sources: Iterable[int], dsts: Optional[Sequence[int]] = None
    ) -> int:
        """Batch pre-resolution: solve each source's tree once, up front.

        With ``dsts`` given, the routes ``source -> dst`` are additionally
        materialized into the cache (unreachable pairs are skipped — a later
        live query still raises).  Without ``dsts`` only the trees are built,
        which already removes every Dijkstra from subsequent queries while
        keeping the route cache populated on demand.  Returns the number of
        routes materialized.
        """
        self._ensure_current()
        materialized = 0
        targets = list(dsts) if dsts is not None else None
        routes = self._routes
        for src in dict.fromkeys(sources):
            tree = self.shortest_path_tree(src)
            if targets is None:
                continue
            is_dict = isinstance(tree, dict)
            size = len(tree)
            for dst in targets:
                if dst == src or (src, dst) in routes:
                    continue
                if is_dict:
                    if tree.get(dst, -1) < 0:
                        continue
                elif not 0 <= dst < size or tree[dst] < 0:
                    continue
                self.path_info(src, dst)
                materialized += 1
        return materialized

    # ------------------------------------------------------------------- misc
    def cached_route_count(self) -> int:
        """Routes currently materialized in the cache."""
        return len(self._routes)

    def cached_tree_count(self) -> int:
        """Per-source shortest-path trees currently cached."""
        return len(self._trees)

    def describe(self) -> Dict[str, float]:
        """Status summary: cache sizes, epochs and work counters."""
        summary = {
            "trees": float(len(self._trees)),
            "routes": float(len(self._routes)),
            "max_routes": float(self.max_routes),
            "loss_epoch": float(self.loss_epoch),
            "capacity_epoch": float(self.capacity_epoch),
            "delay_epoch": float(self.delay_epoch),
        }
        summary.update(self.stats.describe())
        return summary
