"""Physical network topologies: transit-stub generation, Table 1 bandwidth
classes, the Section 4.5 loss model and the synthetic PlanetLab testbed."""

from repro.topology.generator import TopologyConfig, generate_topology, place_overlay_participants
from repro.topology.graph import Link, PathInfo, Topology
from repro.topology.links import (
    BandwidthClass,
    LinkSpec,
    LinkType,
    TABLE_1_RANGES,
    bandwidth_range,
    sample_capacity,
    sample_delay,
)
from repro.topology.loss import LossConfig, apply_loss_model, clear_loss
from repro.topology.planetlab import (
    PlanetLabConfig,
    PlanetLabTopology,
    build_good_tree,
    build_worst_tree,
    generate_planetlab,
    measure_available_bandwidth,
)
from repro.topology.routing import RoutingEngine, RoutingStats

__all__ = [
    "BandwidthClass",
    "Link",
    "LinkSpec",
    "LinkType",
    "LossConfig",
    "PathInfo",
    "PlanetLabConfig",
    "PlanetLabTopology",
    "RoutingEngine",
    "RoutingStats",
    "TABLE_1_RANGES",
    "Topology",
    "TopologyConfig",
    "apply_loss_model",
    "bandwidth_range",
    "build_good_tree",
    "build_worst_tree",
    "clear_loss",
    "generate_planetlab",
    "generate_topology",
    "measure_available_bandwidth",
    "place_overlay_participants",
    "sample_capacity",
    "sample_delay",
]
