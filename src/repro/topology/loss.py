"""Loss-rate assignment for the lossy-network experiments (Section 4.5).

The paper modifies its topologies so that:

* every non-transit link gets a loss rate drawn uniformly from [0, 0.003]
  (max 0.3%),
* transit links get a loss rate drawn uniformly from [0, 0.001] (max 0.1%),
* 5% of links are designated "overloaded" and get a loss rate drawn uniformly
  from [0.05, 0.1] (max 10%), following Padmanabhan et al.'s link-lossiness
  inference work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.graph import Topology
from repro.topology.links import LinkType
from repro.util.rng import SeededRng


@dataclass
class LossConfig:
    """Parameters of the Section 4.5 loss model."""

    non_transit_max: float = 0.003
    transit_max: float = 0.001
    overloaded_fraction: float = 0.05
    overloaded_min: float = 0.05
    overloaded_max: float = 0.10
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.overloaded_fraction <= 1.0:
            raise ValueError("overloaded_fraction must be in [0, 1]")
        if self.overloaded_min > self.overloaded_max:
            raise ValueError("overloaded_min must be <= overloaded_max")
        for value in (self.non_transit_max, self.transit_max, self.overloaded_max):
            if not 0.0 <= value < 1.0:
                raise ValueError("loss rates must be in [0, 1)")


def apply_loss_model(topology: Topology, config: LossConfig | None = None) -> None:
    """Assign per-link loss rates to ``topology`` in place, per Section 4.5."""
    config = config or LossConfig()
    rng = SeededRng(config.seed, "loss")
    baseline_rng = rng.child("baseline")
    overload_rng = rng.child("overload")

    n_links = topology.num_links
    n_overloaded = int(round(config.overloaded_fraction * n_links))
    overloaded = set(overload_rng.sample(range(n_links), n_overloaded))

    for link in topology.links:
        if link.index in overloaded:
            loss = overload_rng.uniform(config.overloaded_min, config.overloaded_max)
        elif link.link_type == LinkType.TRANSIT_TRANSIT:
            loss = baseline_rng.uniform(0.0, config.transit_max)
        else:
            loss = baseline_rng.uniform(0.0, config.non_transit_max)
        topology.set_link_loss(link.index, loss)


def clear_loss(topology: Topology) -> None:
    """Remove all loss from a topology (back to the loss-free baseline)."""
    for link in topology.links:
        topology.set_link_loss(link.index, 0.0)
