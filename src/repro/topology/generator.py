"""Synthetic transit-stub topology generation (the INET / ModelNet substitute).

The paper evaluates on 20,000-node INET-generated topologies with overlay
participants attached to one-degree stub nodes and link bandwidths drawn from
the Table 1 ranges.  INET itself models AS-level structure; what the
evaluation actually depends on is (i) the four-way link classification,
(ii) per-class bandwidth ranges, and (iii) multi-hop routes between client
hosts that share transit links.  The generator below produces exactly that
structure — a transit core, stub domains hanging off transit routers, and
client hosts hanging off stub routers — at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.topology.graph import Topology
from repro.topology.links import (
    BandwidthClass,
    LinkType,
    sample_capacity,
    sample_delay,
)
from repro.util.rng import SeededRng


@dataclass
class TopologyConfig:
    """Parameters of the synthetic transit-stub topology.

    The defaults give a ~1,000-node topology (the default experiment scale of
    this reproduction); raising ``stub_domains`` / ``clients_per_stub`` scales
    toward the paper's 20,000-node setting.
    """

    #: Number of transit (core) routers, fully meshed plus a ring for slack.
    transit_routers: int = 10
    #: Number of stub domains, each homed on one transit router.
    stub_domains: int = 40
    #: Routers per stub domain, connected in a small random mesh.
    routers_per_stub: int = 4
    #: Client hosts attached to each stub domain.
    clients_per_stub: int = 20
    #: Extra stub-stub peering links between random stub domains.
    extra_stub_stub_links: int = 10
    #: Table 1 bandwidth class for every link.
    bandwidth_class: BandwidthClass = BandwidthClass.MEDIUM
    #: Root seed for all random draws (structure, capacities, delays).
    seed: int = 1

    def __post_init__(self) -> None:
        if self.transit_routers < 1:
            raise ValueError("need at least one transit router")
        if self.stub_domains < 1:
            raise ValueError("need at least one stub domain")
        if self.routers_per_stub < 1:
            raise ValueError("need at least one router per stub domain")
        if self.clients_per_stub < 0:
            raise ValueError("clients_per_stub must be non-negative")

    @property
    def total_clients(self) -> int:
        """Total number of client hosts the topology will contain."""
        return self.stub_domains * self.clients_per_stub


def generate_topology(config: TopologyConfig) -> Topology:
    """Generate a transit-stub topology according to ``config``.

    Structure:

    * transit routers form a ring plus random chords (Transit-Transit links);
    * each stub domain's gateway router connects to one transit router
      (Transit-Stub links);
    * routers inside a stub domain form a path plus random chords, and a few
      random peering links join distinct stub domains (Stub-Stub links);
    * each client host hangs off one stub router (Client-Stub links) — these
      are the one-degree nodes overlay participants are placed on.
    """
    rng = SeededRng(config.seed, "topology")
    structure_rng = rng.child("structure")
    capacity_rng = rng.child("capacity")
    delay_rng = rng.child("delay")

    topology = Topology()
    next_node = 0

    def new_node(role: str) -> int:
        nonlocal next_node
        node = next_node
        topology.add_node(node, role)
        next_node += 1
        return node

    def connect(a: int, b: int, link_type: LinkType) -> None:
        capacity = sample_capacity(config.bandwidth_class, link_type, capacity_rng)
        delay = sample_delay(link_type, delay_rng)
        topology.add_duplex_link(a, b, link_type, capacity, delay)

    # Transit core: ring + random chords.
    transit = [new_node("transit") for _ in range(config.transit_routers)]
    if len(transit) > 1:
        for i, router in enumerate(transit):
            connect(router, transit[(i + 1) % len(transit)], LinkType.TRANSIT_TRANSIT)
        chords = max(0, len(transit) // 2)
        for _ in range(chords):
            a, b = structure_rng.sample(transit, 2)
            if topology.link_between(a, b) is None:
                connect(a, b, LinkType.TRANSIT_TRANSIT)

    # Stub domains.
    stub_routers_by_domain: List[List[int]] = []
    for domain in range(config.stub_domains):
        routers = [new_node("stub") for _ in range(config.routers_per_stub)]
        stub_routers_by_domain.append(routers)
        # Intra-domain path.
        for a, b in zip(routers, routers[1:]):
            connect(a, b, LinkType.STUB_STUB)
        # A random chord for domains with >3 routers.
        if len(routers) > 3:
            a, b = structure_rng.sample(routers, 2)
            if topology.link_between(a, b) is None:
                connect(a, b, LinkType.STUB_STUB)
        # Home the domain's gateway (first router) on a transit router.
        gateway = routers[0]
        home = structure_rng.choice(transit)
        connect(gateway, home, LinkType.TRANSIT_STUB)
        # Client hosts.
        for _ in range(config.clients_per_stub):
            client = new_node("client")
            attach = structure_rng.choice(routers)
            connect(client, attach, LinkType.CLIENT_STUB)

    # Extra stub-stub peering links across domains.
    if config.stub_domains > 1:
        for _ in range(config.extra_stub_stub_links):
            domain_a, domain_b = structure_rng.sample(range(config.stub_domains), 2)
            a = structure_rng.choice(stub_routers_by_domain[domain_a])
            b = structure_rng.choice(stub_routers_by_domain[domain_b])
            if topology.link_between(a, b) is None:
                connect(a, b, LinkType.STUB_STUB)

    topology.validate()
    return topology


def place_overlay_participants(
    topology: Topology, count: int, seed: int = 1
) -> List[int]:
    """Choose ``count`` distinct client hosts to act as overlay participants.

    Mirrors the paper: "We randomly assign our participant nodes to act as
    clients connected to one-degree stub nodes in the topology."
    """
    clients = topology.client_nodes
    if count > len(clients):
        raise ValueError(
            f"requested {count} overlay participants but topology has only {len(clients)} clients"
        )
    rng = SeededRng(seed, "placement")
    return rng.sample(clients, count)
