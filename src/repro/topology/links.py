"""Link classification and the paper's Table 1 bandwidth ranges.

The paper classifies every physical link as Client-Stub, Stub-Stub,
Transit-Stub or Transit-Transit (following Calvert/Doar/Zegura) and assigns
each link a bandwidth drawn uniformly at random from a per-class range.  The
three range sets (low / medium / high) are reproduced verbatim from Table 1
and are the knob every bandwidth-sweep experiment (Figures 9 and 12) turns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.rng import SeededRng


class LinkType(enum.Enum):
    """Physical link classes from the transit-stub topology model."""

    CLIENT_STUB = "client-stub"
    STUB_STUB = "stub-stub"
    TRANSIT_STUB = "transit-stub"
    TRANSIT_TRANSIT = "transit-transit"


class BandwidthClass(enum.Enum):
    """The three bandwidth-constraint settings from Table 1."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


#: Table 1 of the paper, in Kbps: (min, max) uniform range per link type.
TABLE_1_RANGES: Dict[BandwidthClass, Dict[LinkType, Tuple[float, float]]] = {
    BandwidthClass.LOW: {
        LinkType.CLIENT_STUB: (300.0, 600.0),
        LinkType.STUB_STUB: (500.0, 1000.0),
        LinkType.TRANSIT_STUB: (1000.0, 2000.0),
        LinkType.TRANSIT_TRANSIT: (2000.0, 4000.0),
    },
    BandwidthClass.MEDIUM: {
        LinkType.CLIENT_STUB: (800.0, 2800.0),
        LinkType.STUB_STUB: (1000.0, 4000.0),
        LinkType.TRANSIT_STUB: (1000.0, 4000.0),
        LinkType.TRANSIT_TRANSIT: (5000.0, 10000.0),
    },
    BandwidthClass.HIGH: {
        LinkType.CLIENT_STUB: (1600.0, 5600.0),
        LinkType.STUB_STUB: (2000.0, 8000.0),
        LinkType.TRANSIT_STUB: (2000.0, 8000.0),
        LinkType.TRANSIT_TRANSIT: (10000.0, 20000.0),
    },
}

#: Typical one-way propagation delays per link type, in seconds.  The paper
#: derives delays from INET's planar embedding; we use representative values
#: of the same order (LAN-ish client links, wide-area transit links).
DEFAULT_DELAYS: Dict[LinkType, Tuple[float, float]] = {
    LinkType.CLIENT_STUB: (0.001, 0.005),
    LinkType.STUB_STUB: (0.002, 0.010),
    LinkType.TRANSIT_STUB: (0.005, 0.020),
    LinkType.TRANSIT_TRANSIT: (0.010, 0.050),
}


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one directed physical link."""

    src: int
    dst: int
    link_type: LinkType
    capacity_kbps: float
    delay_s: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_kbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.delay_s < 0:
            raise ValueError("link delay must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")


def bandwidth_range(bandwidth_class: BandwidthClass, link_type: LinkType) -> Tuple[float, float]:
    """Return the (min, max) Kbps range for a link type under a Table 1 class."""
    return TABLE_1_RANGES[bandwidth_class][link_type]


def sample_capacity(
    bandwidth_class: BandwidthClass, link_type: LinkType, rng: SeededRng
) -> float:
    """Draw a link capacity uniformly at random from its Table 1 range."""
    low, high = bandwidth_range(bandwidth_class, link_type)
    return rng.uniform(low, high)


def sample_delay(link_type: LinkType, rng: SeededRng) -> float:
    """Draw a one-way propagation delay for a link type."""
    low, high = DEFAULT_DELAYS[link_type]
    return rng.uniform(low, high)
