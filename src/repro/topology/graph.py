"""The physical network topology used by the fluid simulator.

A :class:`Topology` is a directed graph of routers and client hosts.  Overlay
participants are attached to one-degree stub ("client") nodes, exactly as the
paper attaches its 1000 overlay instances to client-stub links of the INET
topologies.  The topology owns routing (fixed shortest paths, matching the
paper's assumption 1 in Section 4.1: "the routing path between any two overlay
participants is fixed") and exposes per-path aggregate loss and delay.

Routing is served by the amortized :class:`~repro.topology.routing.
RoutingEngine` by default (per-source shortest-path trees, split
route/attribute caches, a batch ``warm`` API); setting
:attr:`Topology.use_routing_engine` to False restores the legacy per-pair
networkx resolution, kept as the byte-identical reference mode for
benchmarks and equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.topology.links import LinkSpec, LinkType

#: Cache-coherence invariants checked by ``python -m repro.analysis`` (COH001).
#: The routing engine and the allocator hang caches off these epochs, so every
#: mutation of a guarded link attribute — anywhere in the tree, hence the
#: ``tree`` scope — must bump the matching counter on the same control-flow
#: path.  See the README's "Determinism invariants" section.
CACHE_INVARIANTS = {
    "Topology": {
        "scope": "tree",
        "attrs": {
            "loss_rate": ["note_loss_change"],
            "capacity_kbps": ["note_capacity_change", "_capacity_version"],
            "delay_s": ["note_delay_change"],
        },
        "calls": {
            "_links.append": ["_structure_version"],
            "_graph.add_node": ["_structure_version"],
            "_graph.add_edge": ["_structure_version"],
        },
    },
}


@dataclass
class Link:
    """A directed physical link with mutable loss (Section 4.5 modifies it)."""

    index: int
    src: int
    dst: int
    link_type: LinkType
    capacity_kbps: float
    delay_s: float
    loss_rate: float = 0.0
    #: Frozen routing metric, set the first time ``set_link_delay`` mutates
    #: the live delay.  ``None`` means the live delay *is* the metric (the
    #: common case: the delay never changed).  Routing — nx edge weights and
    #: the routing engine's Dijkstra — always uses the metric, so latency
    #: jitter never re-routes a pair (fixed-routing assumption).
    routing_weight_s: Optional[float] = None

    @property
    def routing_metric_s(self) -> float:
        """The delay weight routing decisions are pinned to."""
        return self.delay_s if self.routing_weight_s is None else self.routing_weight_s

    def as_spec(self) -> LinkSpec:
        """Snapshot this link as an immutable spec."""
        return LinkSpec(
            src=self.src,
            dst=self.dst,
            link_type=self.link_type,
            capacity_kbps=self.capacity_kbps,
            delay_s=self.delay_s,
            loss_rate=self.loss_rate,
        )


@dataclass
class PathInfo:
    """Routing information for one ordered pair of hosts."""

    links: Tuple[int, ...]
    delay_s: float
    loss_rate: float
    bottleneck_kbps: float


class Topology:
    """A physical network graph with fixed shortest-path routing.

    Nodes are integers.  ``client_nodes`` are the hosts overlay participants
    may be placed on.  Links are directed; an undirected physical cable is two
    ``Link`` objects sharing capacity independently (full duplex), which is
    how ModelNet emulates links as well.
    """

    def __init__(self, max_cached_routes: Optional[int] = None) -> None:
        from repro.topology.routing import RoutingEngine  # deferred: cycle

        self._graph = nx.DiGraph()
        self._links: List[Link] = []
        self._link_index: Dict[Tuple[int, int], int] = {}
        self._client_nodes: List[int] = []
        self._clients_view: Tuple[int, ...] = ()
        self._node_types: Dict[int, str] = {}
        self._path_cache: Dict[Tuple[int, int], PathInfo] = {}
        self._capacity_map: Optional[Dict[int, float]] = None
        self._capacity_version: int = 0
        self._structure_version: int = 0
        #: Route queries go through the amortized routing engine; False
        #: restores the legacy per-pair networkx resolution (byte-identical
        #: reference mode for benchmarks and equivalence tests).
        self.use_routing_engine: bool = True
        self._routing = RoutingEngine(self, max_routes=max_cached_routes)

    # ------------------------------------------------------------------ build
    def add_node(self, node: int, role: str) -> None:
        """Add a node with a role: ``transit``, ``stub`` or ``client``."""
        if role not in ("transit", "stub", "client"):
            raise ValueError(f"unknown node role: {role!r}")
        self._graph.add_node(node)
        self._node_types[node] = role
        if role == "client":
            self._client_nodes.append(node)
        self._structure_version += 1

    def add_link(
        self,
        src: int,
        dst: int,
        link_type: LinkType,
        capacity_kbps: float,
        delay_s: float,
        loss_rate: float = 0.0,
    ) -> Link:
        """Add one directed link.  Raises if the endpoints are unknown."""
        for node in (src, dst):
            if node not in self._graph:
                raise KeyError(f"node {node} not in topology")
        if (src, dst) in self._link_index:
            raise ValueError(f"duplicate link {src}->{dst}")
        link = Link(
            index=len(self._links),
            src=src,
            dst=dst,
            link_type=link_type,
            capacity_kbps=capacity_kbps,
            delay_s=delay_s,
            loss_rate=loss_rate,
        )
        self._links.append(link)
        self._link_index[(src, dst)] = link.index
        self._graph.add_edge(src, dst, weight=delay_s, index=link.index)
        self._capacity_map = None
        self._capacity_version += 1
        self._structure_version += 1
        # A new link can shorten existing routes; cached paths must go.
        self._path_cache.clear()
        return link

    def add_duplex_link(
        self,
        a: int,
        b: int,
        link_type: LinkType,
        capacity_kbps: float,
        delay_s: float,
        loss_rate: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Add both directions of a physical cable with identical parameters."""
        forward = self.add_link(a, b, link_type, capacity_kbps, delay_s, loss_rate)
        backward = self.add_link(b, a, link_type, capacity_kbps, delay_s, loss_rate)
        return forward, backward

    # ---------------------------------------------------------------- queries
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-mostly)."""
        return self._graph

    @property
    def links(self) -> Sequence[Link]:
        """All directed links, indexable by ``Link.index``."""
        return self._links

    @property
    def client_nodes(self) -> Sequence[int]:
        """Hosts eligible to run overlay participants (read-only view).

        Returns a cached immutable tuple instead of copying the list on
        every access; client nodes are only ever appended, so the view is
        rebuilt exactly when the count grows.
        """
        if len(self._clients_view) != len(self._client_nodes):
            self._clients_view = tuple(self._client_nodes)
        return self._clients_view

    @property
    def num_nodes(self) -> int:
        """Total number of physical nodes (routers + clients)."""
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        """Total number of directed links."""
        return len(self._links)

    def node_role(self, node: int) -> str:
        """Return ``transit``, ``stub`` or ``client`` for a node."""
        return self._node_types[node]

    def link(self, index: int) -> Link:
        """Look a link up by index."""
        return self._links[index]

    def link_between(self, src: int, dst: int) -> Optional[Link]:
        """Return the directed link src->dst, or ``None`` if absent."""
        index = self._link_index.get((src, dst))
        return None if index is None else self._links[index]

    def set_link_loss(self, index: int, loss_rate: float) -> None:
        """Set a link's loss rate (used by the lossy-network experiments).

        Routes depend only on link delays, so the routing engine keeps every
        cached route and merely bumps its loss epoch — ``PathInfo.loss_rate``
        is lazily recomputed along the already-known links on next access.
        The legacy per-pair cache (engine disabled) still drops wholesale.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._links[index].loss_rate = loss_rate
        self._path_cache.clear()
        self._routing.note_loss_change()

    def set_link_capacity(self, index: int, capacity_kbps: float) -> None:
        """Change a link's capacity (bandwidth re-provisioning scenarios).

        Bumps :attr:`capacity_version` so allocation engines caching the
        capacity map re-read it.  The routing engine keeps its routes and
        lazily refreshes their ``bottleneck_kbps``; the legacy per-pair
        cache is dropped (its snapshots embed the old capacity).
        """
        if capacity_kbps <= 0:
            raise ValueError("capacity must be positive")
        self._links[index].capacity_kbps = capacity_kbps
        self._path_cache.clear()
        self._capacity_map = None
        self._capacity_version += 1
        self._routing.note_capacity_change()

    def set_link_delay(self, index: int, delay_s: float) -> None:
        """Change a link's live one-way delay (latency-jitter scenarios).

        Routing stays pinned: per the paper's fixed-routing assumption
        (Section 4.1) the delay-weighted shortest paths are chosen once, at
        construction time, so a latency change never re-routes a pair — the
        graph's edge ``weight`` keeps the construction-time routing metric
        in both routing modes.  Only the *aggregate* latency of already
        resolved paths changes: the routing engine bumps its delay epoch and
        cached ``PathInfo.delay_s`` is lazily re-walked along the pinned
        links on next access; the legacy per-pair cache drops wholesale and
        recomputes over the unchanged routes.
        """
        if delay_s <= 0:
            raise ValueError("delay must be positive")
        link = self._links[index]
        if link.routing_weight_s is None:
            link.routing_weight_s = link.delay_s
        link.delay_s = delay_s
        self._path_cache.clear()
        self._routing.note_delay_change()

    @property
    def capacity_version(self) -> int:
        """Monotonic counter bumped whenever any link capacity may change."""
        return self._capacity_version

    @property
    def structure_version(self) -> int:
        """Monotonic counter bumped on structural changes (nodes/links added).

        The routing engine rebuilds its adjacency and drops its trees and
        routes when this moves; loss/capacity changes do *not* bump it.
        """
        return self._structure_version

    def capacity_map(self) -> Dict[int, float]:
        """Cached ``link index -> capacity`` map for the bandwidth allocator.

        Rebuilt lazily after structural changes; callers must treat the
        returned mapping as read-only and watch :attr:`capacity_version` for
        invalidation instead of copying it every step.
        """
        if self._capacity_map is None:
            self._capacity_map = {
                link.index: link.capacity_kbps for link in self._links
            }
        return self._capacity_map

    def links_of_type(self, link_type: LinkType) -> List[Link]:
        """All links of a given class."""
        return [link for link in self._links if link.link_type == link_type]

    # ---------------------------------------------------------------- routing
    def path(self, src: int, dst: int) -> PathInfo:
        """Return the fixed (delay-weighted shortest) routing path src -> dst.

        Served by the amortized routing engine (one per-source Dijkstra
        covers every destination, loss/capacity changes refresh attributes
        without recomputing routes); with :attr:`use_routing_engine` False
        the legacy per-pair networkx resolution runs instead, whose cache is
        invalidated wholesale when loss or capacity rates change.
        """
        if src == dst:
            return PathInfo(links=(), delay_s=0.0, loss_rate=0.0, bottleneck_kbps=float("inf"))
        if self.use_routing_engine:
            return self._routing.path_info(src, dst)
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        try:
            node_path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath as exc:
            raise ValueError(f"no route from {src} to {dst}") from exc
        link_indices: List[int] = []
        delay = 0.0
        survive = 1.0
        bottleneck = float("inf")
        for a, b in zip(node_path, node_path[1:]):
            index = self._link_index[(a, b)]
            link = self._links[index]
            link_indices.append(index)
            delay += link.delay_s
            survive *= 1.0 - link.loss_rate
            bottleneck = min(bottleneck, link.capacity_kbps)
        info = PathInfo(
            links=tuple(link_indices),
            delay_s=delay,
            loss_rate=1.0 - survive,
            bottleneck_kbps=bottleneck,
        )
        self._path_cache[(src, dst)] = info
        return info

    def round_trip(self, a: int, b: int) -> Tuple[float, float]:
        """Return (rtt seconds, round-trip loss rate) between two hosts.

        Matches the paper's OMBT definition: delay is the sum over both
        directions, loss is ``1 - prod(1 - l(e))`` over both directions.
        """
        forward = self.path(a, b)
        backward = self.path(b, a)
        rtt = forward.delay_s + backward.delay_s
        loss = 1.0 - (1.0 - forward.loss_rate) * (1.0 - backward.loss_rate)
        return rtt, loss

    def clear_path_cache(self) -> None:
        """Drop cached routes (call after structural changes)."""
        self._path_cache.clear()
        self._routing.invalidate()

    def warm_routes(
        self, sources: Iterable[int], dsts: Optional[Sequence[int]] = None
    ) -> int:
        """Batch pre-resolution of underlay routes (engine mode only).

        Builds each source's shortest-path tree once — amortizing one solve
        over every peer the source ever discovers — and, when ``dsts`` is
        given, materializes those routes into the cache.  The experiment
        session calls this at overlay construction and on every mid-run
        join, so flash-crowd discovery spikes resolve their paths outside
        the hot step loop.  A no-op returning 0 in legacy mode.
        """
        if not self.use_routing_engine:
            return 0
        return self._routing.warm(sources, dsts)

    @property
    def routing(self):
        """The amortized routing engine (read-mostly; used by benchmarks)."""
        return self._routing

    @property
    def routing_stats(self):
        """Work counters from the routing engine (what it avoided doing)."""
        return self._routing.stats

    # ------------------------------------------------------------------ debug
    def describe(self) -> Dict[str, int]:
        """Return a small summary dictionary (node/link counts by class)."""
        by_type: Dict[str, int] = {}
        for link in self._links:
            by_type[link.link_type.value] = by_type.get(link.link_type.value, 0) + 1
        summary = {
            "nodes": self.num_nodes,
            "clients": len(self._client_nodes),
            "links": self.num_links,
        }
        summary.update({f"links[{key}]": value for key, value in by_type.items()})
        return summary

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for client in self._client_nodes:
            out_degree = self._graph.out_degree(client)
            if out_degree != 1:
                raise ValueError(f"client {client} must have exactly one uplink, has {out_degree}")
        undirected = self._graph.to_undirected()
        if self._graph.number_of_nodes() > 1 and not nx.is_connected(undirected):
            raise ValueError("topology is not connected")


def iter_path_links(topology: Topology, src: int, dst: int) -> Iterable[Link]:
    """Yield the Link objects along the routing path from src to dst."""
    info = topology.path(src, dst)
    for index in info.links:
        yield topology.link(index)
