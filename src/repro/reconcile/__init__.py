"""Informed content delivery primitives: working sets, min-wise summary
tickets, Bloom filters and resemblance estimation."""

from repro.reconcile.bloom import BloomFilter, FifoBloomFilter, optimal_parameters
from repro.reconcile.resemblance import (
    estimated_resemblance,
    expected_useful_fraction,
    jaccard_similarity,
    rank_peers_by_divergence,
)
from repro.reconcile.summary_ticket import DEFAULT_TICKET_ENTRIES, SummaryTicket
from repro.reconcile.working_set import WorkingSet

__all__ = [
    "BloomFilter",
    "DEFAULT_TICKET_ENTRIES",
    "FifoBloomFilter",
    "SummaryTicket",
    "WorkingSet",
    "estimated_resemblance",
    "expected_useful_fraction",
    "jaccard_similarity",
    "optimal_parameters",
    "rank_peers_by_divergence",
]
