"""Bloom filters for approximate reconciliation (Section 2.3).

A receiver installs its Bloom filter at each sending peer; the peer then
forwards only packets whose sequence numbers are *not* described by the
filter.  Because Bloom filters admit false positives but never false
negatives, a peer may occasionally withhold a packet the receiver is missing,
but it never wastes bandwidth on a packet the filter says the receiver has —
exactly the trade-off the paper wants.

Bullet additionally bounds the filter population by periodically removing
low sequence numbers (Section 3.1).  A plain Bloom filter cannot delete, so
:class:`FifoBloomFilter` keeps per-bit *counters* alongside the wire-format
bit array: evicting a key decrements its counters and clears the bits that
reach zero, which is observationally identical to rebuilding the bit array
over the surviving keys but costs O(evicted) instead of O(window) per
window advance.  Every observable mutation bumps :attr:`FifoBloomFilter.
version`, so callers (recovery refreshes) can detect "nothing changed" and
reuse a previously exported :meth:`snapshot` instead of re-serializing.
"""

from __future__ import annotations

import heapq
import math
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.hashing import stable_hash

#: Cache-coherence invariants checked by ``python -m repro.analysis`` (COH001).
#: Exported snapshots are reused while :attr:`FifoBloomFilter.version` stands
#: still, so every observable mutation — inserting a key, moving the window
#: floor — must bump it on the same control-flow path.  ``_remove_lowest`` is
#: a decrement helper whose callers own the bump.
CACHE_INVARIANTS = {
    "FifoBloomFilter": {
        "scope": "module",
        "attrs": {
            "low_sequence": ["version"],
        },
        "calls": {
            "heapq.heappush": ["version"],
        },
        "exempt": ["_remove_lowest"],
    },
}

#: Large Mersenne prime used by the integer hash family below.
_HASH_PRIME = (1 << 61) - 1

_MIX_MULT = 0x9E3779B97F4A7C15
_MIX_ADD = 0x2545F4914F6CDD1D
_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def optimal_parameters(expected_items: int, false_positive_rate: float) -> Tuple[int, int]:
    """Return (bits, hash_count) achieving the target false-positive rate.

    Standard sizing: ``m = -n ln(p) / (ln 2)^2`` and ``k = (m/n) ln 2``.
    """
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    hashes = max(1, int(round(bits / expected_items * math.log(2))))
    return max(bits, 8), hashes


@lru_cache(maxsize=None)
def _hash_coefficients(num_hashes: int) -> List[Tuple[int, int]]:
    """The pairwise-independent integer hash family shared by all filters.

    Derived from :func:`stable_hash`, so every filter with the same
    ``num_hashes`` uses the identical family — a snapshot's bit array is
    therefore interchangeable with a freshly built filter's.  Cached so the
    same-``num_hashes`` family is one shared object: position caching below
    keys off that identity.
    """
    return [
        (stable_hash(f"bloom-a-{i}") | 1, stable_hash(f"bloom-b-{i}"))
        for i in range(num_hashes)
    ]


#: Hash positions depend only on ``(num_bits, num_hashes, key)`` because the
#: coefficient family is deterministic per ``num_hashes``.  In a run every
#: node sizes its filters identically and hashes the *same* stream sequence
#: numbers, so positions computed by one filter serve them all.  Bounded:
#: each family is cleared wholesale when it reaches the cap (simple and
#: O(1) amortized; sequence locality repopulates the useful entries fast).
_POSITION_CACHE: Dict[Tuple[int, int], Dict[int, Tuple[int, ...]]] = {}
_POSITION_CACHE_MAX = 1 << 15


def _position_family(num_bits: int, num_hashes: int) -> Dict[int, Tuple[int, ...]]:
    family = _POSITION_CACHE.get((num_bits, num_hashes))
    if family is None:
        family = _POSITION_CACHE[(num_bits, num_hashes)] = {}
    return family


def _hash_key(
    key: int,
    num_bits: int,
    coefficients: Sequence[Tuple[int, int]],
    family: Optional[Dict[int, Tuple[int, ...]]],
) -> Tuple[int, ...]:
    """Compute (and cache, when a family is given) a key's bit positions."""
    x = (key * _MIX_MULT + _MIX_ADD) & _MASK64
    positions = tuple(((a * x + b) % _HASH_PRIME) % num_bits for a, b in coefficients)
    if family is not None:
        if len(family) >= _POSITION_CACHE_MAX:
            family.clear()
        family[key] = positions
    return positions


class BloomFilter:
    """A classic bit-array Bloom filter over integer keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self.count = 0
        # Pairwise-independent integer hash family; integer arithmetic keeps
        # membership checks cheap on the simulator's hot path.
        self._coefficients = _hash_coefficients(num_hashes)

    @classmethod
    def with_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes)

    def _positions(self, key: int) -> Iterable[int]:
        x = (key * _MIX_MULT + _MIX_ADD) & _MASK64
        for a, b in self._coefficients:
            yield ((a * x + b) % _HASH_PRIME) % self.num_bits

    def add(self, key: int) -> None:
        """Insert an integer key."""
        bits = self._bits
        x = (key * _MIX_MULT + _MIX_ADD) & _MASK64
        num_bits = self.num_bits
        for a, b in self._coefficients:
            position = ((a * x + b) % _HASH_PRIME) % num_bits
            bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def update(self, keys: Iterable[int]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: int) -> bool:
        bits = self._bits
        x = (key * _MIX_MULT + _MIX_ADD) & _MASK64
        num_bits = self.num_bits
        for a, b in self._coefficients:
            position = ((a * x + b) % _HASH_PRIME) % num_bits
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def false_positive_rate(self) -> float:
        """Expected FP rate for the current population: ``(1 - e^{-kn/m})^k``."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def size_bytes(self) -> int:
        """Wire size of the filter (used for control-overhead accounting)."""
        return len(self._bits)

    def clear(self) -> None:
        """Remove all keys."""
        self._bits = bytearray(len(self._bits))
        self.count = 0


def _rebuild_snapshot(
    num_bits: int,
    num_hashes: int,
    bits: bytes,
    low_sequence: int,
    count: int,
    coefficients: Optional[Sequence[Tuple[int, int]]],
) -> "BloomSnapshot":
    """Unpickle helper: re-derive the hash family instead of shipping it.

    ``coefficients=None`` marks a snapshot built from the shared
    deterministic family, which every process derives identically — the
    rebuilt snapshot re-attaches the *local* position cache rather than
    dragging the sender's across the pipe.
    """
    if coefficients is None:
        coefficients = _hash_coefficients(num_hashes)
    return BloomSnapshot(num_bits, num_hashes, bits, low_sequence, count, coefficients)


class BloomSnapshot:
    """A frozen, read-only view of a FIFO Bloom filter at one instant.

    This is what actually travels inside a recovery request: the wire-format
    bit array plus the window floor, detached from the live filter so later
    receptions at the owner do not mutate what the sender already installed.
    Membership semantics match :class:`FifoBloomFilter` (keys below the floor
    report present).
    """

    __slots__ = (
        "num_bits",
        "num_hashes",
        "low_sequence",
        "count",
        "_bits",
        "_coefficients",
        "_family",
    )

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        bits: bytes,
        low_sequence: int,
        count: int,
        coefficients: Sequence[Tuple[int, int]],
    ) -> None:
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.low_sequence = low_sequence
        self.count = count
        self._bits = bits
        # Snapshots built from live filters carry the shared deterministic
        # family, so cached positions apply; a hand-rolled coefficient list
        # (tests) bypasses the cache.
        if coefficients is _hash_coefficients(num_hashes):
            self._family: Optional[Dict[int, Tuple[int, ...]]] = _position_family(
                num_bits, num_hashes
            )
        else:
            self._family = None
        self._coefficients = list(coefficients)

    def __contains__(self, key: int) -> bool:
        if key < self.low_sequence:
            return True
        bits = self._bits
        family = self._family
        positions = family.get(key) if family is not None else None
        if positions is None:
            positions = _hash_key(key, self.num_bits, self._coefficients, family)
        for position in positions:
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def missing(self, keys: Iterable[int]) -> List[int]:
        """The subset of ``keys`` the filter does *not* describe.

        One tight loop instead of a Python call per key — this is the
        sender-side hot path when a recovery request is installed.
        """
        bits = self._bits
        num_bits = self.num_bits
        low = self.low_sequence
        coefficients = self._coefficients
        family = self._family
        out: List[int] = []
        append = out.append
        for key in keys:
            if key < low:
                continue
            positions = family.get(key) if family is not None else None
            if positions is None:
                positions = _hash_key(key, num_bits, coefficients, family)
            for position in positions:
                if not bits[position >> 3] & (1 << (position & 7)):
                    append(key)
                    break
        return out

    def size_bytes(self) -> int:
        """Wire size of the bit array."""
        return len(self._bits)

    def false_positive_rate(self) -> float:
        """Expected FP rate for the snapshot population."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def __reduce__(self):
        # Snapshots cross process pipes inside recovery/peering messages
        # (sharded head meshes).  Ship only the wire state: the hash family
        # and the position cache are process-local and re-derived on load —
        # the default slots pickling would serialize the whole shared
        # position cache with every message.
        coefficients = None if self._family is not None else self._coefficients
        return (
            _rebuild_snapshot,
            (
                self.num_bits,
                self.num_hashes,
                self._bits,
                self.low_sequence,
                self.count,
                coefficients,
            ),
        )


class FifoBloomFilter:
    """A Bloom filter over a sliding window of sequence numbers.

    Bullet "periodically cleans up the Bloom filter by removing lower
    sequence numbers from it" so the population (and therefore the false
    positive rate) stays bounded.  Eviction is incremental: per-bit counters
    track how many live keys set each bit, so dropping the lowest keys
    decrements counters and clears only the bits whose count reaches zero —
    observationally identical to the historical rebuild-over-the-window but
    without re-hashing every surviving key.

    :attr:`version` increments on every observable mutation (an accepted
    insert, an eviction, a window advance); callers use it to detect that
    the filter content is unchanged since their last look.
    """

    def __init__(self, num_bits: int, num_hashes: int, window: int = 2048) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._coefficients = _hash_coefficients(num_hashes)
        self._family = _position_family(num_bits, num_hashes)
        #: Live keys as a min-heap (duplicates allowed, as with the historical
        #: key list): the heap root is always the lowest key in the window.
        self._heap: List[int] = []
        self._counts: List[int] = [0] * num_bits
        self._bits = bytearray((num_bits + 7) // 8)
        self.low_sequence = 0
        #: Bumped on every observable mutation.
        self.version = 0

    # Exposed for sizing parity with the classic filter.
    @property
    def num_bits(self) -> int:
        """Bit-array width (wire size × 8)."""
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        """Hash functions per key."""
        return self._num_hashes

    @property
    def count(self) -> int:
        """Live keys in the window (duplicates counted, as inserted)."""
        return len(self._heap)

    @classmethod
    def with_capacity(
        cls, expected_items: int, false_positive_rate: float = 0.01, window: int | None = None
    ) -> "FifoBloomFilter":
        """Size the underlying filter for the window population."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes, window=window if window is not None else expected_items)

    # ------------------------------------------------------------- mutation
    def _positions(self, key: int) -> Tuple[int, ...]:
        positions = self._family.get(key)
        if positions is None:
            positions = _hash_key(key, self._num_bits, self._coefficients, self._family)
        return positions

    def add(self, key: int) -> None:
        """Insert a sequence number (ignored if below the current window)."""
        if key < self.low_sequence:
            return
        heapq.heappush(self._heap, key)
        counts = self._counts
        bits = self._bits
        positions = self._family.get(key)
        if positions is None:
            positions = _hash_key(key, self._num_bits, self._coefficients, self._family)
        for position in positions:
            counts[position] += 1
            bits[position >> 3] |= 1 << (position & 7)
        self.version += 1
        if len(self._heap) > self.window:
            self._evict()

    def update(self, keys: Iterable[int]) -> None:
        """Insert many sequence numbers."""
        for key in keys:
            self.add(key)

    def _remove_lowest(self) -> None:
        key = heapq.heappop(self._heap)
        counts = self._counts
        bits = self._bits
        for position in self._positions(key):
            remaining = counts[position] - 1
            counts[position] = remaining
            if remaining == 0:
                bits[position >> 3] &= ~(1 << (position & 7))

    def _evict(self) -> None:
        """Drop the lowest sequence numbers beyond the window."""
        while len(self._heap) > self.window:
            self._remove_lowest()
        self.low_sequence = self._heap[0] if self._heap else 0
        self.version += 1

    def advance_window(self, low_sequence: int) -> None:
        """Explicitly drop every key below ``low_sequence``."""
        if low_sequence <= self.low_sequence:
            return
        self.low_sequence = low_sequence
        heap = self._heap
        while heap and heap[0] < low_sequence:
            self._remove_lowest()
        self.version += 1

    # -------------------------------------------------------------- queries
    def __contains__(self, key: int) -> bool:
        if key < self.low_sequence:
            # Below the window the receiver no longer cares; report present so
            # senders do not waste bandwidth on stale packets.
            return True
        bits = self._bits
        positions = self._family.get(key)
        if positions is None:
            positions = _hash_key(key, self._num_bits, self._coefficients, self._family)
        for position in positions:
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def missing(self, keys: Iterable[int]) -> List[int]:
        """The subset of ``keys`` the filter does not describe (batch probe)."""
        bits = self._bits
        num_bits = self._num_bits
        low = self.low_sequence
        coefficients = self._coefficients
        family = self._family
        out: List[int] = []
        append = out.append
        for key in keys:
            if key < low:
                continue
            positions = family.get(key)
            if positions is None:
                positions = _hash_key(key, num_bits, coefficients, family)
            for position in positions:
                if not bits[position >> 3] & (1 << (position & 7)):
                    append(key)
                    break
        return out

    def min_key(self) -> int | None:
        """The lowest live key, or ``None`` when the window is empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def size_bytes(self) -> int:
        """Wire size of the underlying bit array."""
        return len(self._bits)

    def false_positive_rate(self) -> float:
        """Expected FP rate of the underlying filter."""
        if not self._heap:
            return 0.0
        exponent = -self._num_hashes * len(self._heap) / self._num_bits
        return (1.0 - math.exp(exponent)) ** self._num_hashes

    # -------------------------------------------------------------- pickling
    def __getstate__(self):
        # Live filters can ride peering requests across process pipes
        # (sharded head meshes).  The coefficient family and the position
        # cache are process-local derived state: shipping them would drag
        # the whole shared cache along with every message.
        state = dict(self.__dict__)
        del state["_coefficients"]
        del state["_family"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._coefficients = _hash_coefficients(self._num_hashes)
        self._family = _position_family(self._num_bits, self._num_hashes)

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> BloomSnapshot:
        """A frozen copy of the current wire state.

        The snapshot's window floor is the lowest *live* key — what a
        from-scratch build over the current content would advance to — so a
        snapshot is byte- and behaviour-identical to rebuilding a fresh
        filter from the window's keys.  An empty window therefore exports no
        floor at all (a rebuild of nothing starts at zero), even when the
        live filter's own floor has advanced past old keys.
        """
        low = self._heap[0] if self._heap else 0
        return BloomSnapshot(
            num_bits=self._num_bits,
            num_hashes=self._num_hashes,
            bits=bytes(self._bits),
            low_sequence=low,
            count=len(self._heap),
            coefficients=self._coefficients,
        )
