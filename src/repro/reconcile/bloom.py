"""Bloom filters for approximate reconciliation (Section 2.3).

A receiver installs its Bloom filter at each sending peer; the peer then
forwards only packets whose sequence numbers are *not* described by the
filter.  Because Bloom filters admit false positives but never false
negatives, a peer may occasionally withhold a packet the receiver is missing,
but it never wastes bandwidth on a packet the filter says the receiver has —
exactly the trade-off the paper wants.

Bullet additionally bounds the filter population by periodically removing
low sequence numbers (Section 3.1): our :class:`FifoBloomFilter` rebuilds the
bit array over a sliding sequence window for that purpose.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.util.hashing import stable_hash

#: Large Mersenne prime used by the integer hash family below.
_HASH_PRIME = (1 << 61) - 1


def optimal_parameters(expected_items: int, false_positive_rate: float) -> Tuple[int, int]:
    """Return (bits, hash_count) achieving the target false-positive rate.

    Standard sizing: ``m = -n ln(p) / (ln 2)^2`` and ``k = (m/n) ln 2``.
    """
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
    hashes = max(1, int(round(bits / expected_items * math.log(2))))
    return max(bits, 8), hashes


class BloomFilter:
    """A classic bit-array Bloom filter over integer keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self.count = 0
        # Pairwise-independent integer hash family; integer arithmetic keeps
        # membership checks cheap on the simulator's hot path.
        self._coefficients = [
            (stable_hash(f"bloom-a-{i}") | 1, stable_hash(f"bloom-b-{i}"))
            for i in range(num_hashes)
        ]

    @classmethod
    def with_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes)

    def _positions(self, key: int) -> Iterable[int]:
        x = (key * 0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D) & 0xFFFF_FFFF_FFFF_FFFF
        for a, b in self._coefficients:
            yield ((a * x + b) % _HASH_PRIME) % self.num_bits

    def add(self, key: int) -> None:
        """Insert an integer key."""
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self.count += 1

    def update(self, keys: Iterable[int]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8)) for position in self._positions(key)
        )

    def false_positive_rate(self) -> float:
        """Expected FP rate for the current population: ``(1 - e^{-kn/m})^k``."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def size_bytes(self) -> int:
        """Wire size of the filter (used for control-overhead accounting)."""
        return len(self._bits)

    def clear(self) -> None:
        """Remove all keys."""
        self._bits = bytearray(len(self._bits))
        self.count = 0


class FifoBloomFilter:
    """A Bloom filter over a sliding window of sequence numbers.

    Bullet "periodically cleans up the Bloom filter by removing lower
    sequence numbers from it" so the population (and therefore the false
    positive rate) stays bounded.  A true Bloom filter cannot delete, so the
    FIFO variant keeps the member keys and rebuilds the bit array whenever the
    window advances — which is also how the paper's FIFO Bloom filter for
    anti-entropy behaves observationally.
    """

    def __init__(self, num_bits: int, num_hashes: int, window: int = 2048) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._keys: List[int] = []
        self._filter = BloomFilter(num_bits, num_hashes)
        self.low_sequence = 0

    @classmethod
    def with_capacity(
        cls, expected_items: int, false_positive_rate: float = 0.01, window: int | None = None
    ) -> "FifoBloomFilter":
        """Size the underlying filter for the window population."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes, window=window if window is not None else expected_items)

    def add(self, key: int) -> None:
        """Insert a sequence number (ignored if below the current window)."""
        if key < self.low_sequence:
            return
        self._keys.append(key)
        self._filter.add(key)
        if len(self._keys) > self.window:
            self._evict()

    def update(self, keys: Iterable[int]) -> None:
        """Insert many sequence numbers."""
        for key in keys:
            self.add(key)

    def _evict(self) -> None:
        """Drop the lowest sequence numbers and rebuild the bit array."""
        self._keys.sort()
        self._keys = self._keys[-self.window :]
        self.low_sequence = self._keys[0] if self._keys else 0
        self._filter.clear()
        for key in self._keys:
            self._filter.add(key)

    def advance_window(self, low_sequence: int) -> None:
        """Explicitly drop every key below ``low_sequence``."""
        if low_sequence <= self.low_sequence:
            return
        self.low_sequence = low_sequence
        self._keys = [key for key in self._keys if key >= low_sequence]
        self._filter.clear()
        for key in self._keys:
            self._filter.add(key)

    def __contains__(self, key: int) -> bool:
        if key < self.low_sequence:
            # Below the window the receiver no longer cares; report present so
            # senders do not waste bandwidth on stale packets.
            return True
        return key in self._filter

    def __len__(self) -> int:
        return len(self._keys)

    def size_bytes(self) -> int:
        """Wire size of the underlying bit array."""
        return self._filter.size_bytes()

    def false_positive_rate(self) -> float:
        """Expected FP rate of the underlying filter."""
        return self._filter.false_positive_rate()
