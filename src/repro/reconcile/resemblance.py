"""Resemblance computation between working sets (Section 2.3).

Bullet receivers "choose to peer with the node having the lowest similarity
ratio when compared to its own summary ticket", i.e. the candidate whose
content diverges most.  This module provides both the exact Jaccard
similarity (for tests and analysis) and the ticket-based estimate the
protocol actually uses, plus the peer-ranking helper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.reconcile.summary_ticket import SummaryTicket


def jaccard_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """Exact Jaccard similarity of two key sets."""
    set_a: Set[int] = set(a)
    set_b: Set[int] = set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def estimated_resemblance(ticket_a: SummaryTicket, ticket_b: SummaryTicket) -> float:
    """Min-wise estimate of the Jaccard similarity between two working sets."""
    return ticket_a.resemblance(ticket_b)


def rank_peers_by_divergence(
    own_ticket: SummaryTicket, candidates: Dict[int, SummaryTicket]
) -> List[Tuple[int, float]]:
    """Rank candidate peers most-divergent-first.

    Returns (peer, resemblance) pairs sorted ascending by resemblance, so the
    head of the list is the best peering candidate (lowest similarity).  Ties
    are broken by peer id for determinism.
    """
    scored = [
        (peer, estimated_resemblance(own_ticket, ticket)) for peer, ticket in candidates.items()
    ]
    return sorted(scored, key=lambda item: (item[1], item[0]))


def expected_useful_fraction(own: Sequence[int], remote: Sequence[int]) -> float:
    """Fraction of the remote node's content that would be new to us.

    Used in analysis/tests to validate that low resemblance really does
    correspond to a high fraction of useful (non-duplicate) packets.
    """
    remote_set = set(remote)
    if not remote_set:
        return 0.0
    own_set = set(own)
    return len(remote_set - own_set) / len(remote_set)
