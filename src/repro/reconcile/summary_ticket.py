"""Summary tickets (min-wise sketches) from Section 2.3.

A summary ticket is a small fixed-size array, one entry per permutation
function; each entry holds the minimum permuted value over the node's working
set.  The resemblance between two working sets is estimated as the fraction
of ticket entries that agree — an unbiased estimator of the Jaccard
similarity (Broder's min-wise hashing).  RanSub carries these 120-byte
tickets through the tree so receivers can pick peers whose content diverges
most from their own.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.util.hashing import DEFAULT_UNIVERSE, permutation_coefficients, universal_hash_family

#: The paper states summary tickets are "small (120 bytes)"; with 4-byte
#: entries that is 30 permutation functions.
DEFAULT_TICKET_ENTRIES: int = 30
TICKET_ENTRY_BYTES: int = 4


def _rebuild_ticket(num_entries: int, seed: int, entries) -> "SummaryTicket":
    """Unpickle helper: re-derive the permutation family from the seed."""
    ticket = SummaryTicket(num_entries=num_entries, seed=seed)
    ticket._entries = list(entries)
    return ticket


def _rebuild_custom_ticket(num_entries, seed, permutations, entries) -> "SummaryTicket":
    """Unpickle helper for tickets built over hand-rolled permutations."""
    ticket = SummaryTicket(num_entries=num_entries, seed=seed, permutations=permutations)
    ticket._entries = list(entries)
    return ticket


class SummaryTicket:
    """A min-wise sketch of a working set."""

    def __init__(
        self,
        num_entries: int = DEFAULT_TICKET_ENTRIES,
        seed: int = 0,
        permutations: Optional[Sequence[Callable[[int], int]]] = None,
    ) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.seed = seed
        if permutations is not None:
            self._permutations = list(permutations)
            self._coefficients = None
        else:
            self._permutations = universal_hash_family(num_entries, seed=seed)
            # Raw (a, b) pairs enable the batch update fast path below.
            self._coefficients = permutation_coefficients(num_entries, seed=seed)
        if len(self._permutations) != num_entries:
            raise ValueError("need exactly one permutation per ticket entry")
        self._entries: List[Optional[int]] = [None] * num_entries

    def insert(self, key: int) -> None:
        """Insert one element: each entry keeps the minimum permuted value."""
        for index, permute in enumerate(self._permutations):
            value = permute(key)
            current = self._entries[index]
            if current is None or value < current:
                self._entries[index] = value

    def update(self, keys: Iterable[int]) -> None:
        """Insert many elements."""
        if self._coefficients is not None:
            keys = list(keys)
            if not keys:
                return
            # Batch fast path: one tight ``min`` per permutation instead of a
            # Python closure call per (key, permutation) pair.  This is the
            # RanSub-epoch hot path (every node re-sketches its working set
            # each epoch).
            entries = self._entries
            universe = DEFAULT_UNIVERSE
            for index, (a, b) in enumerate(self._coefficients):
                value = min((a * key + b) % universe for key in keys)
                current = entries[index]
                if current is None or value < current:
                    entries[index] = value
            return
        for key in keys:
            self.insert(key)

    @property
    def entries(self) -> List[Optional[int]]:
        """The raw ticket entries (None where the working set was empty)."""
        return list(self._entries)

    def is_empty(self) -> bool:
        """True if nothing has been inserted."""
        return all(entry is None for entry in self._entries)

    def resemblance(self, other: "SummaryTicket") -> float:
        """Estimate Jaccard similarity as the fraction of matching entries."""
        if self.num_entries != other.num_entries:
            raise ValueError("tickets must have the same number of entries")
        if self.is_empty() and other.is_empty():
            return 1.0
        matches = sum(
            1
            for mine, theirs in zip(self._entries, other._entries)
            if mine is not None and mine == theirs
        )
        return matches / self.num_entries

    def size_bytes(self) -> int:
        """Wire size of the ticket (control-overhead accounting)."""
        return self.num_entries * TICKET_ENTRY_BYTES

    def __reduce__(self):
        # Tickets ride RanSub messages across process pipes (sharded head
        # meshes).  When the permutations are the seed-derived family, ship
        # only (size, seed, entries) and re-derive the family on load;
        # hand-rolled permutation lists (tests) pickle as constructed.
        if self._coefficients is not None:
            return (_rebuild_ticket, (self.num_entries, self.seed, self._entries))
        return (
            _rebuild_custom_ticket,
            (self.num_entries, self.seed, self._permutations, self._entries),
        )

    def copy(self) -> "SummaryTicket":
        """A snapshot sharing permutation functions but not entries."""
        clone = SummaryTicket(self.num_entries, seed=self.seed, permutations=self._permutations)
        clone._coefficients = self._coefficients
        clone._entries = list(self._entries)
        return clone

    @classmethod
    def from_working_set(
        cls, keys: Iterable[int], num_entries: int = DEFAULT_TICKET_ENTRIES, seed: int = 0
    ) -> "SummaryTicket":
        """Build a ticket directly from an iterable of sequence numbers."""
        ticket = cls(num_entries=num_entries, seed=seed)
        ticket.update(keys)
        return ticket
