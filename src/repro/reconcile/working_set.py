"""Per-node working sets of received sequence numbers (Section 3.1).

"Each node in the tree maintains a working set of the packets it has received
thus far, indexed by sequence numbers."  The working set backs three things:

* duplicate detection (is an incoming packet new?);
* the node's summary ticket and Bloom filter (rebuilt over a window);
* the (Low, High) recovery range advertised to sending peers.

Bullet removes items that are no longer needed for data reconstruction, so
the working set supports pruning below a low-water mark while remembering the
node's cumulative useful packet count.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.reconcile.bloom import FifoBloomFilter
from repro.reconcile.summary_ticket import DEFAULT_TICKET_ENTRIES, SummaryTicket


class WorkingSet:
    """The set of sequence numbers a node currently holds."""

    def __init__(self, prune_window: int = 4096, ticket_entries: int = DEFAULT_TICKET_ENTRIES,
                 ticket_seed: int = 0) -> None:
        if prune_window <= 0:
            raise ValueError("prune_window must be positive")
        self.prune_window = prune_window
        self.ticket_entries = ticket_entries
        self.ticket_seed = ticket_seed
        self._sequences: Set[int] = set()
        self._low_water: int = 0
        self._highest: int = -1
        self.total_received: int = 0
        self.total_duplicates: int = 0

    # ---------------------------------------------------------------- updates
    def add(self, sequence: int) -> bool:
        """Record a received packet; returns True if it was new (useful)."""
        if sequence < 0:
            raise ValueError("sequence numbers are non-negative")
        if sequence < self._low_water or sequence in self._sequences:
            self.total_duplicates += 1
            return False
        self._sequences.add(sequence)
        self._highest = max(self._highest, sequence)
        self.total_received += 1
        if len(self._sequences) > self.prune_window:
            self._prune()
        return True

    def update(self, sequences: Iterable[int]) -> int:
        """Add many packets; returns how many were new."""
        return sum(1 for sequence in sequences if self.add(sequence))

    def _prune(self) -> None:
        """Drop the oldest sequences beyond the prune window."""
        ordered = sorted(self._sequences)
        keep = ordered[-self.prune_window :]
        self._low_water = keep[0] if keep else self._low_water
        self._sequences = set(keep)

    def prune_below(self, low_sequence: int) -> None:
        """Explicitly drop every sequence below ``low_sequence``."""
        if low_sequence <= self._low_water:
            return
        self._low_water = low_sequence
        self._sequences = {seq for seq in self._sequences if seq >= low_sequence}

    # ---------------------------------------------------------------- queries
    def __contains__(self, sequence: int) -> bool:
        return sequence < self._low_water or sequence in self._sequences

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def highest_sequence(self) -> int:
        """Highest sequence number seen (-1 if none)."""
        return self._highest

    @property
    def low_water(self) -> int:
        """Sequences below this mark have been pruned (treated as held)."""
        return self._low_water

    def sequences(self) -> List[int]:
        """A sorted list of currently held sequence numbers."""
        return sorted(self._sequences)

    def missing_in_range(self, low: int, high: int) -> List[int]:
        """Sequence numbers in ``[low, high]`` the node does not hold."""
        if high < low:
            return []
        start = max(low, self._low_water)
        return [seq for seq in range(start, high + 1) if seq not in self._sequences]

    def recovery_range(self, span: int) -> Tuple[int, int]:
        """The (Low, High) range of sequences the node is interested in.

        The receiver "requests data within the range (Low, High) of sequence
        numbers based on what it has received"; the range trails the highest
        sequence seen by ``span`` packets and advances over time (Figure 4b).
        """
        if span <= 0:
            raise ValueError("span must be positive")
        high = self._highest
        if high < 0:
            return (0, span - 1)
        low = max(self._low_water, high - span + 1)
        return (low, high)

    # ------------------------------------------------------------- summaries
    def summary_ticket(
        self, window: Optional[int] = None, sample_stride: int = 1
    ) -> SummaryTicket:
        """Build the node's current summary ticket.

        ``window`` restricts the ticket to the most recent ``window`` sequence
        numbers (the paper keeps tickets over a bounded working set so they
        reflect *recent* content rather than everything ever received).
        ``sample_stride`` > 1 sub-samples the window before sketching — a
        simulation-performance knob.  Sampling is by *value* (only sequence
        numbers divisible by the stride are sketched) so that every node
        samples the same universe subset and resemblance estimates between
        nodes remain comparable.
        """
        if sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        if window is not None:
            if window <= 0:
                raise ValueError("window must be positive")
            keys = sorted(self._sequences)[-window:]
        else:
            keys = sorted(self._sequences)
        if sample_stride > 1:
            sampled = [key for key in keys if key % sample_stride == 0]
            # Fall back to the full window when the value-based sample is too
            # thin to say anything (tiny working sets early in a run).
            if len(sampled) >= self.ticket_entries:
                keys = sampled
        ticket = SummaryTicket(num_entries=self.ticket_entries, seed=self.ticket_seed)
        ticket.update(keys)
        return ticket

    def bloom_filter(
        self, expected_items: Optional[int] = None, false_positive_rate: float = 0.01
    ) -> FifoBloomFilter:
        """Build a Bloom filter describing the *recent* working set.

        Bullet's filters only ever describe the sequences a node still cares
        about recovering (the paper prunes low sequence numbers from the
        filter), so the filter is built over the most recent
        ``expected_items`` sequences; everything older is implicitly treated
        as already held (the FIFO filter's window floor).
        """
        population = max(len(self._sequences), 1)
        capacity = expected_items if expected_items is not None else max(population, 128)
        recent = sorted(self._sequences)[-capacity:]
        bloom = FifoBloomFilter.with_capacity(capacity, false_positive_rate, window=capacity)
        if recent:
            bloom.advance_window(recent[0])
        bloom.update(recent)
        return bloom

    def sequences_in_range(self, low: int, high: int) -> List[int]:
        """Held sequence numbers within ``[low, high]``, sorted ascending."""
        if high < low:
            return []
        return sorted(seq for seq in self._sequences if low <= seq <= high)

    def duplicate_fraction(self) -> float:
        """Fraction of all receives that were duplicates."""
        total = self.total_received + self.total_duplicates
        return self.total_duplicates / total if total else 0.0
