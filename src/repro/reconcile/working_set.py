"""Per-node working sets of received sequence numbers (Section 3.1).

"Each node in the tree maintains a working set of the packets it has received
thus far, indexed by sequence numbers."  The working set backs three things:

* duplicate detection (is an incoming packet new?);
* the node's summary ticket and Bloom filter (built over a window);
* the (Low, High) recovery range advertised to sending peers.

Bullet removes items that are no longer needed for data reconstruction, so
the working set supports pruning below a low-water mark while remembering the
node's cumulative useful packet count.

The working set is *versioned*: every observable mutation bumps
:attr:`WorkingSet.version`.  Two caches hang off that version so the
protocol hot path stops re-deriving the same state every refresh:

* a sorted view of the held sequences (``sequences`` /
  ``sequences_in_range`` re-sort at most once per mutation, then answer
  range queries by bisection);
* a *live* FIFO Bloom filter maintained insert-by-insert, from which
  :meth:`bloom_snapshot` exports frozen wire copies — byte-identical to the
  historical rebuild-from-scratch but O(copy) instead of O(window · k).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence as SequenceABC
from typing import Iterable, List, Optional, Set, Tuple, Union

from repro.reconcile.bloom import BloomSnapshot, FifoBloomFilter
from repro.reconcile.summary_ticket import DEFAULT_TICKET_ENTRIES, SummaryTicket
from repro.util.hashing import DEFAULT_UNIVERSE, permutation_coefficients

#: Cache-coherence invariants checked by ``python -m repro.analysis`` (COH001).
#: The sorted view and the live-bloom snapshot caches hang off
#: :attr:`WorkingSet.version`; every mutation of the held set must bump it on
#: the same control-flow path.
CACHE_INVARIANTS = {
    "WorkingSet": {
        "scope": "module",
        "attrs": {
            "_sequences": ["version"],
        },
        "calls": {
            "_sequences.add": ["version"],
        },
    },
}


class SortedRangeView(SequenceABC):
    """A read-only window into a sorted list — no copying.

    The working set's sorted cache is never mutated in place (mutations
    replace it wholesale on the next sorted query), so a view taken from it
    is a stable snapshot even if the working set changes afterwards.  This
    is what the hot request/serve path hands to
    :meth:`~repro.core.recovery.SenderQueue.install_request` instead of a
    fresh list copy per refresh.
    """

    __slots__ = ("_data", "_start", "_stop")

    def __init__(self, data: List[int], start: int, stop: int) -> None:
        self._data = data
        self._start = start
        self._stop = max(start, stop)

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            return [self._data[self._start + i] for i in range(start, stop, step)]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("view index out of range")
        return self._data[self._start + index]

    def __iter__(self):
        data = self._data
        for position in range(self._start, self._stop):
            yield data[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, SortedRangeView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedRangeView({list(self)!r})"


class WorkingSet:
    """The set of sequence numbers a node currently holds."""

    def __init__(self, prune_window: int = 4096, ticket_entries: int = DEFAULT_TICKET_ENTRIES,
                 ticket_seed: int = 0) -> None:
        if prune_window <= 0:
            raise ValueError("prune_window must be positive")
        self.prune_window = prune_window
        self.ticket_entries = ticket_entries
        self.ticket_seed = ticket_seed
        self._sequences: Set[int] = set()
        self._low_water: int = 0
        self._highest: int = -1
        self.total_received: int = 0
        self.total_duplicates: int = 0
        #: Bumped on every observable mutation (accepted add, prune).
        self.version: int = 0
        self._sorted_cache: List[int] = []
        self._sorted_version: int = 0
        # Live Bloom filter state (created lazily on first snapshot request).
        self._live_bloom: Optional[FifoBloomFilter] = None
        self._live_bloom_params: Optional[Tuple[int, float]] = None
        self._snapshot_cache: Optional[BloomSnapshot] = None
        self._snapshot_version: int = -1
        # Incremental min-wise sketch state: (params, key set, entry mins,
        # per-entry argmin keys) of the previous ticket build.
        self._ticket_sketch: Optional[
            Tuple[Tuple[Optional[int], int], Set[int], List[Optional[int]], List[int]]
        ] = None

    # ---------------------------------------------------------------- updates
    def add(self, sequence: int) -> bool:
        """Record a received packet; returns True if it was new (useful)."""
        if sequence < 0:
            raise ValueError("sequence numbers are non-negative")
        if sequence < self._low_water or sequence in self._sequences:
            self.total_duplicates += 1
            return False
        self._sequences.add(sequence)
        if sequence > self._highest:
            self._highest = sequence
        self.total_received += 1
        self.version += 1
        if self._live_bloom is not None:
            self._live_bloom.add(sequence)
        if len(self._sequences) > self.prune_window:
            self._prune()
        return True

    def update(self, sequences: Iterable[int]) -> int:
        """Add many packets; returns how many were new."""
        return sum(1 for sequence in sequences if self.add(sequence))

    def _prune(self) -> None:
        """Drop the oldest sequences beyond the prune window."""
        ordered = self._sorted()
        keep = ordered[-self.prune_window :]
        self._low_water = keep[0] if keep else self._low_water
        self._sequences = set(keep)
        self.version += 1
        if self._live_bloom is not None:
            # No-op unless the prune window undercuts the bloom window.
            self._live_bloom.advance_window(self._low_water)

    def prune_below(self, low_sequence: int) -> None:
        """Explicitly drop every sequence below ``low_sequence``."""
        if low_sequence <= self._low_water:
            return
        self._low_water = low_sequence
        self._sequences = {seq for seq in self._sequences if seq >= low_sequence}
        self.version += 1
        if self._live_bloom is not None:
            self._live_bloom.advance_window(low_sequence)

    # ---------------------------------------------------------------- queries
    def __contains__(self, sequence: int) -> bool:
        return sequence < self._low_water or sequence in self._sequences

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def highest_sequence(self) -> int:
        """Highest sequence number seen (-1 if none)."""
        return self._highest

    @property
    def low_water(self) -> int:
        """Sequences below this mark have been pruned (treated as held)."""
        return self._low_water

    def _sorted(self) -> List[int]:
        """The held sequences in ascending order (cached per version)."""
        if self._sorted_version != self.version:
            self._sorted_cache = sorted(self._sequences)
            self._sorted_version = self.version
        return self._sorted_cache

    def sequences(self) -> List[int]:
        """A sorted list of currently held sequence numbers."""
        return list(self._sorted())

    def missing_in_range(self, low: int, high: int) -> List[int]:
        """Sequence numbers in ``[low, high]`` the node does not hold."""
        if high < low:
            return []
        start = max(low, self._low_water)
        held = self._sequences
        return [seq for seq in range(start, high + 1) if seq not in held]

    def recovery_range(self, span: int) -> Tuple[int, int]:
        """The (Low, High) range of sequences the node is interested in.

        The receiver "requests data within the range (Low, High) of sequence
        numbers based on what it has received"; the range trails the highest
        sequence seen by ``span`` packets and advances over time (Figure 4b).
        A node that has received nothing yet anchors the range at its
        low-water mark — for a fresh node that is sequence 0, while a node
        that *joined* mid-stream starts at the stream position it was primed
        with rather than asking peers for long-expired data.
        """
        if span <= 0:
            raise ValueError("span must be positive")
        high = self._highest
        if high < 0:
            return (self._low_water, self._low_water + span - 1)
        low = max(self._low_water, high - span + 1)
        return (low, high)

    # ------------------------------------------------------------- summaries
    def summary_ticket(
        self, window: Optional[int] = None, sample_stride: int = 1,
        incremental: bool = False,
    ) -> SummaryTicket:
        """Build the node's current summary ticket.

        ``window`` restricts the ticket to the most recent ``window`` sequence
        numbers (the paper keeps tickets over a bounded working set so they
        reflect *recent* content rather than everything ever received).
        ``sample_stride`` > 1 sub-samples the window before sketching — a
        simulation-performance knob.  Sampling is by *value* (only sequence
        numbers divisible by the stride are sketched) so that every node
        samples the same universe subset and resemblance estimates between
        nodes remain comparable.

        ``incremental`` reuses the previous build: min-wise entries are
        monotone under inserts, so only keys that entered the window since
        last time are folded in, and only entries whose minimum was achieved
        by a key that *left* the window are re-sketched from scratch.  The
        result is identical to a full rebuild (ties resolve to the smallest
        key in both paths); the flag exists so the pre-incremental hot path
        stays available for benchmarks.
        """
        if sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        ordered = self._sorted()
        if window is not None:
            if window <= 0:
                raise ValueError("window must be positive")
            keys = ordered[-window:]
        else:
            keys = ordered
        if sample_stride > 1:
            sampled = [key for key in keys if key % sample_stride == 0]
            # Fall back to the full window when the value-based sample is too
            # thin to say anything (tiny working sets early in a run).
            if len(sampled) >= self.ticket_entries:
                keys = sampled
        if incremental:
            return self._incremental_ticket(keys, (window, sample_stride))
        ticket = SummaryTicket(num_entries=self.ticket_entries, seed=self.ticket_seed)
        ticket.update(keys)
        return ticket

    def _incremental_ticket(
        self, keys: List[int], params: Tuple[Optional[int], int]
    ) -> SummaryTicket:
        """Min-wise sketch of ``keys``, diffed against the previous build."""
        coefficients = permutation_coefficients(self.ticket_entries, seed=self.ticket_seed)
        universe = DEFAULT_UNIVERSE
        key_set = set(keys)
        state = self._ticket_sketch
        if state is not None and state[0] == params:
            _, old_keys, entries, min_keys = state
            entries = list(entries)
            min_keys = list(min_keys)
            removed = old_keys - key_set
            added = key_set - old_keys
            if removed:
                # Entries whose minimum left the window lose their witness;
                # re-sketch just those over the full key list.
                for index in [
                    i for i, owner in enumerate(min_keys) if owner in removed
                ]:
                    a, b = coefficients[index]
                    if keys:
                        value, owner = min(((a * k + b) % universe, k) for k in keys)
                        entries[index], min_keys[index] = value, owner
                    else:
                        entries[index], min_keys[index] = None, -1
            if added:
                added_keys = sorted(added)
                for index, (a, b) in enumerate(coefficients):
                    value, owner = min(((a * k + b) % universe, k) for k in added_keys)
                    current = entries[index]
                    if (
                        current is None
                        or value < current
                        or (value == current and owner < min_keys[index])
                    ):
                        entries[index], min_keys[index] = value, owner
        elif keys:
            entries = []
            min_keys = []
            for a, b in coefficients:
                value, owner = min(((a * k + b) % universe, k) for k in keys)
                entries.append(value)
                min_keys.append(owner)
        else:
            entries = [None] * self.ticket_entries
            min_keys = [-1] * self.ticket_entries
        self._ticket_sketch = (params, key_set, entries, min_keys)
        ticket = SummaryTicket(num_entries=self.ticket_entries, seed=self.ticket_seed)
        ticket._entries = list(entries)
        return ticket

    def bloom_filter(
        self, expected_items: Optional[int] = None, false_positive_rate: float = 0.01
    ) -> FifoBloomFilter:
        """Build a Bloom filter describing the *recent* working set.

        Bullet's filters only ever describe the sequences a node still cares
        about recovering (the paper prunes low sequence numbers from the
        filter), so the filter is built over the most recent
        ``expected_items`` sequences; everything older is implicitly treated
        as already held (the FIFO filter's window floor).

        This is the from-scratch construction; the protocol hot path uses
        :meth:`bloom_snapshot`, which maintains the same filter
        incrementally and exports frozen copies.
        """
        population = max(len(self._sequences), 1)
        capacity = expected_items if expected_items is not None else max(population, 128)
        recent = self._sorted()[-capacity:]
        bloom = FifoBloomFilter.with_capacity(capacity, false_positive_rate, window=capacity)
        if recent:
            bloom.advance_window(recent[0])
        bloom.update(recent)
        return bloom

    def bloom_snapshot(
        self, expected_items: Optional[int] = None, false_positive_rate: float = 0.01
    ) -> BloomSnapshot:
        """A frozen Bloom filter over the recent working set, incrementally.

        Observationally equivalent to ``bloom_filter(...)`` with the same
        parameters, but the underlying filter is maintained insert-by-insert
        and the export is a byte copy; consecutive calls with an unchanged
        working set return the *same* snapshot object, which downstream code
        uses to recognise "nothing changed since the last refresh".
        """
        population = max(len(self._sequences), 1)
        capacity = expected_items if expected_items is not None else max(population, 128)
        params = (capacity, false_positive_rate)
        if self._live_bloom is None or self._live_bloom_params != params:
            live = FifoBloomFilter.with_capacity(
                capacity, false_positive_rate, window=capacity
            )
            live.update(self._sorted())
            self._live_bloom = live
            self._live_bloom_params = params
            self._snapshot_cache = None
        assert self._live_bloom is not None
        if self._snapshot_cache is None or self._snapshot_version != self._live_bloom.version:
            self._snapshot_cache = self._live_bloom.snapshot()
            self._snapshot_version = self._live_bloom.version
        return self._snapshot_cache

    @property
    def bloom_version(self) -> int:
        """Version of the live Bloom filter (0 until first snapshot request)."""
        return self._live_bloom.version if self._live_bloom is not None else 0

    def sequences_in_range(self, low: int, high: int) -> List[int]:
        """Held sequence numbers within ``[low, high]``, sorted ascending."""
        if high < low:
            return []
        ordered = self._sorted()
        return ordered[bisect_left(ordered, low) : bisect_right(ordered, high)]

    def sequences_in_range_view(self, low: int, high: int) -> SortedRangeView:
        """Like :meth:`sequences_in_range` but a zero-copy read-only view.

        The hot request/serve path (refresh installs at every sending peer)
        only iterates the holdings once, so it gets a window over the cached
        sorted list instead of a fresh copy per refresh.  The view snapshots
        the current content: later working-set mutations do not leak into it.
        """
        ordered = self._sorted()
        if high < low:
            return SortedRangeView(ordered, 0, 0)
        return SortedRangeView(
            ordered, bisect_left(ordered, low), bisect_right(ordered, high)
        )

    def duplicate_fraction(self) -> float:
        """Fraction of all receives that were duplicates."""
        total = self.total_received + self.total_duplicates
        return self.total_duplicates / total if total else 0.0
