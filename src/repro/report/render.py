"""Render a reproduction manifest into markdown and standalone HTML.

Both renderers consume the same intermediate model built from the manifest
plus the wall-clock sidecar, so the two outputs cannot drift: a run summary,
the cross-system comparison matrix (from the ``systems`` catalog entry), a
per-experiment summary table with paper-expectation verdicts, and
per-experiment metric detail (with mean ± 95% CI columns when the run used
``--stability``).
"""

from __future__ import annotations

import html as html_escape
from typing import List, Mapping, Optional, Tuple

from repro.report.catalog import (
    CATALOG,
    EXPERIMENTS,
    MATRIX_CONDITIONS,
    MATRIX_SYSTEMS,
    SECTIONS,
    system_supports_churn,
)
from repro.report.manifest import ExperimentRecord, Manifest

_STATUS_MARK = {"pass": "PASS", "fail": "FAIL", "info": "info"}


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


def _ordered_records(manifest: Manifest) -> List[Tuple[int, str, ExperimentRecord]]:
    """Manifest records in catalog order, then any unknown ids after."""
    rows: List[Tuple[int, str, ExperimentRecord]] = []
    for entry in CATALOG:
        record = manifest.experiments.get(entry.id)
        if record is not None:
            rows.append((entry.number, entry.id, record))
    extra_number = len(CATALOG) + 1
    for experiment_id, record in manifest.experiments.items():
        if experiment_id not in EXPERIMENTS:
            rows.append((extra_number, experiment_id, record))
            extra_number += 1
    return rows


def _check_summary(record: ExperimentRecord) -> str:
    passed = sum(1 for o in record.expectations if o.status == "pass")
    failed = sum(1 for o in record.expectations if o.status == "fail")
    info = sum(1 for o in record.expectations if o.status == "info")
    parts = []
    if passed:
        parts.append(f"{passed} pass")
    if failed:
        parts.append(f"{failed} FAIL")
    if info:
        parts.append(f"{info} info")
    return ", ".join(parts) if parts else "-"


def _timing_for(timing: Mapping[str, object], experiment_id: str) -> Optional[float]:
    per_experiment = timing.get("experiments", {})
    value = per_experiment.get(experiment_id) if isinstance(per_experiment, dict) else None
    return float(value) if isinstance(value, (int, float)) else None


def _matrix_rows(manifest: Manifest) -> List[List[str]]:
    """The cross-system table: one row per system, useful Kbps per condition."""
    record = manifest.experiments.get("systems")
    if record is None or not record.complete:
        return []
    rows = []
    for system, _tree in MATRIX_SYSTEMS:
        row = [system]
        for condition in MATRIX_CONDITIONS:
            value = record.metrics.get(f"{system}.{condition}.useful_kbps")
            if value is not None:
                row.append(_format_value(value))
            elif condition == "churn" and not system_supports_churn(system):
                # The cell is absent by declaration, not by failure: the
                # system's registry spec opts out of fail_node.
                row.append("n/a (capability)")
            else:
                row.append("-")
        rows.append(row)
    return rows


def _metric_rows(record: ExperimentRecord) -> List[List[str]]:
    rows = []
    for name, value in record.metrics.items():
        row = [name, _format_value(value)]
        aggregate = record.stability.get(name)
        if aggregate:
            row.append(
                f"{_format_value(aggregate['mean'])} ± {_format_value(aggregate['ci95'])}"
                f" (n={int(aggregate['n'])})"
            )
        rows.append(row)
    return rows


def _has_stability(manifest: Manifest) -> bool:
    return any(record.stability for record in manifest.experiments.values())


# ------------------------------------------------------------------ markdown
def _md_table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_markdown(manifest: Manifest, timing: Mapping[str, object]) -> str:
    lines: List[str] = []
    lines.append("# Bullet reproduction report")
    lines.append("")
    lines.append(
        "One-command reproduction of *Bullet: High Bandwidth Data Dissemination"
        " Using an Overlay Mesh* (Kostić et al., SOSP 2003) — see"
        " `docs/REPRODUCTION.md` for the experiment catalog."
    )
    lines.append("")
    total = timing.get("total_s")
    meta_rows = [
        ["run id", manifest.run_id],
        ["tier", manifest.tier],
        ["base seed", str(manifest.seed)],
        ["stability seeds", str(max(manifest.stability, 1))],
        ["git SHA", manifest.git_sha],
    ]
    if isinstance(total, (int, float)):
        meta_rows.append(["total wall-clock", f"{float(total):.1f} s"])
    lines.extend(_md_table(["run", "value"], meta_rows))
    lines.append("")

    complete = [r for r in manifest.experiments.values() if r.complete]
    failed = [r for r in manifest.experiments.values() if not r.complete]
    checks_pass = sum(
        1 for r in complete for o in r.expectations if o.status == "pass"
    )
    checks_fail = sum(
        1 for r in complete for o in r.expectations if o.status == "fail"
    )
    lines.append(
        f"**{len(complete)} experiments complete, {len(failed)} failed;"
        f" paper expectations: {checks_pass} pass, {checks_fail} fail.**"
    )
    lines.append("")

    matrix = _matrix_rows(manifest)
    if matrix:
        lines.append("## Cross-system comparison")
        lines.append("")
        lines.append(
            "Average useful bandwidth (Kbps) per system and condition, from"
            " the `systems` matrix experiment:"
        )
        lines.append("")
        lines.extend(_md_table(["system", *MATRIX_CONDITIONS], matrix))
        lines.append("")

    lines.append("## Summary")
    lines.append("")
    summary_rows = []
    for number, experiment_id, record in _ordered_records(manifest):
        entry = EXPERIMENTS.get(experiment_id)
        wall = _timing_for(timing, experiment_id)
        summary_rows.append(
            [
                str(number),
                f"`{experiment_id}`",
                entry.paper_ref if entry else "-",
                entry.title if entry else "-",
                record.status,
                f"{wall:.1f}" if wall is not None else "-",
                _check_summary(record),
            ]
        )
    lines.extend(
        _md_table(
            ["#", "id", "paper ref", "experiment", "status", "wall (s)", "checks"],
            summary_rows,
        )
    )
    lines.append("")

    for section_key, section_title in SECTIONS:
        section_entries = [
            entry
            for entry in CATALOG
            if entry.section == section_key and entry.id in manifest.experiments
        ]
        if not section_entries:
            continue
        lines.append(f"## {section_title}")
        lines.append("")
        for entry in section_entries:
            record = manifest.experiments[entry.id]
            lines.append(f"### {entry.number}. `{entry.id}` — {entry.title}")
            lines.append("")
            lines.append(f"*{entry.paper_ref}.* {entry.description}")
            lines.append("")
            if not record.complete:
                lines.append(f"**FAILED**: `{record.error}`")
                lines.append("")
                continue
            if record.metrics:
                header = ["metric", "value"]
                if any(record.stability.get(name) for name in record.metrics):
                    header.append("mean ± 95% CI")
                lines.extend(_md_table(header, _metric_rows(record)))
                lines.append("")
            for outcome in record.expectations:
                mark = _STATUS_MARK.get(outcome.status, outcome.status)
                lines.append(f"- **{mark}** {outcome.name}: {outcome.detail}")
            if record.expectations:
                lines.append("")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- html
_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       line-height: 1.45; color: #1a1a1a; padding: 0 1rem; }
h1, h2, h3 { line-height: 1.2; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #cccccc; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
code { background: #f5f5f5; padding: 0.1rem 0.25rem; border-radius: 3px; }
.pass { color: #116611; font-weight: 600; }
.fail { color: #aa1111; font-weight: 600; }
.info { color: #666666; }
.status-failed { color: #aa1111; font-weight: 600; }
"""


def _html_table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["<table>", "<tr>"]
    lines.extend(f"<th>{html_escape.escape(cell)}</th>" for cell in header)
    lines.append("</tr>")
    for row in rows:
        lines.append("<tr>")
        lines.extend(f"<td>{html_escape.escape(cell)}</td>" for cell in row)
        lines.append("</tr>")
    lines.append("</table>")
    return lines


def render_html(manifest: Manifest, timing: Mapping[str, object]) -> str:
    esc = html_escape.escape
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        "<title>Bullet reproduction report</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        "<h1>Bullet reproduction report</h1>",
        "<p>One-command reproduction of <em>Bullet: High Bandwidth Data"
        " Dissemination Using an Overlay Mesh</em> (Kostić et al., SOSP 2003)."
        " See <code>docs/REPRODUCTION.md</code> for the experiment catalog.</p>",
    ]
    total = timing.get("total_s")
    meta_rows = [
        ["run id", manifest.run_id],
        ["tier", manifest.tier],
        ["base seed", str(manifest.seed)],
        ["stability seeds", str(max(manifest.stability, 1))],
        ["git SHA", manifest.git_sha],
    ]
    if isinstance(total, (int, float)):
        meta_rows.append(["total wall-clock", f"{float(total):.1f} s"])
    parts.extend(_html_table(["run", "value"], meta_rows))

    matrix = _matrix_rows(manifest)
    if matrix:
        parts.append("<h2>Cross-system comparison</h2>")
        parts.append(
            "<p>Average useful bandwidth (Kbps) per system and condition:</p>"
        )
        parts.extend(_html_table(["system", *MATRIX_CONDITIONS], matrix))

    parts.append("<h2>Summary</h2>")
    parts.append("<table><tr>")
    for cell in ("#", "id", "paper ref", "experiment", "status", "wall (s)", "checks"):
        parts.append(f"<th>{esc(cell)}</th>")
    parts.append("</tr>")
    for number, experiment_id, record in _ordered_records(manifest):
        entry = EXPERIMENTS.get(experiment_id)
        wall = _timing_for(timing, experiment_id)
        status_class = "" if record.complete else " class=\"status-failed\""
        parts.append(
            "<tr>"
            f"<td>{number}</td>"
            f"<td><code>{esc(experiment_id)}</code></td>"
            f"<td>{esc(entry.paper_ref if entry else '-')}</td>"
            f"<td>{esc(entry.title if entry else '-')}</td>"
            f"<td{status_class}>{esc(record.status)}</td>"
            f"<td>{f'{wall:.1f}' if wall is not None else '-'}</td>"
            f"<td>{esc(_check_summary(record))}</td>"
            "</tr>"
        )
    parts.append("</table>")

    for section_key, section_title in SECTIONS:
        section_entries = [
            entry
            for entry in CATALOG
            if entry.section == section_key and entry.id in manifest.experiments
        ]
        if not section_entries:
            continue
        parts.append(f"<h2>{esc(section_title)}</h2>")
        for entry in section_entries:
            record = manifest.experiments[entry.id]
            parts.append(
                f"<h3>{entry.number}. <code>{esc(entry.id)}</code>"
                f" — {esc(entry.title)}</h3>"
            )
            parts.append(
                f"<p><em>{esc(entry.paper_ref)}.</em> {esc(entry.description)}</p>"
            )
            if not record.complete:
                parts.append(
                    f"<p class=\"fail\">FAILED: <code>{esc(record.error)}</code></p>"
                )
                continue
            if record.metrics:
                header = ["metric", "value"]
                if any(record.stability.get(name) for name in record.metrics):
                    header.append("mean ± 95% CI")
                parts.extend(_html_table(header, _metric_rows(record)))
            if record.expectations:
                parts.append("<ul>")
                for outcome in record.expectations:
                    mark = _STATUS_MARK.get(outcome.status, outcome.status)
                    parts.append(
                        f"<li><span class=\"{esc(outcome.status)}\">{esc(mark)}</span>"
                        f" {esc(outcome.name)}: {esc(outcome.detail)}</li>"
                    )
                parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
