"""The reproduction experiment catalog.

Every figure, table, ablation and scale scenario of the evaluation is one
:class:`ReproExperiment` here: a numbered entry with a runner that produces
structured results, the scalar metrics the report surfaces, and the paper's
expected relationships annotated as machine-checkable
:class:`Expectation` objects.  ``python -m repro.cli reproduce`` drives this
catalog; ``docs/REPRODUCTION.md`` documents it entry by entry (CI fails if
the two drift apart).

Tiers size the whole catalog at once: ``smoke`` finishes in about a minute
for CI, ``paper`` approaches the paper's published scale, ``scale`` pushes
the scenario pack to its full presets.  Scale-scenario entries additionally
carry per-tier overrides because their node counts come from the scenario
presets, not from the tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.ablations import (
    ablation_disjoint_lookahead,
    ablation_epoch_length,
    ablation_eviction,
    ablation_peer_count,
)
from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure9_bandwidth_sweep,
    figure10_nondisjoint,
    figure11_epidemic,
    figure12_lossy,
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
    figure15_planetlab,
    headline_metrics,
)
from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.experiments.batch import run_batch
from repro.experiments.registry import get_system
from repro.experiments.tables import table1_bandwidth_ranges
from repro.experiments.workloads import scenario_config
from repro.report.manifest import ExpectationOutcome

#: Every tier the pipeline knows; ``--tier`` validates against this.
TIER_NAMES = ("smoke", "paper", "scale")


@dataclass(frozen=True)
class Tier:
    """One pipeline size: the scale figure-style experiments run at."""

    name: str
    n_overlay: int
    duration_s: float
    seed: int
    description: str


TIERS: Dict[str, Tier] = {
    "smoke": Tier(
        name="smoke",
        n_overlay=16,
        duration_s=60.0,
        seed=1,
        description="CI-sized: every experiment in roughly a minute total",
    ),
    "paper": Tier(
        name="paper",
        n_overlay=200,
        duration_s=400.0,
        seed=1,
        description="paper-comparable figure scale (200 nodes, 400 s runs)",
    ),
    "scale": Tier(
        name="scale",
        n_overlay=500,
        duration_s=400.0,
        seed=1,
        description="figures at 500 nodes; scenario pack at full presets",
    ),
}


@dataclass(frozen=True)
class RunContext:
    """Everything a catalog runner needs for one invocation."""

    tier: Tier
    seed: int
    workers: int = 1

    def scale(self) -> FigureScale:
        """The FigureScale the figure-style runners receive."""
        return FigureScale(
            n_overlay=self.tier.n_overlay,
            duration_s=self.tier.duration_s,
            seed=self.seed,
        )


@dataclass(frozen=True)
class Expectation:
    """One paper-expected relationship, checkable against flat metrics.

    ``kind`` is ``"ge"`` or ``"le"``; with ``right`` set the check is
    relational (``left >= factor * right``), otherwise absolute
    (``left >= factor``).  Outside ``tiers`` the check still evaluates but
    reports ``info`` instead of pass/fail — reduced-scale runs are noisy and
    should not look like reproduction failures.
    """

    name: str
    kind: str
    left: str
    right: Optional[str] = None
    factor: float = 1.0
    tiers: Tuple[str, ...] = TIER_NAMES
    note: str = ""

    def evaluate(self, metrics: Mapping[str, float], tier: str) -> ExpectationOutcome:
        gated = tier in self.tiers
        left_value = metrics.get(self.left)
        if left_value is None:
            return ExpectationOutcome(
                name=self.name,
                status="fail" if gated else "info",
                detail=f"metric {self.left!r} missing from export",
            )
        if self.right is not None:
            right_value = metrics.get(self.right)
            if right_value is None:
                return ExpectationOutcome(
                    name=self.name,
                    status="fail" if gated else "info",
                    detail=f"metric {self.right!r} missing from export",
                )
            threshold = self.factor * right_value
            rhs = f"{self.factor:g} x {self.right} ({threshold:.4g})"
        else:
            threshold = self.factor
            rhs = f"{threshold:.4g}"
        held = left_value >= threshold if self.kind == "ge" else left_value <= threshold
        operator = ">=" if self.kind == "ge" else "<="
        detail = f"{self.left} = {left_value:.4g} {operator} {rhs}"
        if self.note:
            detail += f" [{self.note}]"
        if not gated:
            return ExpectationOutcome(name=self.name, status="info", detail=detail)
        return ExpectationOutcome(
            name=self.name, status="pass" if held else "fail", detail=detail
        )


@dataclass(frozen=True)
class ReproExperiment:
    """One numbered entry of the reproduction catalog."""

    id: str
    number: int
    section: str  # "figures" | "tables" | "ablations" | "scale"
    title: str
    paper_ref: str
    description: str
    runner: Callable[[RunContext], Dict[str, object]]
    headline: Tuple[str, ...] = ()
    expectations: Tuple[Expectation, ...] = ()
    systems: Tuple[str, ...] = ("bullet",)


# ------------------------------------------------------------ export shaping
def flatten_export(raw: Mapping[str, object]) -> Dict[str, object]:
    """Shape a runner's raw dictionary into the canonical export form.

    * scalars (int/float/bool) land in ``metrics`` under dotted paths;
    * lists of (x, y) pairs land in ``series`` (the figures' curves/CDFs);
    * everything else — including dicts with non-string keys, like per-node
      bandwidth maps — lands in ``data``;
    * ``result`` keys (live ExperimentResult objects) are dropped.
    """
    metrics: Dict[str, float] = {}
    series: Dict[str, List[List[float]]] = {}
    data: Dict[str, object] = {}

    def walk(prefix: str, value: object) -> None:
        if isinstance(value, bool):
            metrics[prefix] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            metrics[prefix] = float(value)
        elif _is_point_series(value):
            series[prefix] = [[float(x), float(y)] for x, y in value]
        elif isinstance(value, Mapping) and all(
            isinstance(key, str) for key in value
        ):
            for key, inner in value.items():
                if key == "result":
                    continue
                walk(f"{prefix}.{key}" if prefix else key, inner)
        else:
            data[prefix] = value

    for key, value in raw.items():
        if key == "result":
            continue
        walk(key, value)
    return {"metrics": metrics, "series": series, "data": data}


def _is_point_series(value: object) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(
            isinstance(point, (list, tuple))
            and len(point) == 2
            and all(isinstance(coord, (int, float)) for coord in point)
            for point in value
        )
    )


def _result_payload(result: ExperimentResult) -> Dict[str, object]:
    """The standard scalar + series payload for a single-run scenario."""
    return {
        "useful_kbps": result.average_useful_kbps,
        "duplicate_ratio": result.duplicate_ratio,
        "control_overhead_kbps": result.control_overhead_kbps,
        "link_stress_avg": result.link_stress_avg,
        "link_stress_max": float(result.link_stress_max),
        "useful_series": result.useful_series,
        "raw_series": result.raw_series,
        "from_parent_series": result.from_parent_series,
        "control_series": result.control_series,
    }


# ----------------------------------------------------------- special runners
def _run_figure15(ctx: RunContext) -> Dict[str, object]:
    # The PlanetLab testbed has a fixed site population; only duration and
    # seed scale with the tier.
    return figure15_planetlab(duration_s=ctx.tier.duration_s, seed=ctx.seed)


def _run_table1(ctx: RunContext) -> Dict[str, object]:
    return table1_bandwidth_ranges(seed=ctx.seed)


#: The cross-system comparison matrix: every registered built-in system under
#: steady, lossy and churn conditions.  ``tree_kind`` follows each system's
#: natural configuration (the one the paper's comparisons use).
MATRIX_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("bullet", "random"),
    ("stream", "bottleneck"),
    ("gossip", "random"),
    ("antientropy", "bottleneck"),
)

MATRIX_CONDITIONS: Tuple[str, ...] = ("steady", "lossy", "churn")

def system_supports_churn(system: str) -> bool:
    """Whether the matrix's churn column applies to ``system``.

    Declared on the registry spec (``SystemCapabilities.supports_fail_node``)
    rather than hardcoded here: systems that cannot fail members out (push
    gossip has no membership to fail) skip the churn cell and the report
    renders it "n/a (capability)".
    """
    return get_system(system).capabilities.supports_fail_node


def _run_systems_matrix(ctx: RunContext) -> Dict[str, object]:
    """All four systems x {steady, lossy, churn}: the report's spine."""
    churn = max(2, ctx.tier.n_overlay // 8)
    conditions: Dict[str, Dict[str, object]] = {
        "steady": {},
        "lossy": {"lossy": True},
        "churn": {
            "churn_failures": churn,
            "churn_start_s": min(30.0, ctx.tier.duration_s / 3),
        },
    }
    configs = []
    keys = []
    for system, tree_kind in MATRIX_SYSTEMS:
        for condition in MATRIX_CONDITIONS:
            if condition == "churn" and not system_supports_churn(system):
                continue
            overrides = conditions[condition]
            configs.append(
                ExperimentConfig(
                    system=system,
                    tree_kind=tree_kind,
                    n_overlay=ctx.tier.n_overlay,
                    duration_s=ctx.tier.duration_s,
                    seed=ctx.seed,
                    **overrides,
                )
            )
            keys.append((system, condition))
    results = run_batch(configs, workers=ctx.workers)
    payload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (system, condition), result in zip(keys, results):
        payload.setdefault(system, {})[condition] = {
            "useful_kbps": result.average_useful_kbps,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
        }
    return payload


def _scenario_runner(
    name: str, tier_overrides: Mapping[str, Mapping[str, object]]
) -> Callable[[RunContext], Dict[str, object]]:
    """A runner for one scale-scenario preset with per-tier size overrides."""

    def run(ctx: RunContext) -> Dict[str, object]:
        overrides = dict(tier_overrides.get(ctx.tier.name, {}))
        overrides["seed"] = ctx.seed
        config = scenario_config(name, **overrides)
        return _result_payload(run_experiment(config))

    return run


def _figure_runner(
    figure: Callable[..., Dict[str, object]], takes_workers: bool = False
) -> Callable[[RunContext], Dict[str, object]]:
    def run(ctx: RunContext) -> Dict[str, object]:
        if takes_workers:
            return figure(ctx.scale(), workers=ctx.workers)
        return figure(ctx.scale())

    return run


def _ablation_runner(
    ablation: Callable[..., Dict[str, object]]
) -> Callable[[RunContext], Dict[str, object]]:
    def run(ctx: RunContext) -> Dict[str, object]:
        return ablation(ctx.scale(), workers=ctx.workers)

    return run


def _smoke_peer_ablation(ctx: RunContext) -> Dict[str, object]:
    # Three seeds per limit at paper scale; one at smoke keeps CI fast.
    n_seeds = 1 if ctx.tier.name == "smoke" else 3
    return ablation_peer_count(ctx.scale(), workers=ctx.workers, n_seeds=n_seeds)


# -------------------------------------------------------------- the catalog
def _bandwidth_class_expectations(factor: float, note: str) -> Tuple[Expectation, ...]:
    # At the 16-node smoke scale the medium-bandwidth tree is barely
    # constrained, so the medium comparison only gates larger tiers.
    return tuple(
        Expectation(
            name=f"bullet beats bottleneck tree ({cls})",
            kind="ge",
            left=f"{cls}.bullet_kbps",
            right=f"{cls}.bottleneck_tree_kbps",
            factor=factor,
            tiers=("paper", "scale") if cls == "medium" else TIER_NAMES,
            note=note,
        )
        for cls in ("high", "medium", "low")
    )


CATALOG: Tuple[ReproExperiment, ...] = (
    ReproExperiment(
        id="fig6",
        number=1,
        section="figures",
        title="TFRC streaming over bottleneck vs random tree",
        paper_ref="Figure 6",
        description="Baseline tree streaming: the offline bottleneck-bandwidth"
        " tree against a random tree at 600 Kbps.",
        runner=_figure_runner(figure6_tree_streaming, takes_workers=True),
        headline=("bottleneck_tree_kbps", "random_tree_kbps"),
        expectations=(
            Expectation(
                name="bottleneck tree outperforms random tree",
                kind="ge",
                left="bottleneck_tree_kbps",
                right="random_tree_kbps",
                factor=0.95,
                note="paper: offline bottleneck tree is the strongest tree",
            ),
        ),
        systems=("stream",),
    ),
    ReproExperiment(
        id="fig7",
        number=2,
        section="figures",
        title="Bullet over a random tree",
        paper_ref="Figure 7",
        description="Bullet's raw, useful and from-parent bandwidth over a"
        " random tree: the mesh recovers what the tree cannot carry.",
        runner=_figure_runner(figure7_bullet_random_tree),
        headline=("useful_kbps", "from_parent_kbps", "duplicate_ratio"),
        expectations=(
            Expectation(
                name="mesh recovery adds to the parent stream",
                kind="ge",
                left="useful_kbps",
                right="from_parent_kbps",
                note="paper: useful bandwidth well above the tree alone",
            ),
        ),
    ),
    ReproExperiment(
        id="fig8",
        number=3,
        section="figures",
        title="Per-node bandwidth CDF",
        paper_ref="Figure 8",
        description="CDF of instantaneous per-node useful bandwidth near the"
        " end of a Bullet run: most nodes cluster near the stream rate.",
        runner=_figure_runner(figure8_bandwidth_cdf),
        headline=("median_kbps",),
        expectations=(
            Expectation(
                name="median node holds a usable stream",
                kind="ge",
                left="median_kbps",
                factor=200.0,
                note="paper: nodes cluster near 500 of 600 Kbps",
            ),
        ),
    ),
    ReproExperiment(
        id="fig9",
        number=4,
        section="figures",
        title="Bullet vs bottleneck tree across bandwidth classes",
        paper_ref="Figure 9",
        description="Bullet against the best tree at high, medium and low"
        " Table 1 bandwidth settings.",
        runner=_figure_runner(figure9_bandwidth_sweep, takes_workers=True),
        headline=(
            "high.bullet_kbps", "medium.bullet_kbps", "low.bullet_kbps",
            "low.bottleneck_tree_kbps",
        ),
        expectations=_bandwidth_class_expectations(
            0.9, "paper: Bullet wins by up to 2x as bandwidth tightens"
        ),
        systems=("bullet", "stream"),
    ),
    ReproExperiment(
        id="fig10",
        number=5,
        section="figures",
        title="Disjoint vs non-disjoint transmission",
        paper_ref="Figure 10",
        description="Ablating the disjoint-transmission strategy: without it"
        " parents push duplicate data and useful bandwidth drops.",
        runner=_figure_runner(figure10_nondisjoint, takes_workers=True),
        headline=("disjoint_kbps", "nondisjoint_kbps"),
        expectations=(
            Expectation(
                name="disjoint transmission does not lose",
                kind="ge",
                left="disjoint_kbps",
                right="nondisjoint_kbps",
                factor=0.95,
                note="paper: disjoint sending is strictly better",
            ),
        ),
    ),
    ReproExperiment(
        id="fig11",
        number=6,
        section="figures",
        title="Bullet vs epidemic approaches",
        paper_ref="Figure 11",
        description="Bullet against push gossiping and streaming with"
        " anti-entropy at 900 Kbps.",
        runner=_figure_runner(figure11_epidemic, takes_workers=True),
        headline=(
            "bullet_useful_kbps", "gossip_useful_kbps", "antientropy_useful_kbps",
        ),
        expectations=(
            Expectation(
                name="bullet beats push gossip",
                kind="ge",
                left="bullet_useful_kbps",
                right="gossip_useful_kbps",
                factor=0.95,
            ),
            Expectation(
                name="bullet beats anti-entropy streaming",
                kind="ge",
                left="bullet_useful_kbps",
                right="antientropy_useful_kbps",
                factor=0.95,
            ),
        ),
        systems=("bullet", "gossip", "antientropy"),
    ),
    ReproExperiment(
        id="fig12",
        number=7,
        section="figures",
        title="Bullet vs bottleneck tree on lossy topologies",
        paper_ref="Figure 12",
        description="The Section 4.5 loss model applied across bandwidth"
        " classes: Bullet's mesh routes around lossy links.",
        runner=_figure_runner(figure12_lossy, takes_workers=True),
        headline=("medium.bullet_kbps", "medium.bottleneck_tree_kbps"),
        expectations=_bandwidth_class_expectations(
            0.9, "paper: the gap widens under loss"
        ),
        systems=("bullet", "stream"),
    ),
    ReproExperiment(
        id="fig13",
        number=8,
        section="figures",
        title="Worst-case failure without recovery",
        paper_ref="Figure 13",
        description="The root child with the largest subtree fails mid-run"
        " with RanSub failure detection disabled: bandwidth stays degraded.",
        runner=_figure_runner(figure13_failure_no_recovery),
        headline=("before_failure_kbps", "after_failure_kbps"),
        expectations=(
            Expectation(
                name="no recovery: bandwidth does not improve after failure",
                kind="le",
                left="after_failure_kbps",
                right="before_failure_kbps",
                factor=1.05,
            ),
        ),
    ),
    ReproExperiment(
        id="fig14",
        number=9,
        section="figures",
        title="Worst-case failure with recovery",
        paper_ref="Figure 14",
        description="The same failure with RanSub failure detection enabled:"
        " children re-peer and bandwidth recovers.",
        runner=_figure_runner(figure14_failure_with_recovery),
        headline=("before_failure_kbps", "after_failure_kbps"),
        expectations=(
            Expectation(
                name="recovery restores most of the bandwidth",
                kind="ge",
                left="after_failure_kbps",
                right="before_failure_kbps",
                factor=0.6,
                note="paper: near-complete recovery at full scale",
            ),
        ),
    ),
    ReproExperiment(
        id="fig15",
        number=10,
        section="figures",
        title="PlanetLab: Bullet vs hand-crafted trees",
        paper_ref="Figure 15",
        description="The Section 4.7 testbed: Bullet over a random tree"
        " against good and worst hand-crafted trees with a constrained"
        " source.",
        runner=_run_figure15,
        headline=("bullet_kbps", "good_tree_kbps", "worst_tree_kbps"),
        expectations=(
            Expectation(
                name="bullet approaches the good tree",
                kind="ge",
                left="bullet_kbps",
                right="good_tree_kbps",
                factor=0.85,
                note="paper: Bullet meets or beats the good tree",
            ),
            Expectation(
                name="good tree beats worst tree",
                kind="ge",
                left="good_tree_kbps",
                right="worst_tree_kbps",
            ),
        ),
        systems=("bullet", "stream"),
    ),
    ReproExperiment(
        id="table1",
        number=11,
        section="tables",
        title="Table 1 bandwidth ranges",
        paper_ref="Table 1",
        description="Generated topologies honour the published per-link-class"
        " bandwidth ranges for all three bandwidth settings.",
        runner=_run_table1,
        headline=("all_within_ranges",),
        expectations=(
            Expectation(
                name="every link within its published range",
                kind="ge",
                left="all_within_ranges",
                factor=1.0,
            ),
        ),
        systems=(),
    ),
    ReproExperiment(
        id="headline",
        number=12,
        section="tables",
        title="Headline scalar claims",
        paper_ref="Sections 1 and 4.2",
        description="Control overhead (~30 Kbps), duplicate ratio (<10%) and"
        " link stress (~1.5 avg) from the Figure 7 configuration.",
        runner=_figure_runner(headline_metrics),
        headline=(
            "control_overhead_kbps", "duplicate_ratio", "link_stress_avg",
        ),
        expectations=(
            Expectation(
                name="control overhead stays in the tens of Kbps",
                kind="le",
                left="control_overhead_kbps",
                factor=60.0,
            ),
            Expectation(
                name="duplicates stay near the paper's bound",
                kind="le",
                left="duplicate_ratio",
                factor=0.15,
            ),
            Expectation(
                name="average link stress stays low",
                kind="le",
                left="link_stress_avg",
                factor=4.0,
            ),
        ),
    ),
    ReproExperiment(
        id="abl-peers",
        number=13,
        section="ablations",
        title="Ablation: peer-set size",
        paper_ref="Section 4 (peer limit 10)",
        description="Sweeping the per-node sender/receiver limit: too few"
        " peers starve recovery.",
        runner=_smoke_peer_ablation,
        headline=(
            "by_limit.2.useful_kbps", "by_limit.5.useful_kbps",
            "by_limit.10.useful_kbps",
        ),
        expectations=(
            Expectation(
                name="10 peers not worse than 2",
                kind="ge",
                left="by_limit.10.useful_kbps",
                right="by_limit.2.useful_kbps",
                factor=0.9,
            ),
            Expectation(
                name="5 peers not far behind 2",
                kind="ge",
                left="by_limit.5.useful_kbps",
                right="by_limit.2.useful_kbps",
                factor=0.8,
            ),
        ),
    ),
    ReproExperiment(
        id="abl-epoch",
        number=14,
        section="ablations",
        title="Ablation: RanSub epoch length",
        paper_ref="Section 3.2 (5 s epochs)",
        description="5-second vs 20-second epochs: longer epochs slow peer"
        " discovery and save control traffic.",
        runner=_ablation_runner(ablation_epoch_length),
        headline=("by_epoch.5.useful_kbps", "by_epoch.20.useful_kbps"),
        expectations=(
            Expectation(
                name="faster discovery does not deliver less",
                kind="ge",
                left="by_epoch.5.useful_kbps",
                right="by_epoch.20.useful_kbps",
                factor=0.9,
            ),
            Expectation(
                name="longer epochs mean less control traffic",
                kind="le",
                left="by_epoch.20.control_overhead_kbps",
                right="by_epoch.5.control_overhead_kbps",
                factor=1.1,
            ),
        ),
    ),
    ReproExperiment(
        id="abl-disjoint",
        number=15,
        section="ablations",
        title="Ablation: disjoint send and recovery lookahead",
        paper_ref="Section 3.3 / Figure 10",
        description="Disjoint transmission with and without recovery-range"
        " lookahead, against the non-disjoint strategy.",
        runner=_ablation_runner(ablation_disjoint_lookahead),
        headline=(
            "by_variant.disjoint.useful_kbps",
            "by_variant.nondisjoint.useful_kbps",
        ),
        expectations=(
            Expectation(
                name="disjoint send does not lose to non-disjoint",
                kind="ge",
                left="by_variant.disjoint.useful_kbps",
                right="by_variant.nondisjoint.useful_kbps",
                factor=0.95,
            ),
        ),
    ),
    ReproExperiment(
        id="abl-eviction",
        number=16,
        section="ablations",
        title="Ablation: sender eviction",
        paper_ref="Section 3.4",
        description="Periodic least-useful-sender eviction against a mesh"
        " that never re-evaluates its peers.",
        runner=_ablation_runner(ablation_eviction),
        headline=(
            "by_variant.eviction.useful_kbps",
            "by_variant.disabled.useful_kbps",
        ),
        expectations=(
            Expectation(
                name="re-evaluating peers does not hurt",
                kind="ge",
                left="by_variant.eviction.useful_kbps",
                right="by_variant.disabled.useful_kbps",
                factor=0.85,
            ),
        ),
    ),
    ReproExperiment(
        id="systems",
        number=17,
        section="scale",
        title="Cross-system matrix",
        paper_ref="Section 4 (all comparisons)",
        description="All four registered systems under steady, lossy and"
        " churn conditions at the tier's scale — the report's cross-system"
        " comparison spine.",
        runner=_run_systems_matrix,
        headline=tuple(
            f"{system}.{condition}.useful_kbps"
            for system, _ in MATRIX_SYSTEMS
            for condition in MATRIX_CONDITIONS
        ),
        expectations=(
            Expectation(
                name="bullet leads the steady comparison",
                kind="ge",
                left="bullet.steady.useful_kbps",
                right="stream.steady.useful_kbps",
                factor=0.95,
                # At the 16-node smoke scale the offline bottleneck tree is
                # barely constrained, so this comparison gates larger tiers.
                tiers=("paper", "scale"),
            ),
            Expectation(
                name="bullet survives churn better than the tree",
                kind="ge",
                left="bullet.churn.useful_kbps",
                right="stream.churn.useful_kbps",
                factor=0.9,
            ),
        ),
        systems=("bullet", "stream", "gossip", "antientropy"),
    ),
    ReproExperiment(
        id="scale-500",
        number=18,
        section="scale",
        title="Scale scenario: 500 nodes",
        paper_ref="scenario pack",
        description="Half the paper's scale in steady state.",
        runner=_scenario_runner(
            "scale-500",
            {
                "smoke": {"n_overlay": 30, "duration_s": 60.0},
                "paper": {"n_overlay": 250, "duration_s": 150.0},
            },
        ),
        headline=("useful_kbps", "duplicate_ratio"),
        expectations=(
            Expectation(
                name="delivers a usable stream at scale",
                kind="ge",
                left="useful_kbps",
                factor=300.0,
                tiers=("paper", "scale"),
            ),
        ),
    ),
    ReproExperiment(
        id="scale-1000",
        number=19,
        section="scale",
        title="Scale scenario: the paper's 1000 nodes",
        paper_ref="scenario pack",
        description="The paper's full overlay population over a ~2500-node"
        " transit-stub topology.",
        runner=_scenario_runner(
            "scale-1000",
            {
                "smoke": {"n_overlay": 40, "duration_s": 60.0},
                "paper": {"n_overlay": 500, "duration_s": 150.0},
            },
        ),
        headline=("useful_kbps", "duplicate_ratio"),
        expectations=(
            Expectation(
                name="delivers a usable stream at scale",
                kind="ge",
                left="useful_kbps",
                factor=300.0,
                tiers=("paper", "scale"),
            ),
        ),
    ),
    ReproExperiment(
        id="flash-crowd",
        number=20,
        section="scale",
        title="Scale scenario: flash crowd",
        paper_ref="scenario pack",
        description="A small overlay absorbs a wave of mid-run joins while"
        " the stream is live.",
        runner=_scenario_runner(
            "flash-crowd",
            {
                "smoke": {"n_overlay": 16, "churn_joins": 12, "duration_s": 80.0},
                "paper": {"n_overlay": 100, "churn_joins": 200, "duration_s": 180.0},
            },
        ),
        headline=("useful_kbps",),
        expectations=(
            Expectation(
                name="the mesh absorbs the join wave",
                kind="ge",
                left="useful_kbps",
                factor=100.0,
                tiers=("paper", "scale"),
            ),
        ),
    ),
    ReproExperiment(
        id="churn-heavy",
        number=21,
        section="scale",
        title="Scale scenario: heavy churn",
        paper_ref="scenario pack",
        description="A steady departure stream while the mesh re-peers"
        " around the victims.",
        runner=_scenario_runner(
            "churn-heavy",
            {
                "smoke": {"n_overlay": 24, "churn_failures": 6, "duration_s": 80.0},
                "paper": {"n_overlay": 200, "churn_failures": 40, "duration_s": 200.0},
            },
        ),
        headline=("useful_kbps",),
        expectations=(
            Expectation(
                name="dissemination survives sustained churn",
                kind="ge",
                left="useful_kbps",
                factor=100.0,
                tiers=("paper", "scale"),
            ),
        ),
    ),
    ReproExperiment(
        id="churn-adversarial",
        number=22,
        section="scale",
        title="Scale scenario: adversarial churn",
        paper_ref="scenario pack",
        description="The most-depended-upon interior nodes fail in order of"
        " impact, modelling a targeted attack on the overlay backbone.",
        runner=_scenario_runner(
            "churn-adversarial",
            {
                "smoke": {"n_overlay": 24, "churn_failures": 5, "duration_s": 80.0},
                "paper": {"n_overlay": 200, "churn_failures": 30, "duration_s": 200.0},
            },
        ),
        headline=("useful_kbps",),
        expectations=(
            Expectation(
                name="dissemination survives the targeted attack",
                kind="ge",
                left="useful_kbps",
                factor=100.0,
                tiers=("paper", "scale"),
            ),
        ),
    ),
    ReproExperiment(
        id="scale-10000",
        number=23,
        section="scale",
        title="Scale scenario: 10000 nodes, clustered and sharded",
        paper_ref="scenario pack",
        description="An order of magnitude past the paper: a two-level"
        " clustered overlay (bullet-clustered) where ~80 heads run the full"
        " Bullet mesh and cluster interiors step in parallel shard workers.",
        runner=_scenario_runner(
            "scale-10000",
            {
                "smoke": {
                    "n_overlay": 48,
                    "cluster_size": 8,
                    "shard_workers": 2,
                    "duration_s": 60.0,
                },
                "paper": {
                    "n_overlay": 1000,
                    "cluster_size": 50,
                    "duration_s": 150.0,
                },
            },
        ),
        headline=("useful_kbps", "duplicate_ratio"),
        expectations=(
            Expectation(
                name="delivers a usable stream an order of magnitude past"
                " the paper's scale",
                kind="ge",
                left="useful_kbps",
                factor=300.0,
                tiers=("scale",),
            ),
        ),
    ),
    ReproExperiment(
        id="scale-100000",
        number=24,
        section="scale",
        title="Scale scenario: 100000 nodes, three-level and landmark-scored",
        paper_ref="scenario pack",
        description="Two orders of magnitude past the paper: a three-level"
        " clustered overlay where ~8 super-heads run the Bullet mesh inside"
        " the shard workers, ~800 leaf heads ride count-model head groups,"
        " and peer scoring uses seeded landmark coordinates.",
        runner=_scenario_runner(
            "scale-100000",
            {
                # Head-count-capped miniatures: same three-level,
                # landmark-scored, shard-owned shape at CI-friendly sizes.
                "smoke": {
                    "n_overlay": 96,
                    "cluster_size": 8,
                    "shard_workers": 2,
                    "duration_s": 45.0,
                },
                "paper": {
                    "n_overlay": 1000,
                    "cluster_size": 24,
                    "duration_s": 120.0,
                },
                "scale": {
                    "n_overlay": 10000,
                    "cluster_size": 50,
                    "duration_s": 120.0,
                },
            },
        ),
        headline=("useful_kbps", "duplicate_ratio"),
        expectations=(
            Expectation(
                name="the three-level overlay still delivers a usable stream",
                kind="ge",
                left="useful_kbps",
                factor=300.0,
                tiers=("scale",),
            ),
        ),
    ),
)

EXPERIMENTS: Dict[str, ReproExperiment] = {entry.id: entry for entry in CATALOG}

#: Section ordering and display names for the report and docs.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("figures", "Paper figures"),
    ("tables", "Tables and headline claims"),
    ("ablations", "Ablations"),
    ("scale", "Cross-system and scale scenarios"),
)


def experiment_ids() -> List[str]:
    """All catalog ids in catalog (numbered) order."""
    return [entry.id for entry in CATALOG]


def get_experiment(experiment_id: str) -> ReproExperiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: "
            + ", ".join(experiment_ids())
        ) from None


def select_experiments(only: Optional[List[str]] = None) -> List[ReproExperiment]:
    """The catalog subset an ``--only`` selection names, in catalog order.

    Raises ValueError naming the valid ids when a selection is unknown.
    """
    if not only:
        return list(CATALOG)
    unknown = [experiment_id for experiment_id in only if experiment_id not in EXPERIMENTS]
    if unknown:
        raise ValueError(
            f"unknown experiment id(s): {', '.join(sorted(unknown))};"
            f" valid ids: {', '.join(experiment_ids())}"
        )
    wanted = set(only)
    return [entry for entry in CATALOG if entry.id in wanted]
