"""Reproduction-run manifest: what ran, with what inputs, producing what.

A reproduction run writes one results directory (``results/<run-id>/``)
holding a per-experiment JSON export, a ``manifest.json`` recording the run's
inputs (tier, seeds, git SHA) and, per experiment, a determinism digest of
its export plus the scalar metrics and expectation verdicts the report
renders.  Wall-clock measurements deliberately live in a *separate*
``timing.json``: two runs of the same tier and seed must produce
byte-identical exports and manifests (the CI determinism story extends to
the pipeline itself), and elapsed time is the one thing that legitimately
differs between them.

All JSON is written canonically (sorted keys, fixed separators, trailing
newline) so byte comparison is meaningful.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
TIMING_NAME = "timing.json"
SCHEMA = 1


def canonical_json(payload: object) -> str:
    """Render ``payload`` deterministically: sorted keys, stable separators."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def export_digest(data: bytes) -> str:
    """The determinism digest recorded per experiment export."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


def git_sha(repo_root: Optional[PathLike] = None) -> str:
    """The checkout's commit SHA, or ``"unknown"`` outside a git repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip()


@dataclass
class ExpectationOutcome:
    """One evaluated paper expectation: pass, fail, or informational."""

    name: str
    status: str  # "pass" | "fail" | "info"
    detail: str

    def to_json(self) -> Dict[str, str]:
        return {"name": self.name, "status": self.status, "detail": self.detail}

    @classmethod
    def from_json(cls, payload: Dict[str, str]) -> "ExpectationOutcome":
        return cls(
            name=payload["name"], status=payload["status"], detail=payload["detail"]
        )


@dataclass
class ExperimentRecord:
    """One experiment's manifest entry."""

    experiment_id: str
    status: str  # "complete" | "failed"
    export: str  # export filename relative to the results directory
    digest: str
    seeds: List[int]
    metrics: Dict[str, float]
    expectations: List[ExpectationOutcome] = field(default_factory=list)
    #: Per-metric {mean, std, ci95, n} across stability seeds (empty when
    #: the experiment ran with a single seed).
    stability: Dict[str, Dict[str, float]] = field(default_factory=dict)
    error: str = ""

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": self.status,
            "export": self.export,
            "digest": self.digest,
            "seeds": list(self.seeds),
            "metrics": dict(self.metrics),
            "expectations": [outcome.to_json() for outcome in self.expectations],
        }
        if self.stability:
            payload["stability"] = {
                name: dict(row) for name, row in self.stability.items()
            }
        if self.error:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_json(cls, experiment_id: str, payload: Dict[str, object]) -> "ExperimentRecord":
        return cls(
            experiment_id=experiment_id,
            status=str(payload.get("status", "failed")),
            export=str(payload.get("export", "")),
            digest=str(payload.get("digest", "")),
            seeds=[int(seed) for seed in payload.get("seeds", [])],
            metrics={
                str(name): float(value)
                for name, value in dict(payload.get("metrics", {})).items()
            },
            expectations=[
                ExpectationOutcome.from_json(entry)
                for entry in payload.get("expectations", [])
            ],
            stability={
                str(name): {str(k): float(v) for k, v in dict(row).items()}
                for name, row in dict(payload.get("stability", {})).items()
            },
            error=str(payload.get("error", "")),
        )


@dataclass
class Manifest:
    """The whole-run manifest (everything except wall-clock)."""

    run_id: str
    tier: str
    seed: int
    stability: int
    git_sha: str
    experiments: Dict[str, ExperimentRecord] = field(default_factory=dict)

    def record(self, record: ExperimentRecord) -> None:
        self.experiments[record.experiment_id] = record

    def is_complete(self, experiment_id: str) -> bool:
        entry = self.experiments.get(experiment_id)
        return entry is not None and entry.complete

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "tier": self.tier,
            "seed": self.seed,
            "stability": self.stability,
            "git_sha": self.git_sha,
            "experiments": {
                experiment_id: record.to_json()
                for experiment_id, record in self.experiments.items()
            },
        }

    def save(self, results_dir: PathLike) -> Path:
        path = Path(results_dir) / MANIFEST_NAME
        path.write_text(canonical_json(self.to_json()))
        return path

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Manifest":
        manifest = cls(
            run_id=str(payload.get("run_id", "")),
            tier=str(payload.get("tier", "")),
            seed=int(payload.get("seed", 1)),
            stability=int(payload.get("stability", 0)),
            git_sha=str(payload.get("git_sha", "unknown")),
        )
        for experiment_id, entry in dict(payload.get("experiments", {})).items():
            manifest.record(ExperimentRecord.from_json(experiment_id, entry))
        return manifest

    @classmethod
    def load(cls, results_dir: PathLike) -> Optional["Manifest"]:
        """Load a manifest from a results directory, or None if absent/corrupt."""
        path = Path(results_dir) / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return cls.from_json(payload)


def load_timing(results_dir: PathLike) -> Dict[str, object]:
    """The wall-clock sidecar (``{}`` when absent or unreadable)."""
    path = Path(results_dir) / TIMING_NAME
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return payload if isinstance(payload, dict) else {}


def save_timing(results_dir: PathLike, timing: Dict[str, object]) -> Path:
    path = Path(results_dir) / TIMING_NAME
    path.write_text(canonical_json(timing))
    return path
