"""One-command reproduction pipeline: catalog, runner, manifest, report.

``python -m repro.cli reproduce`` drives every registered experiment of the
evaluation (figures 6-15, Table 1, the ablations, the cross-system matrix
and the scale/churn scenario pack) into ``results/<run-id>/`` and renders a
markdown + HTML report comparing the four systems against paper-expected
ranges.  See ``docs/REPRODUCTION.md`` for the experiment catalog.
"""

from repro.report.catalog import (
    CATALOG,
    EXPERIMENTS,
    SECTIONS,
    TIER_NAMES,
    TIERS,
    Expectation,
    ReproExperiment,
    RunContext,
    Tier,
    experiment_ids,
    get_experiment,
    select_experiments,
)
from repro.report.manifest import (
    ExpectationOutcome,
    ExperimentRecord,
    Manifest,
    canonical_json,
    export_digest,
    git_sha,
    load_timing,
    save_timing,
)
from repro.report.render import render_html, render_markdown
from repro.report.runner import (
    ExperimentOutcome,
    ReproducePlan,
    ReproductionRun,
    expectation_failures,
    run_reproduction,
)
