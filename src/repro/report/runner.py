"""The reproduction pipeline: catalog -> results directory -> report.

``run_reproduction`` drives every selected catalog experiment into a
structured results directory::

    results/<run-id>/
    ├── manifest.json     inputs + per-experiment digests/metrics/verdicts
    ├── timing.json       wall-clock per experiment (the only non-determinstic
    │                     output, kept out of the manifest on purpose)
    ├── report.md         the rendered cross-system report
    ├── report.html       the same report as standalone HTML
    └── <id>.json         one canonical-JSON export per experiment

Runs are resumable: an experiment whose manifest entry is complete (and
whose export file still matches its digest) is skipped, so an interrupted
``reproduce`` picks up where it stopped and ``--only`` can backfill a
subset into an existing run.  ``stability > 1`` re-runs every experiment
across that many consecutive seeds and adds mean / sample std / Student-t
95% CI columns per scalar metric, via the same aggregation the sweep
machinery uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.batch import _mean_std, _t95
from repro.report.catalog import (
    TIERS,
    ReproExperiment,
    RunContext,
    flatten_export,
    select_experiments,
)
from repro.report.manifest import (
    ExperimentRecord,
    Manifest,
    canonical_json,
    export_digest,
    git_sha,
    load_timing,
    save_timing,
)
from repro.report.render import render_html, render_markdown

PathLike = Union[str, Path]


@dataclass
class ReproducePlan:
    """Everything one ``reproduce`` invocation decides."""

    tier: str = "smoke"
    out_dir: PathLike = "results"
    run_id: Optional[str] = None  # default: the tier name
    only: Optional[List[str]] = None
    stability: int = 1  # seeds per experiment (1 = single run)
    workers: int = 1
    seed: Optional[int] = None  # base seed override (default: tier seed)
    resume: bool = True

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; available: {', '.join(TIERS)}"
            )
        if self.stability < 1:
            raise ValueError("stability must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    @property
    def results_dir(self) -> Path:
        return Path(self.out_dir) / (self.run_id or self.tier)


@dataclass
class ExperimentOutcome:
    """What happened to one experiment during a pipeline run."""

    experiment_id: str
    status: str  # "complete" | "skipped" | "failed"
    wall_s: float = 0.0
    error: str = ""


@dataclass
class ReproductionRun:
    """The pipeline's return value: where everything landed."""

    results_dir: Path
    manifest: Manifest
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    report_markdown: Optional[Path] = None
    report_html: Optional[Path] = None

    @property
    def completed(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == "complete"]

    @property
    def skipped(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == "skipped"]

    @property
    def failed(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == "failed"]


def _aggregate_stability(
    per_seed_metrics: List[Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Mean / sample std / Student-t 95% CI per metric across seeds."""
    names = sorted({name for metrics in per_seed_metrics for name in metrics})
    table: Dict[str, Dict[str, float]] = {}
    for name in names:
        values = [metrics[name] for metrics in per_seed_metrics if name in metrics]
        mean, std = _mean_std(values)
        n = len(values)
        ci95 = _t95(n - 1) * std / (n ** 0.5) if n > 1 else 0.0
        table[name] = {"mean": mean, "std": std, "ci95": ci95, "n": float(n)}
    return table


def _run_one(
    entry: ReproExperiment, plan: ReproducePlan, base_seed: int
) -> Dict[str, object]:
    """Run one experiment (across stability seeds) into its export payload."""
    tier = TIERS[plan.tier]
    seeds = [base_seed + offset for offset in range(plan.stability)]
    exports = []
    for seed in seeds:
        ctx = RunContext(tier=tier, seed=seed, workers=plan.workers)
        exports.append(flatten_export(entry.runner(ctx)))
    export: Dict[str, object] = {
        "experiment": entry.id,
        "title": entry.title,
        "paper_ref": entry.paper_ref,
        "tier": plan.tier,
        "seeds": seeds,
        # Metrics/series of the first seed are the canonical single-run view;
        # stability aggregates sit alongside when more than one seed ran.
        "metrics": exports[0]["metrics"],
        "series": exports[0]["series"],
        "data": exports[0]["data"],
    }
    if len(exports) > 1:
        export["stability"] = _aggregate_stability(
            [flat["metrics"] for flat in exports]
        )
    return export


def run_reproduction(
    plan: ReproducePlan,
    progress: Optional[Callable[[str], None]] = None,
) -> ReproductionRun:
    """Drive the selected catalog experiments end to end and render reports.

    ``progress`` (when given) receives one human-readable line per
    experiment as the pipeline advances.
    """
    say = progress or (lambda _line: None)
    selected = select_experiments(plan.only)
    tier = TIERS[plan.tier]
    base_seed = plan.seed if plan.seed is not None else tier.seed

    results_dir = plan.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    manifest = Manifest.load(results_dir) if plan.resume else None
    if manifest is None or manifest.tier != plan.tier:
        manifest = Manifest(
            run_id=results_dir.name,
            tier=plan.tier,
            seed=base_seed,
            stability=plan.stability,
            git_sha=git_sha(),
        )
    timing = load_timing(results_dir)
    per_experiment_timing = dict(timing.get("experiments", {}))

    run = ReproductionRun(results_dir=results_dir, manifest=manifest)
    for position, entry in enumerate(selected, start=1):
        export_path = results_dir / f"{entry.id}.json"
        if plan.resume and manifest.is_complete(entry.id) and export_path.exists():
            record = manifest.experiments[entry.id]
            if export_digest(export_path.read_bytes()) == record.digest:
                say(f"[{position:>2}/{len(selected)}] {entry.id}: already complete, skipped")
                run.outcomes.append(
                    ExperimentOutcome(experiment_id=entry.id, status="skipped")
                )
                continue
        say(f"[{position:>2}/{len(selected)}] {entry.id}: running ({entry.title})")
        started = time.perf_counter()
        try:
            export = _run_one(entry, plan, base_seed)
        except Exception as error:  # noqa: BLE001 - one failure must not kill the run
            wall = time.perf_counter() - started
            say(f"    failed after {wall:.1f}s: {error}")
            manifest.record(
                ExperimentRecord(
                    experiment_id=entry.id,
                    status="failed",
                    export=export_path.name,
                    digest="",
                    seeds=[base_seed + offset for offset in range(plan.stability)],
                    metrics={},
                    error=f"{type(error).__name__}: {error}",
                )
            )
            manifest.save(results_dir)
            run.outcomes.append(
                ExperimentOutcome(
                    experiment_id=entry.id, status="failed", wall_s=wall,
                    error=str(error),
                )
            )
            per_experiment_timing[entry.id] = round(wall, 3)
            continue
        wall = time.perf_counter() - started

        payload = canonical_json(export).encode()
        export_path.write_bytes(payload)
        metrics = export["metrics"]
        outcomes = [
            expectation.evaluate(metrics, plan.tier)
            for expectation in entry.expectations
        ]
        stability_table = export.get("stability", {})
        manifest.record(
            ExperimentRecord(
                experiment_id=entry.id,
                status="complete",
                export=export_path.name,
                digest=export_digest(payload),
                seeds=list(export["seeds"]),
                metrics={name: metrics[name] for name in entry.headline if name in metrics},
                expectations=outcomes,
                stability={
                    name: stability_table[name]
                    for name in entry.headline
                    if name in stability_table
                },
            )
        )
        manifest.save(results_dir)
        per_experiment_timing[entry.id] = round(wall, 3)
        save_timing(
            results_dir,
            {
                "experiments": per_experiment_timing,
                "total_s": round(sum(per_experiment_timing.values()), 3),
            },
        )
        checks = sum(1 for outcome in outcomes if outcome.status == "pass")
        fails = sum(1 for outcome in outcomes if outcome.status == "fail")
        verdict = f"{checks} pass" + (f", {fails} FAIL" if fails else "")
        say(f"    done in {wall:.1f}s ({verdict})" if outcomes else f"    done in {wall:.1f}s")
        run.outcomes.append(
            ExperimentOutcome(experiment_id=entry.id, status="complete", wall_s=wall)
        )

    save_timing(
        results_dir,
        {
            "experiments": per_experiment_timing,
            "total_s": round(sum(per_experiment_timing.values()), 3),
        },
    )
    timing = load_timing(results_dir)
    run.report_markdown = results_dir / "report.md"
    run.report_markdown.write_text(render_markdown(manifest, timing))
    run.report_html = results_dir / "report.html"
    run.report_html.write_text(render_html(manifest, timing))
    say(f"report: {run.report_markdown} / {run.report_html}")
    return run


def expectation_failures(manifest: Manifest) -> List[str]:
    """Every failed expectation in the manifest, as ``id: name`` lines."""
    failures: List[str] = []
    for experiment_id, record in manifest.experiments.items():
        for outcome in record.expectations:
            if outcome.status == "fail":
                failures.append(f"{experiment_id}: {outcome.name} ({outcome.detail})")
        if record.status == "failed":
            failures.append(f"{experiment_id}: experiment failed ({record.error})")
    return failures
