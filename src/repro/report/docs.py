"""Generated-data-aware maintenance of ``docs/REPRODUCTION.md``.

The measured wall-clock table in REPRODUCTION.md lives between the
``repro:timing`` markers and is refreshed from a run's ``timing.json`` by
``python -m repro.cli reproduce --refresh-docs``: the row for the tier that
just ran is rewritten with the measured totals, other tiers' rows are kept.
The experiment catalog itself is checked against the registered experiments
by ``scripts/check_reproduction_docs.py`` (CI fails on drift).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.report.catalog import EXPERIMENTS, TIER_NAMES
from repro.report.manifest import Manifest

PathLike = Union[str, Path]

TIMING_BEGIN = "<!-- repro:timing:begin -->"
TIMING_END = "<!-- repro:timing:end -->"
DEFAULT_DOC = Path("docs") / "REPRODUCTION.md"

_HEADER = (
    "| tier | experiments complete | measured wall-clock |",
    "| --- | --- | --- |",
)


def _existing_rows(block: str) -> Dict[str, str]:
    """Data rows of the current timing table, keyed by tier name."""
    rows: Dict[str, str] = {}
    for line in block.strip().splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if not cells or cells[0] == "tier" or set(cells[0]) <= {"-"}:
            continue
        rows[cells[0]] = line
    return rows


def timing_row(manifest: Manifest, timing: Mapping[str, object]) -> str:
    """The measured table row for one reproduction run."""
    complete = sum(1 for record in manifest.experiments.values() if record.complete)
    total = timing.get("total_s")
    measured = (
        f"{float(total):.1f} s" if isinstance(total, (int, float)) else "not recorded"
    )
    return f"| {manifest.tier} | {complete}/{len(EXPERIMENTS)} | {measured} |"


def refresh_timing_table(
    doc_path: PathLike, manifest: Manifest, timing: Mapping[str, object]
) -> bool:
    """Rewrite the run's tier row in the doc's timing table.

    Returns True when the file changed.  Raises ValueError when the doc has
    no (or malformed) ``repro:timing`` markers.
    """
    path = Path(doc_path)
    text = path.read_text()
    begin = text.find(TIMING_BEGIN)
    end = text.find(TIMING_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{path}: missing {TIMING_BEGIN} / {TIMING_END} markers; cannot"
            " refresh the timing table"
        )
    block = text[begin + len(TIMING_BEGIN): end]
    rows = _existing_rows(block)
    rows[manifest.tier] = timing_row(manifest, timing)
    ordered: List[str] = [rows[tier] for tier in TIER_NAMES if tier in rows]
    ordered.extend(row for tier, row in rows.items() if tier not in TIER_NAMES)
    rebuilt = "\n" + "\n".join((*_HEADER, *ordered)) + "\n"
    updated = text[: begin + len(TIMING_BEGIN)] + rebuilt + text[end:]
    if updated == text:
        return False
    path.write_text(updated)
    return True
