"""The RanSub collect/distribute protocol over an overlay tree (Section 2.2).

Once per epoch (5 seconds by default in Bullet):

* **collect phase** — leaves send a collect set containing their own state up
  the tree; every interior node Compacts its children's collect sets together
  with its own state and forwards the result, along with its descendant
  count, to its parent;
* **distribute phase** — the root builds, for each child, a distribute set by
  Compacting the collect sets of that child's *siblings*, the root's own
  state and the root's own (empty) distribute set; every interior node does
  the same on the way down.  With the *non-descendants* option each node thus
  receives a uniformly random subset of all nodes outside its own subtree.

The simulation executes both phases logically at the epoch boundary (control
messages are small and the epoch is much longer than tree propagation), but
charges every hop's message bytes to the receiving node so the per-node
control overhead the paper reports (~30 Kbps) can be measured.

Failure behaviour mirrors Section 4.6: with failure detection disabled, any
dead node stalls the protocol entirely (no node receives new distribute
sets); with detection enabled, the root times the epoch out and the next
distribute phase proceeds without the dead node's subtree, so every node
outside that subtree keeps receiving fresh random subsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.ransub.compact import compact
from repro.ransub.state import (
    CollectSet,
    DEFAULT_SET_SIZE,
    DistributeSet,
    MemberSummary,
    RanSubView,
)
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng

#: Type of the callback RanSub uses to read a node's current state.
StateProvider = Callable[[int], MemberSummary]
#: Type of the callback used to charge control bytes to a node.
OverheadSink = Callable[[int, float], None]


@dataclass
class EpochResult:
    """Outcome of one RanSub epoch."""

    epoch: int
    completed: bool
    views: Dict[int, RanSubView] = field(default_factory=dict)
    descendant_counts: Dict[int, Dict[int, int]] = field(default_factory=dict)
    unreachable: Set[int] = field(default_factory=set)


class RanSubProtocol:
    """Runs RanSub epochs over an overlay tree."""

    def __init__(
        self,
        tree: OverlayTree,
        state_provider: StateProvider,
        set_size: int = DEFAULT_SET_SIZE,
        seed: int = 1,
        overhead_sink: Optional[OverheadSink] = None,
        failure_detection: bool = True,
    ) -> None:
        if set_size <= 0:
            raise ValueError("set_size must be positive")
        self.tree = tree
        self.state_provider = state_provider
        self.set_size = set_size
        self.failure_detection = failure_detection
        self.overhead_sink = overhead_sink
        self._rng = SeededRng(seed, "ransub")
        self.epoch = 0
        #: Last distribute set delivered to each node (its current view).
        self.views: Dict[int, RanSubView] = {}
        #: Last known per-child descendant counts at each node.
        self.descendant_counts: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ epoch
    def run_epoch(self, failed_nodes: Optional[Set[int]] = None) -> EpochResult:
        """Run one collect + distribute epoch and return the new views."""
        failed = set(failed_nodes or ())
        self.epoch += 1
        result = EpochResult(epoch=self.epoch, completed=True)

        if self.tree.root in failed:
            # Nothing can be done if the source itself is gone.
            result.completed = False
            return result

        if failed and not self.failure_detection:
            # A dead node never forwards its collect set; the root never sees
            # the epoch complete and no distribute phase happens ("RanSub
            # stops functioning", Section 4.6).
            result.completed = False
            return result

        alive_members = [node for node in self.tree.members() if node not in failed]
        reachable = self._reachable_through_alive(failed)
        result.unreachable = set(alive_members) - reachable

        collect_sets = self._collect_phase(failed, reachable)
        views, counts = self._distribute_phase(collect_sets, failed, reachable)
        self.views.update(views)
        self.descendant_counts.update(counts)
        result.views = views
        result.descendant_counts = counts
        return result

    # ---------------------------------------------------------------- helpers
    def _reachable_through_alive(self, failed: Set[int]) -> Set[int]:
        """Nodes still connected to the root through live tree edges."""
        reachable: Set[int] = set()
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node in failed or node in reachable:
                continue
            reachable.add(node)
            stack.extend(child for child in self.tree.children(node) if child not in failed)
        return reachable

    def _charge(self, node: int, n_bytes: float) -> None:
        if self.overhead_sink is not None:
            self.overhead_sink(node, n_bytes)

    def _collect_phase(
        self, failed: Set[int], reachable: Set[int]
    ) -> Dict[int, CollectSet]:
        """Bottom-up Compact of collect sets; returns the set sent by each node."""
        collect_sets: Dict[int, CollectSet] = {}
        # Process nodes deepest-first so children are done before parents.
        ordered = sorted(reachable, key=self.tree.depth, reverse=True)
        for node in ordered:
            own_summary = self.state_provider(node)
            child_inputs: List[Tuple[Sequence[MemberSummary], int]] = []
            for child in self.tree.children(node):
                child_set = collect_sets.get(child)
                if child_set is None:
                    continue
                child_inputs.append((child_set.summaries, child_set.population))
                # The child's message is received by this node.
                self._charge(node, child_set.size_bytes())
            merged, population = compact(
                child_inputs + [([own_summary], 1)],
                self.set_size,
                self._rng.child(f"collect-{self.epoch}-{node}"),
            )
            collect_sets[node] = CollectSet(sender=node, summaries=merged, population=population)
        return collect_sets

    def _distribute_phase(
        self,
        collect_sets: Dict[int, CollectSet],
        failed: Set[int],
        reachable: Set[int],
    ) -> Tuple[Dict[int, RanSubView], Dict[int, Dict[int, int]]]:
        """Top-down construction of non-descendants distribute sets."""
        views: Dict[int, RanSubView] = {}
        counts: Dict[int, Dict[int, int]] = {}
        # The root's own distribute set is empty (nothing is outside the tree).
        incoming: Dict[int, DistributeSet] = {
            self.tree.root: DistributeSet(recipient=self.tree.root, epoch=self.epoch)
        }
        ordered = sorted(reachable, key=self.tree.depth)
        for node in ordered:
            own_distribute = incoming.get(node)
            if own_distribute is None:
                continue
            views[node] = RanSubView(
                epoch=self.epoch,
                summaries={summary.node: summary for summary in own_distribute.summaries},
            )
            children = [child for child in self.tree.children(node) if child in reachable]
            counts[node] = {
                child: len([d for d in self.tree.descendants(child) if d not in failed]) + 1
                for child in children
            }
            own_summary = self.state_provider(node)
            for child in children:
                sibling_inputs: List[Tuple[Sequence[MemberSummary], int]] = []
                for sibling in children:
                    if sibling == child:
                        continue
                    sibling_set = collect_sets.get(sibling)
                    if sibling_set is not None:
                        sibling_inputs.append((sibling_set.summaries, sibling_set.population))
                parent_view_input: List[Tuple[Sequence[MemberSummary], int]] = [
                    (own_distribute.summaries, max(own_distribute.population, len(own_distribute.summaries))),
                    ([own_summary], 1),
                ]
                merged, population = compact(
                    sibling_inputs + parent_view_input,
                    self.set_size,
                    self._rng.child(f"distribute-{self.epoch}-{node}-{child}"),
                )
                message = DistributeSet(
                    recipient=child, summaries=merged, population=population, epoch=self.epoch
                )
                incoming[child] = message
                # The child receives the distribute message.
                self._charge(child, message.size_bytes())
        return views, counts

    # ---------------------------------------------------------------- queries
    def view(self, node: int) -> Optional[RanSubView]:
        """The most recent distribute set delivered to ``node`` (if any)."""
        return self.views.get(node)

    def child_descendant_counts(self, node: int) -> Dict[int, int]:
        """Per-child subtree sizes known at ``node`` (Bullet's sending factors)."""
        return dict(self.descendant_counts.get(node, {}))
