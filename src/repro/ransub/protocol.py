"""The RanSub collect/distribute protocol over an overlay tree (Section 2.2).

Once per epoch (5 seconds by default in Bullet):

* **collect phase** — leaves send a collect set containing their own state up
  the tree; every interior node Compacts its children's collect sets together
  with its own state and forwards the result, along with its descendant
  count, to its parent;
* **distribute phase** — the root builds, for each child, a distribute set by
  Compacting the collect sets of that child's *siblings*, the root's own
  state and the root's own (empty) distribute set; every interior node does
  the same on the way down.  With the *non-descendants* option each node thus
  receives a uniformly random subset of all nodes outside its own subtree.

The protocol is message-driven: each participant owns a
:class:`RanSubNodeState` state machine that exchanges typed
:class:`RanSubCollect` / :class:`RanSubDistribute` messages with its tree
neighbours.  The Bullet mesh routes those messages through the simulated
:class:`~repro.network.control.ControlChannel`, so collect and distribute
sets experience real path latency and loss and a dead subtree is detected by
*timeout* rather than by oracle knowledge.

Failure behaviour mirrors Section 4.6: with failure detection disabled, a
node waits for every child's collect set indefinitely, so any dead node
stalls the protocol above it and no fresh distribute sets are produced
("RanSub stops functioning"); with detection enabled, a node times the
collect phase out and proceeds without the dead subtree, so every node
outside that subtree keeps receiving fresh random subsets.

:class:`RanSubProtocol` remains the synchronous facade for standalone use
(tests, offline analysis): ``run_epoch`` pumps the same state machines over
an instantaneous in-memory queue, charging every hop's message bytes to the
receiving node through ``overhead_sink``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.network.control import ControlMessage
from repro.ransub.compact import compact
from repro.ransub.state import (
    CollectSet,
    DEFAULT_SET_SIZE,
    DistributeSet,
    MemberSummary,
    RanSubView,
)
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng
from repro.analysis.shakeout import tracked_set

#: Type of the callback RanSub uses to read a node's current state.
StateProvider = Callable[[int], MemberSummary]
#: Type of the callback used to charge control bytes to a node.
OverheadSink = Callable[[int, float], None]


# ------------------------------------------------------------------ messages
@dataclass
class RanSubCollect(ControlMessage):
    """A collect set travelling one hop up the tree."""

    collect: CollectSet = field(default_factory=lambda: CollectSet(sender=-1))
    epoch: int = 0

    kind = "ransub-collect"

    def size_bytes(self) -> int:
        return self.collect.size_bytes()


@dataclass
class RanSubDistribute(ControlMessage):
    """A distribute set travelling one hop down the tree."""

    distribute: DistributeSet = field(default_factory=lambda: DistributeSet(recipient=-1))

    kind = "ransub-distribute"

    @property
    def epoch(self) -> int:
        """The payload's epoch (a DistributeSet always carries one)."""
        return self.distribute.epoch

    def size_bytes(self) -> int:
        return self.distribute.size_bytes()


@dataclass
class EpochResult:
    """Outcome of one RanSub epoch."""

    epoch: int
    completed: bool
    views: Dict[int, RanSubView] = field(default_factory=dict)
    descendant_counts: Dict[int, Dict[int, int]] = field(default_factory=dict)
    unreachable: Set[int] = field(default_factory=set)


class RanSubNodeState:
    """One participant's RanSub state machine.

    Every method that advances the machine returns the list of control
    messages the node wants to send; the caller (the Bullet mesh, or the
    synchronous :class:`RanSubProtocol` facade) owns their transmission.
    """

    def __init__(
        self,
        node: int,
        parent: Optional[int],
        children: Sequence[int],
        set_size: int = DEFAULT_SET_SIZE,
        rng: Optional[SeededRng] = None,
        failure_detection: bool = True,
    ) -> None:
        if set_size <= 0:
            raise ValueError("set_size must be positive")
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.set_size = set_size
        self.failure_detection = failure_detection
        self._rng = rng if rng is not None else SeededRng(1, "ransub")
        #: Epoch currently being collected/distributed.
        self.epoch = 0
        #: The node's latest view (most recent distribute set received).
        self.view: Optional[RanSubView] = None
        #: Per-child collect populations from the last finalized collect
        #: phase (Bullet's sending factors).
        self.child_populations: Dict[int, int] = {}
        self._child_collects: Dict[int, CollectSet] = {}
        self._own_summary: Optional[MemberSummary] = None
        self._collect_finalized = False
        self._deadline: Optional[float] = None

    # -------------------------------------------------------------- lifecycle
    @property
    def collect_finalized(self) -> bool:
        """Whether this epoch's collect set has been compacted and sent."""
        return self._collect_finalized

    def add_child(self, child: int) -> None:
        """Register a child that joined the tree (call between epochs).

        Mid-epoch additions are deferred by the caller to the next
        :meth:`begin_epoch` so a collect phase never waits on a child whose
        own epoch has not started (which would stall the protocol exactly
        like a dead subtree with failure detection off).
        """
        if child not in self.children:
            self.children.append(child)
            self.children.sort()

    def begin_epoch(
        self,
        epoch: int,
        own_summary: MemberSummary,
        now: float = 0.0,
        timeout_s: Optional[float] = None,
    ) -> List[ControlMessage]:
        """Start a new epoch; leaves emit their collect set immediately.

        ``timeout_s`` arms the failure-detection deadline: if the node has
        not heard from every child by ``now + timeout_s`` it proceeds
        without the missing subtrees on the next :meth:`poll`.  Without
        failure detection the node waits indefinitely (the Section 4.6
        stall).
        """
        self.epoch = epoch
        self._own_summary = own_summary
        self._child_collects = {}
        self._collect_finalized = False
        self._deadline = (
            now + timeout_s
            if (timeout_s is not None and self.failure_detection and self.children)
            else None
        )
        if not self.children:
            return self._finalize_collect()
        return []

    def handle_collect(self, message: RanSubCollect) -> List[ControlMessage]:
        """Absorb a child's collect set; may complete this node's own."""
        if message.epoch != self.epoch or self._collect_finalized:
            return []
        if message.src not in self.children:
            return []
        self._child_collects[message.src] = message.collect
        if len(self._child_collects) == len(self.children):
            return self._finalize_collect()
        return []

    def handle_distribute(self, message: RanSubDistribute) -> List[ControlMessage]:
        """Install the node's new view and forward distribute sets down."""
        incoming = message.distribute
        if self.view is None or incoming.epoch > self.view.epoch:
            self.view = RanSubView(
                epoch=incoming.epoch,
                summaries={summary.node: summary for summary in incoming.summaries},
            )
        if incoming.epoch != self.epoch or not self._collect_finalized:
            # A distribute set from a different epoch cannot be combined
            # with this epoch's collect buffers; the view above still counts.
            return []
        return self._build_distributes(incoming)

    def poll(self, now: float) -> List[ControlMessage]:
        """Fire the failure-detection timeout if the collect phase stalled."""
        if self.deadline_due(now):
            return self._finalize_collect()
        return []

    def deadline_due(self, now: float) -> bool:
        """Whether :meth:`poll` would fire at ``now`` — a side-effect-free probe.

        Used by the sharded head-mesh coordinator to decide whether the
        deepest-first poll cascade is worth scheduling at all; the condition
        is exactly the one :meth:`poll` gates on.
        """
        return (
            self._deadline is not None
            and not self._collect_finalized
            and self._own_summary is not None
            and now + 1e-12 >= self._deadline
        )

    def force_finalize(self) -> List[ControlMessage]:
        """Finalize the collect phase with whatever children have reported."""
        if self._collect_finalized or self._own_summary is None:
            return []
        return self._finalize_collect()

    # ---------------------------------------------------------------- helpers
    def _present_children(self) -> List[int]:
        return [child for child in self.children if child in self._child_collects]

    def _finalize_collect(self) -> List[ControlMessage]:
        self._collect_finalized = True
        present = self._present_children()
        child_inputs: List[Tuple[Sequence[MemberSummary], int]] = [
            (self._child_collects[child].summaries, self._child_collects[child].population)
            for child in present
        ]
        self.child_populations = {
            child: self._child_collects[child].population for child in present
        }
        merged, population = compact(
            child_inputs + [([self._own_summary], 1)],
            self.set_size,
            self._rng.child(f"collect-{self.epoch}-{self.node}"),
        )
        own_collect = CollectSet(sender=self.node, summaries=merged, population=population)
        if self.parent is None:
            # The root's own distribute set is empty (nothing is outside the
            # tree); receiving it starts the downward phase.
            self.view = RanSubView(epoch=self.epoch, summaries={})
            return self._build_distributes(
                DistributeSet(recipient=self.node, epoch=self.epoch)
            )
        return [
            RanSubCollect(
                src=self.node, dst=self.parent, collect=own_collect, epoch=self.epoch
            )
        ]

    def _build_distributes(self, own_distribute: DistributeSet) -> List[ControlMessage]:
        messages: List[ControlMessage] = []
        present = self._present_children()
        for child in present:
            sibling_inputs: List[Tuple[Sequence[MemberSummary], int]] = []
            for sibling in present:
                if sibling == child:
                    continue
                sibling_set = self._child_collects[sibling]
                sibling_inputs.append((sibling_set.summaries, sibling_set.population))
            parent_view_input: List[Tuple[Sequence[MemberSummary], int]] = [
                (
                    own_distribute.summaries,
                    max(own_distribute.population, len(own_distribute.summaries)),
                ),
                ([self._own_summary], 1),
            ]
            merged, population = compact(
                sibling_inputs + parent_view_input,
                self.set_size,
                self._rng.child(f"distribute-{self.epoch}-{self.node}-{child}"),
            )
            payload = DistributeSet(
                recipient=child, summaries=merged, population=population, epoch=self.epoch
            )
            messages.append(RanSubDistribute(src=self.node, dst=child, distribute=payload))
        return messages


class RanSubProtocol:
    """The synchronous facade: runs whole epochs over an in-memory queue.

    Control messages are exchanged instantly and losslessly (the epoch is
    much longer than tree propagation), but every hop's bytes are charged to
    the receiving node through ``overhead_sink`` so per-node control
    overhead can be measured.  The Bullet mesh does not use this facade; it
    drives :class:`RanSubNodeState` machines over the simulated
    :class:`~repro.network.control.ControlChannel` instead.
    """

    def __init__(
        self,
        tree: OverlayTree,
        state_provider: StateProvider,
        set_size: int = DEFAULT_SET_SIZE,
        seed: int = 1,
        overhead_sink: Optional[OverheadSink] = None,
        failure_detection: bool = True,
    ) -> None:
        if set_size <= 0:
            raise ValueError("set_size must be positive")
        self.tree = tree
        self.state_provider = state_provider
        self.set_size = set_size
        self.failure_detection = failure_detection
        self.overhead_sink = overhead_sink
        self._rng = SeededRng(seed, "ransub")
        self.epoch = 0
        #: Last distribute set delivered to each node (its current view).
        self.views: Dict[int, RanSubView] = {}
        #: Last known per-child descendant counts at each node.
        self.descendant_counts: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ epoch
    def run_epoch(self, failed_nodes: Optional[Set[int]] = None) -> EpochResult:
        """Run one collect + distribute epoch and return the new views."""
        failed = tracked_set("ransub.failed", failed_nodes or ())
        self.epoch += 1
        result = EpochResult(epoch=self.epoch, completed=True)

        if self.tree.root in failed:
            # Nothing can be done if the source itself is gone.
            result.completed = False
            return result

        if failed and not self.failure_detection:
            # A dead node never forwards its collect set; the root never sees
            # the epoch complete and no distribute phase happens ("RanSub
            # stops functioning", Section 4.6).
            result.completed = False
            return result

        alive = [node for node in self.tree.members() if node not in failed]
        reachable = self._reachable_through_alive(failed)
        result.unreachable = set(alive) - reachable

        machines = {
            node: RanSubNodeState(
                node=node,
                parent=self.tree.parent(node),
                children=self.tree.children(node),
                set_size=self.set_size,
                rng=self._rng,
                failure_detection=self.failure_detection,
            )
            for node in alive
        }

        queue: deque[ControlMessage] = deque()

        def pump(messages: List[ControlMessage]) -> None:
            queue.extend(messages)
            while queue:
                message = queue.popleft()
                machine = machines.get(message.dst)
                if machine is None:
                    continue  # addressed to a failed node: lost
                self._charge(message.dst, message.size_bytes())
                if isinstance(message, RanSubCollect):
                    queue.extend(machine.handle_collect(message))
                elif isinstance(message, RanSubDistribute):
                    queue.extend(machine.handle_distribute(message))

        for node in alive:
            pump(machines[node].begin_epoch(self.epoch, self.state_provider(node)))

        # Failure detection: nodes still waiting on a dead subtree time out
        # and proceed with what they have, deepest first so completions
        # cascade upward naturally.
        for node in sorted(reachable, key=self.tree.depth, reverse=True):
            if not machines[node].collect_finalized:
                pump(machines[node].force_finalize())

        result.completed = machines[self.tree.root].collect_finalized
        views: Dict[int, RanSubView] = {}
        counts: Dict[int, Dict[int, int]] = {}
        for node in alive:
            machine = machines[node]
            if machine.view is not None and machine.view.epoch == self.epoch:
                views[node] = machine.view
            if node in reachable and machine.collect_finalized:
                counts[node] = dict(machine.child_populations)
        self.views.update(views)
        self.descendant_counts.update(counts)
        result.views = views
        result.descendant_counts = counts
        return result

    # ---------------------------------------------------------------- helpers
    def _reachable_through_alive(self, failed: Set[int]) -> Set[int]:
        """Nodes still connected to the root through live tree edges."""
        reachable: Set[int] = set()
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node in failed or node in reachable:
                continue
            reachable.add(node)
            stack.extend(child for child in self.tree.children(node) if child not in failed)
        return reachable

    def _charge(self, node: int, n_bytes: float) -> None:
        if self.overhead_sink is not None:
            self.overhead_sink(node, n_bytes)

    # ---------------------------------------------------------------- queries
    def view(self, node: int) -> Optional[RanSubView]:
        """The most recent distribute set delivered to ``node`` (if any)."""
        return self.views.get(node)

    def child_descendant_counts(self, node: int) -> Dict[int, int]:
        """Per-child subtree sizes known at ``node`` (Bullet's sending factors)."""
        return dict(self.descendant_counts.get(node, {}))
