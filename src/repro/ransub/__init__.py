"""RanSub: periodic dissemination of changing, uniformly random subsets of
global state over an overlay tree (collect/distribute with Compact)."""

from repro.ransub.compact import compact
from repro.ransub.protocol import (
    EpochResult,
    RanSubCollect,
    RanSubDistribute,
    RanSubNodeState,
    RanSubProtocol,
)
from repro.ransub.state import (
    CollectSet,
    DEFAULT_SET_SIZE,
    DistributeSet,
    MemberSummary,
    RanSubView,
)

__all__ = [
    "CollectSet",
    "DEFAULT_SET_SIZE",
    "DistributeSet",
    "EpochResult",
    "MemberSummary",
    "RanSubCollect",
    "RanSubDistribute",
    "RanSubNodeState",
    "RanSubProtocol",
    "RanSubView",
    "compact",
]
