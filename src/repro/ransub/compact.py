"""The Compact operation (Section 2.2).

"Compact takes multiple fixed-size subsets and the total population
represented by each subset as input, and generates a new fixed-size subset.
The members of the resulting set are uniformly random representatives of the
input subset members."

The implementation performs weighted reservoir-style selection: each output
slot first picks an input subset with probability proportional to the
population it represents, then picks a uniformly random member of that
subset, rejecting duplicates.  The result is a fixed-size subset in which a
node's inclusion probability is (approximately) proportional to 1/population
of the whole represented group — i.e. uniform over the union.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ransub.state import MemberSummary
from repro.util.rng import SeededRng


def compact(
    subsets: Sequence[Tuple[Sequence[MemberSummary], int]],
    set_size: int,
    rng: SeededRng,
) -> Tuple[List[MemberSummary], int]:
    """Merge weighted subsets into one fixed-size, uniformly-representative subset.

    ``subsets`` is a sequence of ``(summaries, population)`` pairs where
    ``population`` is the number of nodes each subset stands for.  Returns the
    merged subset (at most ``set_size`` distinct members) and the combined
    population.
    """
    if set_size <= 0:
        raise ValueError("set_size must be positive")
    non_empty = [(list(summaries), population) for summaries, population in subsets if summaries]
    total_population = sum(max(population, 0) for _, population in subsets)
    if not non_empty:
        return [], total_population

    # Fast path: if the union is small enough, keep all of it (dedup by node).
    union: Dict[int, MemberSummary] = {}
    for summaries, _ in non_empty:
        for summary in summaries:
            union.setdefault(summary.node, summary)
    if len(union) <= set_size:
        return list(union.values()), total_population

    weights = [max(population, 1) for _, population in non_empty]
    chosen: Dict[int, MemberSummary] = {}
    attempts = 0
    max_attempts = set_size * 20
    while len(chosen) < set_size and attempts < max_attempts:
        attempts += 1
        summaries, _ = rng.weighted_choice(non_empty, weights)
        summary = rng.choice(summaries)
        chosen.setdefault(summary.node, summary)
    if len(chosen) < set_size:
        # Rejection sampling stalled (heavily overlapping subsets); top up
        # deterministically from the union to keep the output size fixed.
        for node, summary in union.items():
            if len(chosen) >= set_size:
                break
            chosen.setdefault(node, summary)
    return list(chosen.values()), total_population
