"""RanSub wire-level state: member summaries, collect sets and distribute sets.

RanSub moves fixed-size random subsets of per-node state through the tree.
For Bullet, the per-node state is a *summary ticket* (a 120-byte min-wise
sketch of the node's working set); the collect and distribute messages carry
``set_size`` of these summaries plus a descendant-count estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.reconcile.summary_ticket import SummaryTicket

#: Default number of member summaries per collect/distribute set; the paper
#: uses 10 so each message fits in a non-fragmented IP packet.
DEFAULT_SET_SIZE: int = 10

#: Approximate fixed header bytes per collect/distribute message.
MESSAGE_HEADER_BYTES: int = 40


@dataclass(frozen=True)
class MemberSummary:
    """One node's state as carried inside RanSub sets."""

    node: int
    ticket: SummaryTicket
    epoch: int = 0

    def size_bytes(self) -> int:
        """Wire size: node id (4), epoch (4) and the ticket itself."""
        return 8 + self.ticket.size_bytes()


@dataclass
class CollectSet:
    """A collect message travelling up the tree.

    ``population`` is the total number of nodes the subset represents (the
    sender's subtree size including itself), used by Compact to keep merged
    subsets uniformly representative and by Bullet for sending factors.
    """

    sender: int
    summaries: List[MemberSummary] = field(default_factory=list)
    population: int = 1
    #: Cached serialization size; a set's content is frozen once it is sent,
    #: so the sum over summaries is computed at most once per payload no
    #: matter how many hops charge it (the shared-serialization fast path).
    _size_cache: Optional[int] = field(default=None, repr=False, compare=False)

    def size_bytes(self) -> int:
        """Wire size of the message."""
        if self._size_cache is None:
            self._size_cache = MESSAGE_HEADER_BYTES + sum(
                summary.size_bytes() for summary in self.summaries
            )
        return self._size_cache


@dataclass
class DistributeSet:
    """A distribute message travelling down the tree.

    Carries a uniformly random subset of (for the non-descendants variant)
    every node outside the recipient's subtree.
    """

    recipient: int
    summaries: List[MemberSummary] = field(default_factory=list)
    population: int = 0
    epoch: int = 0
    #: Cached serialization size (see :class:`CollectSet`).
    _size_cache: Optional[int] = field(default=None, repr=False, compare=False)

    def members(self) -> List[int]:
        """Node ids present in the set."""
        return [summary.node for summary in self.summaries]

    def size_bytes(self) -> int:
        """Wire size of the message."""
        if self._size_cache is None:
            self._size_cache = MESSAGE_HEADER_BYTES + sum(
                summary.size_bytes() for summary in self.summaries
            )
        return self._size_cache


@dataclass
class RanSubView:
    """What one Bullet node ends up knowing after an epoch's distribute phase."""

    epoch: int
    summaries: Dict[int, MemberSummary] = field(default_factory=dict)

    def candidates(self, exclude: Optional[Sequence[int]] = None) -> Dict[int, SummaryTicket]:
        """Candidate peers and their tickets, optionally excluding some nodes."""
        excluded = set(exclude or ())
        return {
            node: summary.ticket
            for node, summary in self.summaries.items()
            if node not in excluded
        }
