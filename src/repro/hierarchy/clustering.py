"""Proximity clustering and head election for the two-level overlay.

Participants are grouped into clusters of roughly ``cluster_size`` members by
network proximity, approximated by their access router: two clients behind
the same stub router share every wide-area bottleneck, so router-grouped
clusters keep intra-cluster traffic local.  Each cluster elects the member
with the fattest access uplink as its *head* — heads carry the full Bullet
mesh and must push the stream into their cluster, so uplink capacity is the
scarce resource — with node-id tiebreaks keeping every decision
deterministic.  The source always leads a cluster of its own: it already
runs the mesh root and serves no interior tree.

Everything here is O(n) or O(n log n) in the overlay size: at the
``scale-10000`` scenario there are ten thousand participants and only ~80
heads, and only heads ever touch underlay routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.topology.graph import Topology


@dataclass(frozen=True)
class ClusterPlan:
    """One planned cluster: an elected head plus its ordered interiors."""

    head: int
    interiors: Tuple[int, ...]

    def members(self) -> List[int]:
        """Head first, then interiors in plan order."""
        return [self.head, *self.interiors]


def access_router(topology: Topology, node: int) -> int:
    """The client's single uplink router (its proximity fingerprint)."""
    successors = list(topology.graph.successors(node))
    if not successors:
        raise ValueError(f"node {node} has no uplink; is it a client host?")
    return min(successors)


def access_capacity_kbps(topology: Topology, node: int) -> float:
    """Capacity of the client's access uplink."""
    link = topology.link_between(node, access_router(topology, node))
    if link is None:
        raise ValueError(f"node {node} has no access link")
    return link.capacity_kbps


def access_loss_rate(topology: Topology, node: int) -> float:
    """Loss rate on the client's *downlink* (router -> client).

    Interior deliveries traverse the child's access link last; under the
    Section 4.5 loss model that is where a client's loss lives.
    """
    link = topology.link_between(access_router(topology, node), node)
    if link is None:
        raise ValueError(f"node {node} has no access downlink")
    return link.loss_rate


def elect_head(topology: Topology, members: Sequence[int]) -> int:
    """The member with the fattest access uplink (node id breaks ties)."""
    if not members:
        raise ValueError("cannot elect a head from an empty cluster")
    return min(members, key=lambda node: (-access_capacity_kbps(topology, node), node))


def plan_clusters(
    topology: Topology,
    source: int,
    participants: Sequence[int],
    cluster_size: int,
) -> List[ClusterPlan]:
    """Partition ``participants`` into proximity clusters with elected heads.

    The source forms its own single-member cluster (it is the mesh root).
    The remaining participants are sorted by (access router, node id) — so
    cluster mates share stub domains wherever the placement allows — and
    chunked into groups of ``cluster_size``; each group's head is the member
    with the largest access-uplink capacity.
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be at least 1")
    if source not in participants:
        raise ValueError("the source must be a participant")
    others = sorted(node for node in participants if node != source)
    if len(others) != len(participants) - 1:
        raise ValueError("participants must be unique")
    by_proximity = sorted(others, key=lambda node: (access_router(topology, node), node))
    plans: List[ClusterPlan] = [ClusterPlan(head=source, interiors=())]
    for start in range(0, len(by_proximity), cluster_size):
        group = by_proximity[start : start + cluster_size]
        head = elect_head(topology, group)
        interiors = tuple(node for node in group if node != head)
        plans.append(ClusterPlan(head=head, interiors=interiors))
    return plans


def promotion_candidate(topology: Topology, interiors: Sequence[int]) -> int:
    """Which live interior inherits a failed head: same rule as election."""
    return elect_head(topology, interiors)


def nearest_head(topology: Topology, heads: Sequence[int], node: int) -> int:
    """The head closest to ``node`` by underlay round-trip time.

    Ties break on the smaller head id.  This is the join rule: a mid-run
    arrival lands in the cluster whose head it can fetch from cheapest.
    """
    if not heads:
        raise ValueError("no live cluster heads to join")
    scored: List[Tuple[float, int]] = []
    for head in heads:
        rtt, _loss = topology.round_trip(head, node)
        scored.append((rtt, head))
    return min(scored)[1]
