"""Proximity clustering and head election for the hierarchical overlay.

Participants are grouped into clusters of roughly ``cluster_size`` members by
network proximity, approximated by their access router: two clients behind
the same stub router share every wide-area bottleneck, so router-grouped
clusters keep intra-cluster traffic local.  Each cluster elects the member
with the fattest access uplink as its *head* — heads carry the full Bullet
mesh and must push the stream into their cluster, so uplink capacity is the
scarce resource — with node-id tiebreaks keeping every decision
deterministic.  The source always leads a cluster of its own: it already
runs the mesh root and serves no interior tree.

Plans are recursive: :func:`plan_hierarchy` stacks the same clustering rule
on top of itself.  At ``levels=2`` (the default) the leaf-cluster heads join
the Bullet mesh directly; at ``levels=3`` the leaf heads are themselves
clustered into *head groups* whose elected super-heads are the only mesh
members, so a 100k-node overlay runs a mesh of ~10 nodes instead of ~800.
``levels=1`` degenerates to the flat mesh (every participant is its own
head), kept for apples-to-apples comparisons.

Latency-aware decisions (nearest-cluster join routing, proximity tiebreaks
in head election) take an optional estimator — any object with
``estimate_rtt(a, b)``, see :mod:`repro.topology.landmarks` — so
million-pair workloads avoid exact per-pair underlay resolution.  With no
estimator every function behaves byte-identically to the historical exact
mode.

Everything here is O(n) or O(n log n) in the overlay size: at the
``scale-100000`` scenario there are a hundred thousand participants, ~800
leaf heads and ~10 mesh members, and only mesh members ever touch underlay
routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.topology.graph import Topology


@dataclass(frozen=True)
class ClusterPlan:
    """One planned cluster: an elected head plus its ordered interiors."""

    head: int
    interiors: Tuple[int, ...]

    def members(self) -> List[int]:
        """Head first, then interiors in plan order."""
        return [self.head, *self.interiors]


@dataclass(frozen=True)
class HierarchyPlan:
    """A recursive clustering of the overlay.

    ``leaf_plans`` always partitions every participant (the source leads its
    own single-member cluster).  ``group_plans`` is the optional third level:
    a clustering *of the leaf heads* whose heads — the super-heads — are the
    only mesh members.  Below three levels it is empty and the leaf heads
    join the mesh directly.
    """

    levels: int
    leaf_plans: Tuple[ClusterPlan, ...]
    group_plans: Tuple[ClusterPlan, ...] = ()

    def leaf_heads(self) -> List[int]:
        """Every leaf-cluster head, in leaf-plan order (source first)."""
        return [plan.head for plan in self.leaf_plans]

    def mesh_members(self) -> List[int]:
        """The nodes that join the Bullet mesh, in plan order."""
        if self.group_plans:
            return [plan.head for plan in self.group_plans]
        return self.leaf_heads()


def access_router(topology: Topology, node: int) -> int:
    """The client's single uplink router (its proximity fingerprint)."""
    successors = list(topology.graph.successors(node))
    if not successors:
        raise ValueError(f"node {node} has no uplink; is it a client host?")
    return min(successors)


def access_capacity_kbps(topology: Topology, node: int) -> float:
    """Capacity of the client's access uplink."""
    link = topology.link_between(node, access_router(topology, node))
    if link is None:
        raise ValueError(f"node {node} has no access link")
    return link.capacity_kbps


def access_loss_rate(topology: Topology, node: int) -> float:
    """Loss rate on the client's *downlink* (router -> client).

    Interior deliveries traverse the child's access link last; under the
    Section 4.5 loss model that is where a client's loss lives.
    """
    link = topology.link_between(access_router(topology, node), node)
    if link is None:
        raise ValueError(f"node {node} has no access downlink")
    return link.loss_rate


def elect_head(
    topology: Topology,
    members: Sequence[int],
    estimator=None,
    source: Optional[int] = None,
) -> int:
    """The member with the fattest access uplink (node id breaks ties).

    With a latency estimator and a source, capacity ties break by estimated
    proximity to the source before falling back to node id — the head is the
    node that both can feed its cluster and sits closest to the stream.
    Without an estimator the historical ``(-capacity, node)`` rule applies
    unchanged.
    """
    if not members:
        raise ValueError("cannot elect a head from an empty cluster")
    if estimator is not None and source is not None:
        return min(
            members,
            key=lambda node: (
                -access_capacity_kbps(topology, node),
                estimator.estimate_rtt(source, node),
                node,
            ),
        )
    return min(members, key=lambda node: (-access_capacity_kbps(topology, node), node))


def plan_clusters(
    topology: Topology,
    source: int,
    participants: Sequence[int],
    cluster_size: int,
    estimator=None,
) -> List[ClusterPlan]:
    """Partition ``participants`` into proximity clusters with elected heads.

    The source forms its own single-member cluster (it is the mesh root).
    The remaining participants are sorted by (access router, node id) — so
    cluster mates share stub domains wherever the placement allows — and
    chunked into groups of ``cluster_size``; each group's head is the member
    with the largest access-uplink capacity.
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be at least 1")
    if source not in participants:
        raise ValueError("the source must be a participant")
    others = sorted(node for node in participants if node != source)
    if len(others) != len(participants) - 1:
        raise ValueError("participants must be unique")
    by_proximity = sorted(others, key=lambda node: (access_router(topology, node), node))
    plans: List[ClusterPlan] = [ClusterPlan(head=source, interiors=())]
    for start in range(0, len(by_proximity), cluster_size):
        group = by_proximity[start : start + cluster_size]
        head = elect_head(topology, group, estimator=estimator, source=source)
        interiors = tuple(node for node in group if node != head)
        plans.append(ClusterPlan(head=head, interiors=interiors))
    return plans


def plan_hierarchy(
    topology: Topology,
    source: int,
    participants: Sequence[int],
    cluster_size: int,
    levels: int = 2,
    estimator=None,
) -> HierarchyPlan:
    """Build a recursive clustering plan with ``levels`` tiers.

    * ``levels=1`` — every participant is its own head: the mesh is flat.
    * ``levels=2`` — the classic layout: leaf clusters, heads in the mesh.
    * ``levels=3`` — leaf heads are clustered again by the same rule; only
      the elected super-heads join the mesh, and each super-head fans the
      stream out to the other leaf heads of its group through a head tree.
    """
    if not 1 <= levels <= 3:
        raise ValueError("levels must be between 1 and 3")
    if levels == 1:
        if source not in participants:
            raise ValueError("the source must be a participant")
        others = sorted(node for node in participants if node != source)
        if len(others) != len(participants) - 1:
            raise ValueError("participants must be unique")
        leaf_plans = [ClusterPlan(head=source, interiors=())]
        leaf_plans.extend(ClusterPlan(head=node, interiors=()) for node in others)
        return HierarchyPlan(levels=1, leaf_plans=tuple(leaf_plans))
    leaf_plans = plan_clusters(
        topology, source, participants, cluster_size, estimator=estimator
    )
    if levels == 2:
        return HierarchyPlan(levels=2, leaf_plans=tuple(leaf_plans))
    heads = [plan.head for plan in leaf_plans]
    group_plans = plan_clusters(
        topology, source, heads, cluster_size, estimator=estimator
    )
    return HierarchyPlan(
        levels=3, leaf_plans=tuple(leaf_plans), group_plans=tuple(group_plans)
    )


def promotion_candidate(
    topology: Topology,
    interiors: Sequence[int],
    estimator=None,
    source: Optional[int] = None,
) -> int:
    """Which live interior inherits a failed head: same rule as election."""
    return elect_head(topology, interiors, estimator=estimator, source=source)


def nearest_head(
    topology: Topology,
    heads: Sequence[int],
    node: int,
    estimator=None,
) -> int:
    """The head closest to ``node`` by round-trip time.

    Ties break on the smaller head id.  This is the join rule: a mid-run
    arrival lands in the cluster whose head it can fetch from cheapest.
    With an estimator the RTTs are estimated from landmark coordinates;
    otherwise each pair resolves through the underlay exactly as before.
    """
    if not heads:
        raise ValueError("no live cluster heads to join")
    scored: List[Tuple[float, int]] = []
    if estimator is not None:
        for head in heads:
            scored.append((estimator.estimate_rtt(head, node), head))
        return min(scored)[1]
    for head in heads:
        rtt, _loss = topology.round_trip(head, node)
        scored.append((rtt, head))
    return min(scored)[1]
