"""The intra-cluster dissemination model: counts, not packets.

A cluster interior does not run Bullet.  It hangs off its head in a balanced
fanout tree and each edge forwards whatever distinct packets the parent has
that the child lacks, capped by the child's access bandwidth and thinned by
the child's access-link loss.  Modelling this per packet would erase the
scale win, so an :class:`InteriorCluster` tracks one integer per member —
how many distinct stream packets it holds — and steps all edges with a
deterministic fractional-carry update:

* capacity carry: ``cap_carry += cap_per_step; grant = floor(cap_carry)``
  accumulates fractional packets-per-step without drift or RNG;
* loss carry: ``loss_carry += taken * loss_rate; lost = floor(loss_carry)``
  applies the expected loss deterministically, so serial and sharded runs
  (and both steppers below) are byte-identical.

Two steppers share this state.  :meth:`step` is the scalar reference: plain
Python, one edge at a time, run every simulation step by the serial mode.
:meth:`step_batch` is the sharded mode's stepper: it replays a whole barrier
window of head deltas with numpy-vectorized per-level updates.  Both perform
the *same* IEEE-754 float64 operations in the same per-edge order (edges
within a tree level are independent), so their counts match exactly — the
equivalence suite asserts it and the determinism matrix byte-diffs it.

No randomness, no wall clock, no set iteration: every structure is a list or
an int-keyed dict mutated deterministically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class InteriorCluster:
    """One cluster's interior state: membership tree, counts and carries.

    ``head`` is the cluster root; its count is advanced externally (the head
    receives through the Bullet mesh).  ``interiors`` receive through the
    cluster tree.  ``caps_kbps`` / ``loss_rates`` map every member to its
    access-link capacity and loss; ``rate_kbps`` is the stream rate (an edge
    never needs to move faster than the stream), ``dt`` the step size and
    ``packet_kbits`` the packet size the counts are denominated in.
    """

    def __init__(
        self,
        head: int,
        interiors: Sequence[int],
        caps_kbps: Dict[int, float],
        loss_rates: Dict[int, float],
        rate_kbps: float,
        dt: float,
        packet_kbits: float,
        fanout: int = 4,
    ) -> None:
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.head = head
        self.fanout = fanout
        self._rate_kbps = rate_kbps
        self._dt = dt
        self._packet_kbits = packet_kbits
        #: Member order: head first, then interiors in construction order.
        self.members: List[int] = [head, *interiors]
        if len(dict.fromkeys(self.members)) != len(self.members):
            raise ValueError("cluster members must be unique")
        #: Distinct packets held, per member (parallel to ``members``).
        self.counts: List[int] = [0] * len(self.members)
        #: Members that have failed (frozen counts, no edges).
        self.failed: List[bool] = [False] * len(self.members)
        #: Packets delivered since the last window flush, per member.
        self.window: List[int] = [0] * len(self.members)
        self._index: Dict[int, int] = {
            node: position for position, node in enumerate(self.members)
        }
        self._caps_by_node: Dict[int, float] = {
            node: float(caps_kbps.get(node, rate_kbps)) for node in self.members
        }
        self._loss_by_node: Dict[int, float] = {
            node: float(loss_rates.get(node, 0.0)) for node in self.members
        }
        self._cap_step: List[float] = [
            self._edge_cap_per_step(self._caps_by_node[node]) for node in self.members
        ]
        self._loss_rate: List[float] = [
            self._loss_by_node[node] for node in self.members
        ]
        self._cap_carry: List[float] = [0.0] * len(self.members)
        self._loss_carry: List[float] = [0.0] * len(self.members)
        #: parent index per member; -1 = cluster root, -2 = detached (failed).
        self._parent: List[int] = [-1] * len(self.members)
        self._rebuild_tree(self.members[0], self.members[1:])
        #: Cached numpy views per level, rebuilt after membership changes.
        self._level_arrays: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None

    # ------------------------------------------------------------- structure
    def _edge_cap_per_step(self, cap_kbps: float) -> float:
        """Fractional packets per step an edge into this member can carry."""
        rate = min(self._rate_kbps, cap_kbps)
        return rate * self._dt / self._packet_kbits

    def _rebuild_tree(self, root: int, interiors: Sequence[int]) -> None:
        """(Re)hang ``interiors`` under ``root`` as a balanced fanout tree.

        Breadth-first attachment in the given order: deterministic minimum
        height, no RNG.  Detached members (failed) keep parent -2.
        """
        root_idx = self._index[root]
        self._parent[root_idx] = -1
        frontier: List[int] = [root_idx]
        child_counts: Dict[int, int] = {root_idx: 0}
        position = 0
        for node in interiors:
            idx = self._index[node]
            while child_counts[frontier[position]] >= self.fanout:
                position += 1
            parent_idx = frontier[position]
            self._parent[idx] = parent_idx
            child_counts[parent_idx] += 1
            child_counts[idx] = 0
            frontier.append(idx)
        self._rebuild_levels()

    def _rebuild_levels(self) -> None:
        """Group live non-root members by tree depth (parents before children)."""
        depth: Dict[int, int] = {}
        root_idx = self._index[self.members[0]] if self.members else -1
        # Heads may be replaced by promote(); find the current root instead.
        for idx, parent in enumerate(self._parent):
            if parent == -1:
                root_idx = idx
        depth[root_idx] = 0
        levels: List[List[int]] = []
        changed = True
        while changed:
            changed = False
            for idx, parent in enumerate(self._parent):
                if idx in depth or parent < 0:
                    continue
                if parent in depth:
                    d = depth[parent] + 1
                    depth[idx] = d
                    while len(levels) < d:
                        levels.append([])
                    levels[d - 1].append(idx)
                    changed = True
        self._levels: List[List[int]] = [sorted(level) for level in levels]
        self._level_arrays = None

    @property
    def root(self) -> int:
        """The current cluster root (the head, post-promotion aware)."""
        for idx, parent in enumerate(self._parent):
            if parent == -1:
                return self.members[idx]
        raise ValueError("cluster has no root")

    def live_interiors(self) -> List[int]:
        """Live members other than the root, in member order."""
        root = self.root
        return [
            node
            for position, node in enumerate(self.members)
            if not self.failed[position] and node != root
        ]

    def count_of(self, node: int) -> int:
        """Distinct packets ``node`` holds."""
        return self.counts[self._index[node]]

    def subtree_size(self, node: int) -> int:
        """How many live members depend on ``node`` (itself included)."""
        idx = self._index[node]
        if self.failed[idx]:
            return 0
        children: Dict[int, List[int]] = {}
        for position, parent in enumerate(self._parent):
            if parent >= 0 and not self.failed[position]:
                children.setdefault(parent, []).append(position)
        total = 0
        stack = [idx]
        while stack:
            current = stack.pop()
            total += 1
            stack.extend(children.get(current, ()))
        return total

    # -------------------------------------------------------------- stepping
    def step(self, head_delta: int) -> None:
        """Scalar reference step: advance the root, then every level's edges.

        This is the serial mode's stepper.  The arithmetic per edge — carry
        add, floor, min, loss multiply-accumulate, floor — is exactly the
        elementwise sequence :meth:`step_batch` runs over level arrays, so
        the two produce bit-identical counts.
        """
        if head_delta < 0:
            raise ValueError("head_delta must be non-negative")
        counts = self.counts
        root_idx = self._index[self.root]
        counts[root_idx] += head_delta
        for level in self._levels:
            for idx in level:
                parent = self._parent[idx]
                avail = counts[parent] - counts[idx]
                capf = self._cap_carry[idx] + self._cap_step[idx]
                grant = math.floor(capf)
                self._cap_carry[idx] = capf - grant
                taken = avail if avail < grant else grant
                if taken < 0:
                    taken = 0
                lossf = self._loss_carry[idx] + taken * self._loss_rate[idx]
                lost = math.floor(lossf)
                self._loss_carry[idx] = lossf - lost
                delivered = taken - lost
                if delivered < 0:
                    delivered = 0
                counts[idx] += delivered
                self.window[idx] += delivered

    def step_batch(self, head_deltas: Sequence[int]) -> None:
        """Vectorized window replay: the sharded mode's stepper.

        Each step still runs level by level (a child reads its parent's
        post-update count), but all edges within a level update as numpy
        float64/int64 array operations — elementwise identical to
        :meth:`step`, orders of magnitude fewer interpreter dispatches.
        """
        if not head_deltas:
            return
        if self._level_arrays is None:
            self._level_arrays = [
                (
                    np.array(level, dtype=np.int64),
                    np.array([self._parent[idx] for idx in level], dtype=np.int64),
                )
                for level in self._levels
            ]
        counts = np.array(self.counts, dtype=np.int64)
        window = np.array(self.window, dtype=np.int64)
        cap_step = np.array(self._cap_step, dtype=np.float64)
        cap_carry = np.array(self._cap_carry, dtype=np.float64)
        loss_rate = np.array(self._loss_rate, dtype=np.float64)
        loss_carry = np.array(self._loss_carry, dtype=np.float64)
        root_idx = self._index[self.root]
        zero = np.int64(0)
        for head_delta in head_deltas:
            if head_delta < 0:
                raise ValueError("head_delta must be non-negative")
            counts[root_idx] += head_delta
            for idx, parent in self._level_arrays:
                avail = counts[parent] - counts[idx]
                capf = cap_carry[idx] + cap_step[idx]
                grant = np.floor(capf)
                cap_carry[idx] = capf - grant
                taken = np.minimum(avail, grant.astype(np.int64))
                taken = np.maximum(taken, zero)
                lossf = loss_carry[idx] + taken * loss_rate[idx]
                lost = np.floor(lossf)
                loss_carry[idx] = lossf - lost
                delivered = np.maximum(taken - lost.astype(np.int64), zero)
                counts[idx] += delivered
                window[idx] += delivered
        self.counts = [int(value) for value in counts]
        self.window = [int(value) for value in window]
        self._cap_carry = [float(value) for value in cap_carry]
        self._loss_carry = [float(value) for value in loss_carry]

    def take_window(self) -> List[Tuple[int, int]]:
        """Drain (node, packets delivered since last flush) in member order."""
        report: List[Tuple[int, int]] = []
        for position, node in enumerate(self.members):
            delivered = self.window[position]
            if delivered:
                report.append((node, delivered))
                self.window[position] = 0
        return report

    # ------------------------------------------------------------ membership
    def fail_interior(self, node: int) -> None:
        """Fail one interior: it stops receiving; its subtree is left hanging.

        Mirrors the paper's unrepaired-tree assumption inside clusters: the
        failed member's descendants drain whatever it already held, then
        starve until churn repair (promotion handles the head case).
        """
        idx = self._index[node]
        if self.failed[idx]:
            raise ValueError(f"node {node} already failed")
        if self._parent[idx] == -1:
            raise ValueError("use promote() for the cluster root")
        self.failed[idx] = True
        self._parent[idx] = -2
        self._rebuild_levels()

    def promote(self, new_head: int) -> None:
        """Re-root the cluster at ``new_head`` after its head failed.

        The old head is dropped from membership (frozen, no longer a
        receiver) and the remaining live members are re-hung under the new
        head as a fresh balanced tree, keeping their counts (what a node
        holds survives its parent change) and resetting the fractional
        carries to zero — all deterministic, so serial and sharded runs
        promote identically.
        """
        old_root = self.root
        if new_head == old_root:
            raise ValueError("new head must differ from the failed head")
        new_idx = self._index[new_head]
        if self.failed[new_idx]:
            raise ValueError(f"cannot promote failed node {new_head}")
        survivors = [
            node
            for position, node in enumerate(self.members)
            if not self.failed[position] and node not in (old_root, new_head)
        ]
        keep = [new_head, *survivors]
        old_counts = {node: self.counts[self._index[node]] for node in keep}
        self.members = keep
        self._index = {node: position for position, node in enumerate(keep)}
        self.counts = [old_counts[node] for node in keep]
        self.failed = [False] * len(keep)
        self.window = [0] * len(keep)
        self._cap_step = [
            self._edge_cap_per_step(self._caps_by_node[node]) for node in keep
        ]
        self._loss_rate = [self._loss_by_node[node] for node in keep]
        self._cap_carry = [0.0] * len(keep)
        self._loss_carry = [0.0] * len(keep)
        self._parent = [-1] * len(keep)
        self.head = new_head
        self._rebuild_tree(new_head, survivors)

    def add_interior(self, node: int, cap_kbps: float, loss_rate: float) -> int:
        """Join ``node`` under the live member with spare fanout budget.

        The joiner's count is primed at its parent's current count: it
        starts receiving the live stream rather than replaying history (the
        mesh-level equivalent is the working-set priming in ``add_node``).
        Returns the chosen parent node.
        """
        if node in self._index:
            raise ValueError(f"node {node} is already a cluster member")
        parent_idx = self._choose_join_parent()
        self.members.append(node)
        idx = len(self.members) - 1
        self._index[node] = idx
        self.counts.append(self.counts[parent_idx])
        self.failed.append(False)
        self.window.append(0)
        self._cap_step.append(self._edge_cap_per_step(cap_kbps))
        self._loss_rate.append(float(loss_rate))
        self._cap_carry.append(0.0)
        self._loss_carry.append(0.0)
        self._parent.append(parent_idx)
        self._caps_by_node[node] = float(cap_kbps)
        self._loss_by_node[node] = float(loss_rate)
        self._rebuild_levels()
        return self.members[parent_idx]

    # ------------------------------------------------------- shard interface
    def export_state(self) -> Dict[str, List]:
        """Snapshot the mutable per-member state (for fused shard stepping)."""
        return {
            "counts": list(self.counts),
            "window": list(self.window),
            "cap_step": list(self._cap_step),
            "cap_carry": list(self._cap_carry),
            "loss_rate": list(self._loss_rate),
            "loss_carry": list(self._loss_carry),
        }

    def import_state(self, state: Dict[str, List]) -> None:
        """Write a shard's fused state back into this cluster."""
        self.counts = [int(value) for value in state["counts"]]
        self.window = [int(value) for value in state["window"]]
        self._cap_carry = [float(value) for value in state["cap_carry"]]
        self._loss_carry = [float(value) for value in state["loss_carry"]]

    def edge_levels(self) -> List[List[Tuple[int, int]]]:
        """Per-depth (member position, parent position) pairs, live edges only."""
        return [
            [(idx, self._parent[idx]) for idx in level] for level in self._levels
        ]

    def _choose_join_parent(self) -> int:
        """Live member with the fewest children, shallowest, lowest id."""
        children_count: Dict[int, int] = {}
        depth: Dict[int, int] = {}
        for idx, parent in enumerate(self._parent):
            if parent == -1:
                depth[idx] = 0
        # Levels are parents-before-children, so one pass resolves depths.
        for level in self._levels:
            for idx in level:
                depth[idx] = depth[self._parent[idx]] + 1
                children_count[self._parent[idx]] = (
                    children_count.get(self._parent[idx], 0) + 1
                )
        candidates = [
            idx
            for idx in range(len(self.members))
            if not self.failed[idx] and self._parent[idx] != -2
        ]
        if not candidates:
            raise ValueError("cluster has no live member to join under")
        return min(
            candidates,
            key=lambda idx: (
                children_count.get(idx, 0),
                depth.get(idx, 0),
                self.members[idx],
            ),
        )


class ClusterShard:
    """Fused vectorized stepping for one worker's set of clusters.

    Per-cluster :meth:`InteriorCluster.step_batch` pays numpy dispatch
    overhead per cluster per level — ruinous when clusters are ~100 members
    and levels are a few dozen edges.  A shard fuses all owned clusters into
    dense per-depth arrays, so each simulation step runs one elementwise op
    sequence per tree depth regardless of how many clusters the worker owns:

    * a level's children are stored densely (counts, windows, carries and
      the static per-edge parameters each occupy one contiguous array), so
      the hot loop's only gather is each child's parent count, read from
      the level above's dense array;
    * everything is float64.  All quantities are exact small integers (or
      fractional carries in [0, 1)), far below 2**53, so float64 holds them
      exactly and comparisons, ``floor`` and add/subtract reproduce the
      scalar stepper's integer arithmetic bit for bit — without the
      int64/float64 ``astype`` round trips per level per step.

    Values are bit-identical to the scalar stepper: edges within a level
    never alias (each child has one parent, one level up), so grouping
    changes the array shapes, never the IEEE-754 operations an edge sees.

    The member :class:`InteriorCluster` objects stay authoritative for
    *structure*; their mutable state is exported into the fused arrays at
    construction and written back around membership mutations (which then
    trigger a rebuild).  Mutations are barrier-only, so this is rare.
    """

    def __init__(self, clusters: Dict[int, InteriorCluster]) -> None:
        self._clusters: Dict[int, InteriorCluster] = dict(clusters)
        self._order: List[int] = sorted(clusters)
        self._rebuild()

    def _rebuild(self) -> None:
        counts: List[int] = []
        window: List[int] = []
        cap_step: List[float] = []
        cap_carry: List[float] = []
        loss_rate: List[float] = []
        loss_carry: List[float] = []
        root_globals: List[int] = []
        #: depth -> list of (global child index, global parent index).
        edge_levels: List[List[Tuple[int, int]]] = []
        self._offsets: Dict[int, int] = {}
        for cluster_index in self._order:
            cluster = self._clusters[cluster_index]
            offset = len(counts)
            self._offsets[cluster_index] = offset
            state = cluster.export_state()
            counts.extend(state["counts"])
            window.extend(state["window"])
            cap_step.extend(state["cap_step"])
            cap_carry.extend(state["cap_carry"])
            loss_rate.extend(state["loss_rate"])
            loss_carry.extend(state["loss_carry"])
            root_globals.append(offset + cluster._index[cluster.root])
            for depth, edges in enumerate(cluster.edge_levels()):
                while len(edge_levels) <= depth:
                    edge_levels.append([])
                edge_levels[depth].extend(
                    (offset + idx, offset + parent) for idx, parent in edges
                )
        # Authoritative at-rest state, global member order (float64: exact
        # for the integer counts/windows, native for the carries).
        self._counts = np.array(counts, dtype=np.float64)
        self._window = np.array(window, dtype=np.float64)
        self._cap_step_all = np.array(cap_step, dtype=np.float64)
        self._cap_carry_all = np.array(cap_carry, dtype=np.float64)
        self._loss_rate_all = np.array(loss_rate, dtype=np.float64)
        self._loss_carry_all = np.array(loss_carry, dtype=np.float64)
        # Dense stepping state.  Position of every stepped member: depth 0
        # is the root array, depth d >= 1 holds level d's children.
        position_of: Dict[int, Tuple[int, int]] = {
            g: (0, slot) for slot, g in enumerate(root_globals)
        }
        self._root_globals = np.array(root_globals, dtype=np.int64)
        self._root_counts = self._counts[self._root_globals]
        self._levels: List[Tuple[np.ndarray, int, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray]] = []
        for depth, edges in enumerate(edge_levels, start=1):
            if not edges:
                continue
            child = np.array([edge[0] for edge in edges], dtype=np.int64)
            parent_level_set = {position_of[edge[1]][0] for edge in edges}
            if parent_level_set != {depth - 1}:  # pragma: no cover - invariant
                raise AssertionError("level parents must sit one level up")
            parent_pos = np.array(
                [position_of[edge[1]][1] for edge in edges], dtype=np.int64
            )
            for slot, g in enumerate(child.tolist()):
                position_of[g] = (depth, slot)
            self._levels.append(
                (
                    child,
                    parent_pos,
                    self._counts[child],
                    self._window[child],
                    self._cap_step_all[child],
                    self._cap_carry_all[child],
                    self._loss_rate_all[child],
                    self._loss_carry_all[child],
                )
            )

    def step_window(self, deltas_by_cluster: Dict[int, Sequence[int]]) -> None:
        """Replay a barrier window of per-cluster head deltas, fused."""
        if not deltas_by_cluster:
            return
        window_lengths = {len(deltas) for deltas in deltas_by_cluster.values()}
        if len(window_lengths) != 1:
            raise ValueError("all clusters must share the barrier window length")
        steps = window_lengths.pop()
        if steps == 0:
            return
        matrix = np.ascontiguousarray(
            np.array(
                [deltas_by_cluster[index] for index in self._order],
                dtype=np.float64,
            ).T
        )
        if (matrix < 0).any():
            raise ValueError("head deltas must be non-negative")
        levels = self._levels
        root_counts = self._root_counts
        parent_counts = [root_counts] + [level[2] for level in levels[:-1]]
        for step in range(steps):
            root_counts += matrix[step]
            for above, level in zip(parent_counts, levels):
                (_, parent_pos, counts, window,
                 cap_step, cap_carry, loss_rate, loss_carry) = level
                avail = above[parent_pos] - counts
                capf = cap_carry + cap_step
                grant = np.floor(capf)
                np.subtract(capf, grant, out=cap_carry)
                taken = np.minimum(avail, grant)
                taken = np.maximum(taken, 0.0)
                lossf = loss_carry + taken * loss_rate
                lost = np.floor(lossf)
                np.subtract(lossf, lost, out=loss_carry)
                delivered = np.maximum(taken - lost, 0.0)
                counts += delivered
                window += delivered

    def _fold_dense(self) -> None:
        """Scatter the dense stepping state back into the global arrays."""
        self._counts[self._root_globals] = self._root_counts
        for (child, _, counts, window,
             _, cap_carry, _, loss_carry) in self._levels:
            self._counts[child] = counts
            self._window[child] = window
            self._cap_carry_all[child] = cap_carry
            self._loss_carry_all[child] = loss_carry

    def take_windows(self) -> Dict[int, List[Tuple[int, int]]]:
        """Drain per-cluster delivery windows, keyed by cluster index."""
        for (child, _, _, window, _, _, _, _) in self._levels:
            self._window[child] = window
            window[:] = 0.0
        reports: Dict[int, List[Tuple[int, int]]] = {}
        for cluster_index in self._order:
            cluster = self._clusters[cluster_index]
            offset = self._offsets[cluster_index]
            segment = self._window[offset : offset + len(cluster.members)]
            positions = np.nonzero(segment)[0]
            reports[cluster_index] = [
                (cluster.members[position], int(segment[position]))
                for position in positions.tolist()
            ]
            segment[positions] = 0.0
        return reports

    def _sync_back(self) -> None:
        """Write the fused state back into the member clusters."""
        self._fold_dense()
        for cluster_index in self._order:
            cluster = self._clusters[cluster_index]
            offset = self._offsets[cluster_index]
            end = offset + len(cluster.members)
            cluster.import_state(
                {
                    "counts": self._counts[offset:end],
                    "window": self._window[offset:end],
                    "cap_carry": self._cap_carry_all[offset:end],
                    "loss_carry": self._loss_carry_all[offset:end],
                }
            )

    def fail_interior(self, cluster_index: int, node: int) -> None:
        self._sync_back()
        self._clusters[cluster_index].fail_interior(node)
        self._rebuild()

    def promote(self, cluster_index: int, new_head: int) -> None:
        self._sync_back()
        self._clusters[cluster_index].promote(new_head)
        self._rebuild()

    def add_interior(
        self, cluster_index: int, node: int, cap_kbps: float, loss_rate: float
    ) -> int:
        self._sync_back()
        parent = self._clusters[cluster_index].add_interior(node, cap_kbps, loss_rate)
        self._rebuild()
        return parent
