"""Shard-owned head meshes: Bullet protocol state stepped inside shard workers.

At 100k nodes the interior trees shard cleanly, but the head mesh itself —
hundreds of full Bullet nodes with RanSub, peering and recovery state — still
runs serially on the main process and dominates the step.  This module moves
the *nodes* into the shard workers while keeping every shared, order-sensitive
resource on the main process, so a sharded run stays byte-identical to the
serial reference:

* **Workers** (:class:`HeadHost`) own their heads' :class:`BulletNode` objects
  outright: working sets, RanSub state machines, peer managers and recovery
  queues all live and mutate worker-side.  Nodes are partitioned by cluster
  (``cluster index % workers``), the same round-robin rule the interior
  executor uses, so a head co-locates with its own cluster's shard.
* **Main** (:class:`HeadMeshCoordinator`) keeps everything whose *order*
  defines the deterministic run: the control channel (its loss RNG draws in
  global send order), the simulated flows (integer send budgets, delivery
  queues), the stats collector, the protocol timers and the step engine.  Each
  protocol phase becomes a barrier exchange of typed deltas — packet
  deliveries out, control messages and flow-call records back.

Byte-identity rests on a few load-bearing facts, each checked by the
equivalence suite and the CI determinism matrix:

* node handlers only read/write their own node's state and *append* messages
  to their own outbox, so batching a pump's deliveries and dispatching them
  after the pump is indistinguishable from serial's dispatch-during-pump;
* the shared RanSub RNG derives child streams purely from labels
  (``SeededRng.child`` is stateless), so forked copies draw identical values;
* flow budgets are integers consumed one ``try_send`` at a time, so a worker
  can predict accept/reject from a shipped ``(budget, active)`` pair and the
  main process replays exactly the accepted sends;
* outboxes drain into a per-node pending buffer flushed in ascending node
  order — the same order serial's ``_flush_outboxes`` walks active members.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.bullet_node import BulletNode
from repro.network.control import ControlMessage

#: One shipped packet delivery: (dst, sequence, src, via_peer).
DeliveryEntry = Tuple[int, int, int, bool]

#: One recorded control-plane service call: (order key, seq, op, sender,
#: receiver).  Sorting by (key, seq) recovers serial's global call order.
ServiceCall = Tuple[int, int, str, int, int]


class _RecordingServices:
    """A ``ControlPlaneServices`` facade that records flow calls for replay.

    Node handlers run worker-side but mesh data flows live on the main
    process; open/close calls are recorded with an order key (the handling
    node for timer work, the message's pump index for dispatch work) and a
    monotone sequence so the coordinator can replay them in serial's exact
    global order.  ``peer_exclusions`` is answered locally from the worker's
    failed-set replica — it is a pure read.
    """

    __slots__ = ("_host", "key", "calls")

    def __init__(self, host: "HeadHost") -> None:
        self._host = host
        self.key: int = 0
        self.calls: List[ServiceCall] = []

    def open_mesh_flow(self, sender: int, receiver: int) -> None:
        self.calls.append((self.key, len(self.calls), "open", sender, receiver))

    def close_mesh_flow(self, sender: int, receiver: int) -> None:
        self.calls.append((self.key, len(self.calls), "close", sender, receiver))

    def peer_exclusions(self, node: int) -> Set[int]:
        return self._host.exclusions()


class HeadHost:
    """Worker-side owner of a subset of the head mesh's Bullet nodes.

    Constructed on the main process *before* the shard workers fork, so the
    worker inherits the pristine node objects by memory; from then on the
    worker's copies are authoritative and the main process's become stale
    structural mirrors.  Every command handler leaves the owned outboxes
    drained — queued control messages always travel back in the reply.
    """

    def __init__(
        self,
        nodes: Dict[int, BulletNode],
        config,
        root: int,
        ransub_rng,
        estimator=None,
    ) -> None:
        self.nodes: Dict[int, BulletNode] = dict(nodes)
        self.config = config
        self.root = root
        self.ransub_rng = ransub_rng
        self.estimator = estimator
        #: Replica of the mesh's failed set, maintained by ``mesh_fail``.
        self.failed: Set[int] = set()

    # ------------------------------------------------------------- plumbing
    def exclusions(self) -> Set[int]:
        """Peer exclusions, mirroring ``BulletMesh.peer_exclusions``."""
        excluded = set(self.failed)
        if not self.config.source_serves_peers:
            excluded.add(self.root)
        return excluded

    def _active(self) -> List[int]:
        return [node for node in sorted(self.nodes) if node not in self.failed]

    def _drain(self, node_ids) -> Dict[int, List[ControlMessage]]:
        outboxes: Dict[int, List[ControlMessage]] = {}
        for node_id in node_ids:
            node = self.nodes.get(node_id)
            if node is None:
                continue
            messages = node.take_outbox()
            if messages:
                outboxes[node_id] = messages
        return outboxes

    # ------------------------------------------------------------- commands
    def handle(self, command: Tuple) -> Dict:
        """Execute one ``mesh_*`` command tuple; returns the reply dict."""
        kind = command[0]
        if kind == "mesh_deliver":
            return self._deliver(command[1])
        if kind == "mesh_timers":
            return self._timers(command[1], command[2], command[3])
        if kind == "mesh_poll":
            return self._poll(command[1], command[2])
        if kind == "mesh_dispatch":
            return self._dispatch(command[1], command[2])
        if kind == "mesh_data":
            return self._data(command[1], command[2], command[3], command[4])
        if kind == "mesh_fail":
            return self._fail(command[1])
        if kind == "mesh_add":
            return self._add(command[1], command[2], command[3])
        if kind == "mesh_add_child":
            self.nodes[command[1]].add_child(command[2])
            return {"ok": True}
        raise ValueError(f"unknown head-mesh command {kind!r}")

    def _deliver(self, entries: List[DeliveryEntry]) -> Dict:
        """Apply shipped packet deliveries; reply with per-packet duplicate flags."""
        outcomes: List[bool] = []
        for dst, sequence, src, via_peer in entries:
            outcome = self.nodes[dst].on_packet(sequence, from_node=src, via_peer=via_peer)
            outcomes.append(outcome.duplicate)
        return {"outcomes": outcomes}

    def _timers(self, now: float, epoch, refresh: List[int]) -> Dict:
        """Epoch begin / peer evaluation / refreshes / request-expiry polls.

        The main process fired the actual timers and ships only the node
        effects: ``epoch`` is ``None`` or ``(epoch_no, timeout_s, evaluate)``,
        ``refresh`` the owned members whose Bloom-refresh timers fired (in
        ascending order).  The reply's ``ransub_due`` probe lets the
        coordinator skip the deepest-first poll cascade on the steps where no
        RanSub deadline is due anywhere.
        """
        recorder = _RecordingServices(self)
        active = self._active()
        if epoch is not None:
            epoch_no, timeout_s, evaluate = epoch
            for node_id in active:
                self.nodes[node_id].begin_ransub_epoch(epoch_no, now, timeout_s)
            if evaluate:
                for node_id in active:
                    recorder.key = node_id
                    self.nodes[node_id].evaluate_peers(recorder, epoch_no)
        for node_id in refresh:
            self.nodes[node_id].send_recovery_refreshes()
        for node_id in active:
            self.nodes[node_id].poll_pending_requests(now)
        ransub_due = any(self.nodes[node_id].ransub_due(now) for node_id in active)
        return {
            "calls": recorder.calls,
            "outboxes": self._drain(active),
            "ransub_due": ransub_due,
        }

    def _poll(self, now: float, node_ids: List[int]) -> Dict:
        """One depth level of the RanSub deadline cascade."""
        fired = False
        for node_id in node_ids:
            fired = self.nodes[node_id].poll_ransub(now) or fired
        return {"fired": fired, "outboxes": self._drain(node_ids)}

    def _dispatch(self, now: float, tagged: List[Tuple[int, ControlMessage]]) -> Dict:
        """Dispatch pumped control messages to their owned destination nodes."""
        recorder = _RecordingServices(self)
        touched: Set[int] = set()
        for gidx, message in tagged:
            node = self.nodes.get(message.dst)
            if node is None or node.failed:
                continue
            recorder.key = gidx
            node.handle_control(message, recorder, now)
            touched.add(message.dst)
        return {"calls": recorder.calls, "outboxes": self._drain(sorted(touched))}

    def _data(
        self,
        source_seqs: List[int],
        tree_ba: Dict[Tuple[int, int], Tuple[int, bool]],
        mesh_ba: Dict[Tuple[int, int], Tuple[int, bool]],
        _now: float,
    ) -> Dict:
        """Source injection, disjoint tree forwarding and peer serving.

        ``tree_ba``/``mesh_ba`` carry each relevant flow's raw integer send
        budget and active flag; the worker mimics ``Flow.try_send`` against
        them (accept while active and budget remains) and reports the
        accepted sequences for the coordinator to replay on the real flows.
        """
        if source_seqs:
            root_node = self.nodes[self.root]
            for sequence in source_seqs:
                root_node.on_packet(sequence, from_node=None, via_peer=False)

        tree_rem = {key: budget for key, (budget, _active) in tree_ba.items()}
        fresh_len: Dict[int, int] = {}
        tree_accepts: Dict[Tuple[int, int], List[int]] = {}
        for node_id in self._active():
            node = self.nodes[node_id]
            fresh = node.take_newly_received()
            fresh_len[node_id] = len(fresh)
            if not fresh:
                continue
            for record in node.peers.receivers.values():
                for sequence in fresh:
                    record.queue.offer_new_packet(sequence)
            if not node.disjoint.children:
                continue

            def try_send(child: int, sequence: int, _parent: int = node_id) -> bool:
                if child in self.failed:
                    return False
                key = (_parent, child)
                entry = tree_ba.get(key)
                if entry is None:
                    return False
                if not entry[1] or tree_rem[key] <= 0:
                    return False
                tree_rem[key] -= 1
                tree_accepts.setdefault(key, []).append(sequence)
                return True

            node.disjoint.send_batch(fresh, try_send)

        mesh_accepts: Dict[Tuple[int, int], List[int]] = {}
        serve_sent: Dict[Tuple[int, int], int] = {}
        for node_id in self._active():
            node = self.nodes[node_id]
            for receiver_id, record in list(node.peers.receivers.items()):
                if receiver_id in self.failed:
                    continue
                key = (node_id, receiver_id)
                entry = mesh_ba.get(key)
                if entry is None:
                    continue
                budget, active = entry
                if budget <= 0:
                    continue
                batch = record.queue.take_for_send(budget)
                remaining = budget
                sent = 0
                for sequence in batch:
                    if active and remaining > 0:
                        remaining -= 1
                        mesh_accepts.setdefault(key, []).append(sequence)
                        record.period_sent += 1
                        sent += 1
                if sent:
                    serve_sent[key] = sent

        pending: Dict[Tuple[int, int], int] = {}
        for key in mesh_ba:
            sender, receiver = key
            node = self.nodes.get(sender)
            record = node.peers.receivers.get(receiver) if node is not None else None
            pending[key] = record.queue.pending_count() if record is not None else 0
        return {
            "fresh": fresh_len,
            "tree": tree_accepts,
            "mesh": mesh_accepts,
            "serve_sent": serve_sent,
            "pending": pending,
        }

    def _fail(self, node_id: int) -> Dict:
        """Replicate a mesh failure: every worker tracks it, the owner mutes it."""
        self.failed.add(node_id)
        node = self.nodes.get(node_id)
        if node is not None:
            node.failed = True
            node.outbox.clear()
            node.pending_requests.clear()
        return {"ok": True}

    def _add(self, node_id: int, parent: int, prune_head: int) -> Dict:
        """Construct a newly joined head (promotion) on its owning worker."""
        node = BulletNode(
            node=node_id,
            config=self.config,
            children=(),
            parent=parent,
            is_root=False,
            ransub_rng=self.ransub_rng,
        )
        if prune_head > 0:
            node.working_set.prune_below(prune_head)
        node.refresh_ticket()
        node.peers.latency_estimator = self.estimator
        self.nodes[node_id] = node
        return {"ok": True}


class HeadMeshCoordinator:
    """Main-side barrier coordinator for a shard-owned head mesh.

    Wraps a :class:`~repro.core.mesh.BulletMesh` whose nodes have been handed
    to :class:`HeadHost` workers.  The mesh object itself stays the system of
    record for everything order-sensitive — channel, flows, timers, failed
    set, tree, stats, phase timings, source sequence counter — and this
    coordinator re-implements ``protocol_phase`` as a sequence of scatter /
    gather exchanges that replays serial's side effects in serial's order.
    """

    def __init__(
        self,
        mesh,
        executor,
        owner_of: Dict[int, int],
        owner_for: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.mesh = mesh
        self.executor = executor
        #: mesh member -> worker index.
        self.owner_of: Dict[int, int] = dict(owner_of)
        self._owner_for = owner_for
        #: Control messages drained from workers, awaiting a channel flush;
        #: flushed in ascending node order, matching serial's outbox walk.
        self._pending_out: Dict[int, List[ControlMessage]] = {}

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One full protocol pass, phase-for-phase parallel to serial's."""
        clock = time.perf_counter  # det: ok(phase timing accounting only; never feeds simulated state)
        t0 = clock()
        mesh = self.mesh
        mesh._sent_this_step = {}
        self._deliver_phase()
        t1 = clock()
        if self._timers_phase(now):
            self._poll_cascade(now)
        t2 = clock()
        self._control_phase(now)
        t3 = clock()
        self._data_phase(now)
        t4 = clock()
        phases = mesh.phase_seconds
        phases["deliver"] += t1 - t0
        phases["timers"] += t2 - t1
        phases["control"] += t3 - t2
        phases["data_out"] += t4 - t3

    # --------------------------------------------------------------- delivery
    def _deliver_phase(self) -> None:
        mesh = self.mesh
        entries: List[DeliveryEntry] = []
        for (parent, child), flow in list(mesh.tree_flows.items()):
            delivered = flow.take_delivered()
            if child in mesh.failed:
                continue
            for sequence in delivered:
                entries.append((child, sequence, parent, False))
        for (sender, receiver), flow in list(mesh.mesh_flows.items()):
            delivered = flow.take_delivered()
            if receiver in mesh.failed:
                continue
            for sequence in delivered:
                entries.append((receiver, sequence, sender, True))
        if not entries:
            return
        per_worker: Dict[int, List[DeliveryEntry]] = {}
        for entry in entries:
            per_worker.setdefault(self.owner_of[entry[0]], []).append(entry)
        replies = self.executor.mesh_scatter(
            {worker: ("mesh_deliver", batch) for worker, batch in per_worker.items()}
        )
        cursors = {worker: iter(replies[worker]["outcomes"]) for worker in replies}
        for dst, sequence, _src, via_peer in entries:
            duplicate = next(cursors[self.owner_of[dst]])
            mesh.stats.record_receive(
                dst, sequence, duplicate=duplicate, from_parent=not via_peer
            )

    # ----------------------------------------------------------------- timers
    def _begin_epoch_payload(self) -> Tuple[int, Optional[float], bool]:
        mesh = self.mesh
        mesh._epoch_count += 1
        evaluate = mesh._epoch_count % mesh.config.eviction_period_epochs == 0
        return (mesh._epoch_count, mesh.config.effective_collect_timeout_s, evaluate)

    def _timers_phase(self, now: float) -> bool:
        """Fire timers main-side, ship node effects; returns the RanSub probe."""
        mesh = self.mesh
        engine = mesh._step_engine
        epoch_payload = None
        due_members: List[int] = []
        if engine is None:
            if mesh._epoch_timer.fire(now):
                epoch_payload = self._begin_epoch_payload()
            for node_id in mesh.active_members():
                if mesh._refresh_timers[node_id].fire(now):
                    due_members.append(node_id)
        else:
            due = engine.due_set(now)
            if ("bullet", "epoch") in due:
                if mesh._epoch_timer.fire(now):
                    epoch_payload = self._begin_epoch_payload()
                engine.arm_timer(("bullet", "epoch"), mesh._epoch_timer, now)
            due_refresh = sorted(
                key[2]
                for key in due
                if type(key) is tuple and len(key) == 3 and key[:2] == ("bullet", "refresh")
            )
            checked = 0
            for node_id in due_refresh:
                if node_id in mesh.failed or node_id not in mesh.nodes:
                    continue
                checked += 1
                timer = mesh._refresh_timers[node_id]
                if timer.fire(now):
                    due_members.append(node_id)
                engine.arm_timer(("bullet", "refresh", node_id), timer, now)
            engine.note_skipped(len(mesh.nodes) - len(mesh.failed) - checked)
        refresh_per_worker: Dict[int, List[int]] = {
            worker: [] for worker in range(self.executor.workers)
        }
        for node_id in due_members:
            refresh_per_worker[self.owner_of[node_id]].append(node_id)
        replies = self.executor.mesh_scatter(
            {
                worker: ("mesh_timers", now, epoch_payload, refresh_per_worker[worker])
                for worker in range(self.executor.workers)
            }
        )
        calls: List[ServiceCall] = []
        ransub_due = False
        for worker in sorted(replies):
            reply = replies[worker]
            calls.extend(reply["calls"])
            self._merge_outboxes(reply["outboxes"])
            ransub_due = reply["ransub_due"] or ransub_due
        self._replay_calls(calls)
        return ransub_due

    def _poll_cascade(self, now: float) -> None:
        """Deepest-first RanSub deadline polls with inter-level channel pumps."""
        mesh = self.mesh
        for level in mesh._members_deepest_first:
            live = [node_id for node_id in level if node_id not in mesh.failed]
            if not live:
                continue
            per_worker: Dict[int, List[int]] = {}
            for node_id in live:
                per_worker.setdefault(self.owner_of[node_id], []).append(node_id)
            replies = self.executor.mesh_scatter(
                {
                    worker: ("mesh_poll", now, node_ids)
                    for worker, node_ids in per_worker.items()
                }
            )
            fired = False
            for worker in sorted(replies):
                reply = replies[worker]
                fired = reply["fired"] or fired
                self._merge_outboxes(reply["outboxes"])
            if fired:
                self._control_phase(now)

    # ---------------------------------------------------------- control plane
    def _merge_outboxes(self, outboxes: Dict[int, List[ControlMessage]]) -> None:
        for node_id in sorted(outboxes):
            self._pending_out.setdefault(node_id, []).extend(outboxes[node_id])

    def _flush_pending(self, now: float) -> int:
        """Send buffered worker messages, ascending node order (serial's walk)."""
        mesh = self.mesh
        flushed = 0
        for node_id in sorted(self._pending_out):
            for message in self._pending_out[node_id]:
                mesh.control_channel.send(message, now)
                flushed += 1
        self._pending_out = {}
        return flushed

    def _replay_calls(self, calls: List[ServiceCall]) -> None:
        mesh = self.mesh
        for _key, _seq, op, sender, receiver in sorted(calls):
            if op == "open":
                mesh.open_mesh_flow(sender, receiver)
            else:
                mesh.close_mesh_flow(sender, receiver)

    def _dispatch_batch(self, batch: List[ControlMessage], now: float) -> None:
        per_worker: Dict[int, List[Tuple[int, ControlMessage]]] = {}
        for gidx, message in enumerate(batch):
            owner = self.owner_of.get(message.dst)
            if owner is None:
                continue
            per_worker.setdefault(owner, []).append((gidx, message))
        if not per_worker:
            return
        replies = self.executor.mesh_scatter(
            {
                worker: ("mesh_dispatch", now, tagged)
                for worker, tagged in per_worker.items()
            }
        )
        calls: List[ServiceCall] = []
        for worker in sorted(replies):
            reply = replies[worker]
            calls.extend(reply["calls"])
            self._merge_outboxes(reply["outboxes"])
        self._replay_calls(calls)

    def _control_phase(self, now: float) -> None:
        mesh = self.mesh
        horizon = now + mesh.simulator.dt
        if self._flush_pending(now) == 0 and mesh._step_engine is not None:
            due = mesh.control_channel.next_due()
            if due is None or due > horizon + 1e-12:
                mesh._step_engine.note_skipped(1)
                return
        while True:
            batch: List[ControlMessage] = []
            delivered = mesh.control_channel.pump(horizon, batch.append)
            if batch:
                self._dispatch_batch(batch, now)
            if self._flush_pending(now) == 0 and delivered == 0:
                break

    # ------------------------------------------------------------- data plane
    def _data_phase(self, now: float) -> None:
        mesh = self.mesh
        source_seqs: List[int] = []
        if mesh.root not in mesh.failed:
            packets = (
                mesh.config.stream_rate_kbps * mesh.simulator.dt / mesh.config.packet_kbits
                + mesh._source_carry
            )
            count = int(packets)
            mesh._source_carry = packets - count
            for _ in range(count):
                sequence = mesh._next_sequence
                mesh._next_sequence += 1
                if sequence % mesh._trace_sample_stride == 0:
                    mesh.stats.trace_sequences([sequence])
                source_seqs.append(sequence)
        root_owner = self.owner_of[mesh.root]
        tree_per_worker: Dict[int, Dict[Tuple[int, int], Tuple[int, bool]]] = {
            worker: {} for worker in range(self.executor.workers)
        }
        for key, flow in mesh.tree_flows.items():
            tree_per_worker[self.owner_of[key[0]]][key] = (flow.send_budget(), flow.active)
        mesh_per_worker: Dict[int, Dict[Tuple[int, int], Tuple[int, bool]]] = {
            worker: {} for worker in range(self.executor.workers)
        }
        for key, flow in mesh.mesh_flows.items():
            mesh_per_worker[self.owner_of[key[0]]][key] = (flow.send_budget(), flow.active)
        replies = self.executor.mesh_scatter(
            {
                worker: (
                    "mesh_data",
                    source_seqs if worker == root_owner else [],
                    tree_per_worker[worker],
                    mesh_per_worker[worker],
                    now,
                )
                for worker in range(self.executor.workers)
            }
        )
        fresh: Dict[int, int] = {}
        tree_accepts: Dict[Tuple[int, int], List[int]] = {}
        mesh_accepts: Dict[Tuple[int, int], List[int]] = {}
        serve_sent: Dict[Tuple[int, int], int] = {}
        pending: Dict[Tuple[int, int], int] = {}
        for worker in sorted(replies):
            reply = replies[worker]
            fresh.update(reply["fresh"])
            tree_accepts.update(reply["tree"])
            mesh_accepts.update(reply["mesh"])
            serve_sent.update(reply["serve_sent"])
            pending.update(reply["pending"])
        for node_id in mesh.active_members():
            previous = mesh._fresh_rate.get(node_id, 0.0)
            mesh._fresh_rate[node_id] = 0.7 * previous + 0.3 * fresh.get(node_id, 0)
        for key in sorted(tree_accepts):
            flow = mesh.tree_flows[key]
            for sequence in tree_accepts[key]:
                if not flow.try_send(sequence):
                    raise RuntimeError("sharded tree send diverged from the flow budget")
        for key in sorted(mesh_accepts):
            flow = mesh.mesh_flows[key]
            for sequence in mesh_accepts[key]:
                if not flow.try_send(sequence):
                    raise RuntimeError("sharded mesh send diverged from the flow budget")
        for key in sorted(serve_sent):
            mesh._sent_this_step[key] = serve_sent[key]
        self._update_flow_demands(pending)

    def _update_flow_demands(self, pending: Dict[Tuple[int, int], int]) -> None:
        mesh = self.mesh
        dt = mesh.simulator.dt
        for key, flow in mesh.mesh_flows.items():
            total = pending.get(key, 0) + mesh._sent_this_step.get(key, 0)
            if total <= 0:
                flow.set_demand(0.0)
            else:
                flow.set_demand((total + 1) * mesh.config.packet_kbits / dt)
        for (parent, child), flow in mesh.tree_flows.items():
            if parent in mesh.failed or child in mesh.failed:
                flow.set_demand(0.0)
                continue
            if parent == mesh.root:
                flow.set_demand(mesh.config.stream_rate_kbps)
                continue
            fresh_rate_kbps = (
                mesh._fresh_rate.get(parent, 0.0) * mesh.config.packet_kbits / dt
            )
            demand = min(
                mesh.config.stream_rate_kbps,
                max(1.25 * fresh_rate_kbps, 4 * mesh.config.packet_kbits / dt),
            )
            flow.set_demand(demand)

    # ------------------------------------------------------------- membership
    def fail_node(self, node_id: int) -> None:
        """Fail a head: main mirrors the mesh bookkeeping, workers replicate."""
        self.mesh.fail_node(node_id)
        self._pending_out.pop(node_id, None)
        self.executor.mesh_broadcast(("mesh_fail", node_id))

    def add_node(self, node_id: int, parent: Optional[int] = None) -> int:
        """Join a promoted head: main mirrors structure, the owner builds it."""
        mesh = self.mesh
        prune_head = int(mesh._next_sequence) - mesh.config.recovery_span_packets
        chosen = mesh.add_node(node_id, parent)
        owner = self.owner_of.get(node_id)
        if owner is None:
            owner = self._owner_for(node_id) if self._owner_for is not None else 0
            self.owner_of[node_id] = owner
        self.executor.mesh_call(owner, ("mesh_add", node_id, chosen, prune_head))
        self.executor.mesh_call(
            self.owner_of[chosen], ("mesh_add_child", chosen, node_id)
        )
        return chosen


__all__ = ["HeadHost", "HeadMeshCoordinator"]
