"""``bullet-clustered``: the two-level hierarchical Bullet overlay.

The flat mesh treats all participants equally, so its per-node protocol
state (RanSub summaries, peering slots, recovery working sets) grows with
the overlay.  The clustered system caps that: participants are grouped into
proximity clusters (:mod:`~repro.hierarchy.clustering`), every cluster
elects its fattest-uplink member as *head*, and only the ~n/cluster_size
heads run the full Bullet mesh/RanSub/recovery machinery over the underlay.
Cluster interiors hang off their head in a cheap balanced tree modelled by
:class:`~repro.hierarchy.interior.InteriorCluster` — packet *counts* with
deterministic capacity and loss carries, not per-packet simulation.

Control flow per step: the head mesh runs its normal ``protocol_phase``;
each cluster's head delta (fresh useful packets this step, straight from the
stats counters — or from the source's generation counter for the root
cluster) is handed to the interior executor.  The serial executor steps
interiors immediately; the process executor buffers deltas and replays them
at the next barrier (:meth:`ClusteredBullet.receivers`, which the session
calls at every sampling point, and every membership event).  Either way the
flushed per-node delivery windows land in the shared
:class:`~repro.network.stats.StatsCollector` through
``record_receive_counts`` — byte-identical in both modes.

Failure handling is hierarchical: a failed interior simply freezes (its
in-cluster subtree drains and starves, mirroring the paper's unrepaired-tree
behaviour); a failed *head* triggers promotion — the surviving interior with
the fattest uplink replaces it in the head mesh (fail + join) and the
cluster re-hangs under the promoted head with counts preserved.  Mid-run
joins route to the nearest cluster by underlay round-trip time.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.core.mesh import BulletMesh
from repro.experiments.registry import BuildContext, register_system
from repro.hierarchy.clustering import (
    access_capacity_kbps,
    access_loss_rate,
    nearest_head,
    plan_clusters,
    promotion_candidate,
)
from repro.hierarchy.interior import InteriorCluster
from repro.hierarchy.sharding import ProcessShardExecutor, SerialShardExecutor
from repro.network.simulator import NetworkSimulator
from repro.trees.random_tree import build_random_tree


class ClusteredBullet:
    """Bullet among cluster heads, count-model dissemination inside clusters."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        source: int,
        participants: List[int],
        config,
    ) -> None:
        self.simulator = simulator
        self.source = source
        self.config = config
        topology = simulator.topology
        self.topology = topology

        cluster_size = getattr(config, "cluster_size", 50)
        self.plans = plan_clusters(topology, source, participants, cluster_size)
        heads = [plan.head for plan in self.plans]

        # Hierarchical systems skip the session's whole-overlay route warming
        # (the capability declaration opts out); only heads touch the
        # underlay, so warm exactly those.
        if getattr(topology, "use_routing_engine", False):
            topology.warm_routes(heads)

        head_tree = build_random_tree(
            source,
            heads,
            max_fanout=getattr(config, "max_fanout", 4),
            seed=config.seed,
        )
        self.mesh = BulletMesh(simulator, head_tree, config.bullet_config())
        self.stats = simulator.stats

        rate_kbps = self.mesh.config.stream_rate_kbps
        packet_kbits = self.mesh.config.packet_kbits
        fanout = getattr(config, "max_fanout", 4)
        self._clusters: List[InteriorCluster] = []
        #: node -> index of its cluster, heads included.
        self._cluster_of: Dict[int, int] = {}
        for index, plan in enumerate(self.plans):
            members = plan.members()
            caps = {node: access_capacity_kbps(topology, node) for node in members}
            loss = {node: access_loss_rate(topology, node) for node in members}
            self._clusters.append(
                InteriorCluster(
                    plan.head,
                    plan.interiors,
                    caps,
                    loss,
                    rate_kbps=rate_kbps,
                    dt=simulator.dt,
                    packet_kbits=packet_kbits,
                    fanout=fanout,
                )
            )
            for node in members:
                self._cluster_of[node] = index

        self._executor = SerialShardExecutor(self._clusters)
        #: Useful-packet totals already fed to each cluster's interior tree.
        self._head_seen: List[int] = [0] * len(self._clusters)
        #: Clusters whose head died with no survivor to promote.
        self._dead_clusters: List[bool] = [False] * len(self._clusters)
        self._stepped = False

    # --------------------------------------------------------------- plumbing
    @property
    def control_channel(self):
        """The head mesh's control channel (session observers tap it)."""
        return self.mesh.control_channel

    def attach_step_engine(self, engine) -> None:
        """Forward the session's step engine to the head mesh."""
        self.mesh.attach_step_engine(engine)

    @property
    def sharded(self) -> bool:
        """Whether interiors currently step in worker processes."""
        return isinstance(self._executor, ProcessShardExecutor)

    def enable_sharding(self, workers: int) -> bool:
        """Swap the interior executor for forked workers; returns success.

        Must run before the first step: the workers fork the pristine
        cluster state and from then on own the counts.  On platforms without
        the fork start method this degrades to the (byte-identical) serial
        executor with a warning rather than failing the run.
        """
        if self._stepped:
            raise RuntimeError("enable_sharding must run before the first step")
        if self.sharded:
            raise RuntimeError("sharding is already enabled")
        try:
            self._executor = ProcessShardExecutor(self._clusters, workers)
        except RuntimeError as error:
            print(
                f"warning: process sharding unavailable ({error}); "
                "falling back to serial interior stepping",
                file=sys.stderr,
            )
            return False
        return True

    def shutdown_sharding(self) -> None:
        """Tear down shard workers, if any; idempotent."""
        self._executor.shutdown()

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One head-mesh phase, then feed fresh head packets to interiors."""
        self.mesh.protocol_phase(now)
        deltas: List[int] = []
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                deltas.append(0)
                continue
            head = cluster.root
            if head == self.source:
                total = self.mesh.packets_generated
            else:
                total = self.stats.node_counters(head).useful_packets
            deltas.append(total - self._head_seen[index])
            self._head_seen[index] = total
        self._executor.enqueue_step(deltas)
        self._stepped = True

    def _flush_interiors(self) -> None:
        """Barrier: drain interior delivery windows into the stats counters.

        Serial and sharded executors return identical windows at identical
        barriers, so the stats stream — and every export derived from it —
        is byte-identical across modes.
        """
        for report in self._executor.flush():
            for node, useful in report:
                self.stats.record_receive_counts(node, useful, from_parent=True)

    def receivers(self) -> List[int]:
        """All live non-source members: mesh heads plus cluster interiors.

        Doubles as the step barrier: the session calls this exactly at each
        sampling point (and result collection), so interior windows are
        flushed to stats before every read.
        """
        self._flush_interiors()
        nodes = list(self.mesh.receivers())
        for index, cluster in enumerate(self._clusters):
            if not self._dead_clusters[index]:
                nodes.extend(cluster.live_interiors())
        return sorted(nodes)

    # ------------------------------------------------------------- membership
    def fail_node(self, node: int) -> None:
        """Fail a participant: interiors freeze, heads trigger promotion."""
        if node == self.source:
            raise ValueError("failing the source is not part of the evaluation")
        index = self._cluster_of.get(node)
        if index is None:
            raise ValueError(f"node {node} is not an overlay member")
        if self._dead_clusters[index]:
            raise ValueError(f"node {node} belongs to a dead cluster")
        self._flush_interiors()
        cluster = self._clusters[index]
        if cluster.root != node:
            self._executor.fail_interior(index, node)
            return
        survivors = cluster.live_interiors()
        if not survivors:
            # Singleton (or fully failed) cluster: the head just leaves the
            # mesh and the cluster dies with it.
            self.mesh.fail_node(node)
            self._dead_clusters[index] = True
            return
        new_head = promotion_candidate(self.topology, survivors)
        if getattr(self.topology, "use_routing_engine", False):
            self.topology.warm_routes([new_head])
        self.mesh.fail_node(node)
        self.mesh.add_node(new_head)
        self._executor.promote(index, new_head)
        # The promoted head keeps its interior deliveries in its stats
        # counters; baseline the mesh feed there so interiors only ever see
        # packets it receives *as head* (everything earlier it already has).
        self._head_seen[index] = self.stats.node_counters(new_head).useful_packets

    def add_node(self, node: int, parent: Optional[int] = None) -> int:
        """Join ``node`` into the nearest live cluster; returns its parent.

        ``parent`` may pin the in-cluster attachment point's cluster: when
        given, the joiner lands in ``parent``'s cluster instead of the
        RTT-nearest one (the injector never passes it; tests do).
        """
        if node in self._cluster_of:
            raise ValueError(f"node {node} is already an overlay member")
        if parent is not None:
            index = self._cluster_of.get(parent)
            if index is None or self._dead_clusters[index]:
                raise ValueError(f"join parent {parent} is not a live overlay member")
        else:
            heads = [
                cluster.root
                for cluster_index, cluster in enumerate(self._clusters)
                if not self._dead_clusters[cluster_index]
            ]
            head = nearest_head(self.topology, heads, node)
            index = self._cluster_of[head]
        self._flush_interiors()
        chosen = self._executor.add_interior(
            index,
            node,
            access_capacity_kbps(self.topology, node),
            access_loss_rate(self.topology, node),
        )
        self._cluster_of[node] = index
        return chosen

    # ---------------------------------------------------------------- failure
    def targeted_victim_order(self) -> List[int]:
        """Members ranked by blast radius, for adversarial (targeted) churn.

        Heads come first, ordered by the live population that depends on
        them: their own cluster plus every cluster whose head sits below
        them in the head-dissemination tree (a head's failure stalls fresh
        data for all of those until the mesh recovers).  Interiors follow,
        ranked by their in-cluster subtree size.  The source is excluded —
        failing it is outside the evaluation.
        """
        cluster_population: Dict[int, int] = {}
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                continue
            cluster_population[cluster.root] = 1 + len(cluster.live_interiors())

        tree = self.mesh.tree
        subtree_population: Dict[int, int] = {}

        def population(head: int) -> int:
            if head in subtree_population:
                return subtree_population[head]
            total = cluster_population.get(head, 0)
            for child in tree.children(head):
                total += population(child)
            subtree_population[head] = total
            return total

        heads = [
            head
            for head in cluster_population
            if head != self.source and head in tree
        ]
        heads.sort(key=lambda head: (-population(head), head))

        interiors: List[tuple] = []
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                continue
            for node in cluster.live_interiors():
                interiors.append((-cluster.subtree_size(node), node))
        interiors.sort()
        return heads + [node for _, node in interiors]


@register_system(
    "bullet-clustered",
    uses_tree=False,
    description="two-level clustered Bullet: mesh among heads, count-model interiors",
    supports_fail_node=True,
    supports_join=True,
    hierarchical=True,
)
def _build_clustered(ctx: BuildContext) -> ClusteredBullet:
    if ctx.source is None:
        raise ValueError("bullet-clustered needs a workload with a source")
    return ClusteredBullet(
        ctx.simulator, ctx.source, list(ctx.participants), ctx.config
    )
