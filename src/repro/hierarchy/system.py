"""``bullet-clustered``: the hierarchical Bullet overlay (two or three levels).

The flat mesh treats all participants equally, so its per-node protocol
state (RanSub summaries, peering slots, recovery working sets) grows with
the overlay.  The clustered system caps that: participants are grouped into
proximity clusters (:mod:`~repro.hierarchy.clustering`), every cluster
elects its fattest-uplink member as *head*, and only the elected heads run
the full Bullet mesh/RanSub/recovery machinery over the underlay.  Cluster
interiors hang off their head in a cheap balanced tree modelled by
:class:`~repro.hierarchy.interior.InteriorCluster` — packet *counts* with
deterministic capacity and loss carries, not per-packet simulation.

At ``hierarchy_levels=3`` the same rule stacks once more: the leaf-cluster
heads are themselves clustered into *head groups*, each group's elected
super-head is the only mesh member, and the group's remaining leaf heads
hang off the super-head in another count-model tree (a "mid" cluster).  A
100k-node overlay then runs a Bullet mesh of ~10 super-heads over ~800 leaf
heads over ~100k interiors, and no flat mesh ever materializes.

Control flow per step: the head mesh runs its normal ``protocol_phase``;
each mesh member's fresh useful packets this step (straight from the stats
counters — or from the source's generation counter) feed its mid cluster
(levels=3) and its own leaf cluster; mid deliveries feed the remaining leaf
clusters.  The serial executor steps leaf interiors immediately; the process
executor buffers deltas and replays them at the next barrier
(:meth:`ClusteredBullet.receivers`, which the session calls at every
sampling point, and every membership event).  Mid clusters are always
stepped on the main process — there are only ~mesh-member-count of them.
Either way the flushed per-node delivery windows land in the shared
:class:`~repro.network.stats.StatsCollector` through
``record_receive_counts`` — byte-identical in both modes.

With ``shard_workers >= 2`` the head mesh itself also shards: each worker's
:class:`~repro.hierarchy.headmesh.HeadHost` owns the Bullet nodes whose leaf
cluster it simulates, and the main process drives the barrier-coordinated
:class:`~repro.hierarchy.headmesh.HeadMeshCoordinator` instead of the serial
mesh — byte-identical by construction and checked by the equivalence suite.

Failure handling is hierarchical: a failed interior simply freezes (its
in-cluster subtree drains and starves, mirroring the paper's unrepaired-tree
behaviour); a failed *head* triggers promotion — the surviving interior with
the fattest uplink replaces it, and when the failed head sat in the mesh the
promotion cascades (a surviving leaf head replaces a failed super-head in
the mesh, the rehomed leaf cluster's new head joins the head group).
Mid-run joins route to the nearest cluster by underlay round-trip time —
estimated from landmark coordinates when ``latency_estimator=landmark``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.core.mesh import BulletMesh
from repro.experiments.registry import BuildContext, register_system
from repro.hierarchy.clustering import (
    access_capacity_kbps,
    access_loss_rate,
    nearest_head,
    plan_hierarchy,
    promotion_candidate,
)
from repro.hierarchy.headmesh import HeadHost, HeadMeshCoordinator
from repro.hierarchy.interior import InteriorCluster
from repro.hierarchy.sharding import ProcessShardExecutor, SerialShardExecutor
from repro.network.simulator import NetworkSimulator
from repro.topology.landmarks import build_estimator
from repro.trees.random_tree import build_random_tree


class ClusteredBullet:
    """Bullet among cluster heads, count-model dissemination inside clusters."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        source: int,
        participants: List[int],
        config,
    ) -> None:
        self.simulator = simulator
        self.source = source
        self.config = config
        topology = simulator.topology
        self.topology = topology

        cluster_size = getattr(config, "cluster_size", 50)
        levels = getattr(config, "hierarchy_levels", 2)
        self._estimator = build_estimator(
            getattr(config, "latency_estimator", "exact"),
            topology,
            participants,
            seed=config.seed,
        )
        self.hierarchy = plan_hierarchy(
            topology,
            source,
            participants,
            cluster_size,
            levels=levels,
            estimator=self._estimator,
        )
        #: Leaf cluster plans, kept under the historical name for callers.
        self.plans = list(self.hierarchy.leaf_plans)
        mesh_members = self.hierarchy.mesh_members()

        # Hierarchical systems skip the session's whole-overlay route warming
        # (the capability declaration opts out); only mesh members touch the
        # underlay, so warm exactly those.
        if getattr(topology, "use_routing_engine", False):
            topology.warm_routes(mesh_members)

        head_tree = build_random_tree(
            source,
            mesh_members,
            max_fanout=getattr(config, "max_fanout", 4),
            seed=config.seed,
        )
        self.mesh = BulletMesh(simulator, head_tree, config.bullet_config())
        if self._estimator is not None:
            self.mesh.set_latency_estimator(self._estimator)
        self.stats = simulator.stats

        rate_kbps = self.mesh.config.stream_rate_kbps
        packet_kbits = self.mesh.config.packet_kbits
        fanout = getattr(config, "max_fanout", 4)
        self._clusters: List[InteriorCluster] = []
        #: node -> index of its leaf cluster, heads included.
        self._cluster_of: Dict[int, int] = {}
        for index, plan in enumerate(self.plans):
            members = plan.members()
            caps = {node: access_capacity_kbps(topology, node) for node in members}
            loss = {node: access_loss_rate(topology, node) for node in members}
            self._clusters.append(
                InteriorCluster(
                    plan.head,
                    plan.interiors,
                    caps,
                    loss,
                    rate_kbps=rate_kbps,
                    dt=simulator.dt,
                    packet_kbits=packet_kbits,
                    fanout=fanout,
                )
            )
            for node in members:
                self._cluster_of[node] = index

        # Mid clusters (levels=3 only): count-model trees fanning the stream
        # from each mesh super-head to the other leaf heads of its group.
        # There are only ~mesh-member-count of these, so they always step on
        # the main process, in both serial and sharded modes.
        self._mids: List[InteriorCluster] = []
        #: leaf head -> index of its mid cluster (levels=3 only).
        self._mid_of: Dict[int, int] = {}
        self._mid_dead: List[bool] = []
        for mid_index, plan in enumerate(self.hierarchy.group_plans):
            members = plan.members()
            caps = {node: access_capacity_kbps(topology, node) for node in members}
            loss = {node: access_loss_rate(topology, node) for node in members}
            self._mids.append(
                InteriorCluster(
                    plan.head,
                    plan.interiors,
                    caps,
                    loss,
                    rate_kbps=rate_kbps,
                    dt=simulator.dt,
                    packet_kbits=packet_kbits,
                    fanout=fanout,
                )
            )
            self._mid_dead.append(False)
            for node in members:
                self._mid_of[node] = mid_index

        self._executor = SerialShardExecutor(self._clusters)
        self._coordinator: Optional[HeadMeshCoordinator] = None
        #: Useful-packet totals already consumed from each mesh member.
        self._mesh_seen: Dict[int, int] = {member: 0 for member in mesh_members}
        #: Leaf clusters whose head died with no survivor to promote.
        self._dead_clusters: List[bool] = [False] * len(self._clusters)
        self._stepped = False

    # --------------------------------------------------------------- plumbing
    @property
    def control_channel(self):
        """The head mesh's control channel (session observers tap it)."""
        return self.mesh.control_channel

    def attach_step_engine(self, engine) -> None:
        """Forward the session's step engine to the head mesh."""
        self.mesh.attach_step_engine(engine)

    @property
    def sharded(self) -> bool:
        """Whether interiors currently step in worker processes."""
        return isinstance(self._executor, ProcessShardExecutor)

    @property
    def _mesh_driver(self):
        """Whatever currently drives the head mesh's protocol and membership."""
        return self._coordinator if self._coordinator is not None else self.mesh

    def enable_sharding(self, workers: int) -> bool:
        """Swap in forked workers for interiors *and* mesh; returns success.

        Must run before the first step: the workers fork the pristine
        cluster state — and the pristine Bullet node objects, each owned by
        the worker that simulates its leaf cluster — and from then on own
        them.  The main process keeps the order-defining shared resources
        (channel, flows, timers, stats) and drives the workers through the
        :class:`~repro.hierarchy.headmesh.HeadMeshCoordinator`.  On
        platforms without the fork start method this degrades to the
        (byte-identical) serial executor with a warning rather than failing
        the run.
        """
        if self._stepped:
            raise RuntimeError("enable_sharding must run before the first step")
        if self.sharded:
            raise RuntimeError("sharding is already enabled")
        effective = ProcessShardExecutor.effective_workers(
            len(self._clusters), workers
        )
        owner_of = {
            node_id: self._cluster_of[node_id] % effective
            for node_id in self.mesh.nodes
        }
        hosts = []
        for worker in range(effective):
            owned = {
                node_id: node
                for node_id, node in self.mesh.nodes.items()
                if owner_of[node_id] == worker
            }
            hosts.append(
                HeadHost(
                    owned,
                    self.mesh.config,
                    self.mesh.root,
                    self.mesh._ransub_rng,
                    estimator=self._estimator,
                )
            )
        try:
            executor = ProcessShardExecutor(
                self._clusters, workers, head_hosts=hosts
            )
        except RuntimeError as error:
            print(
                f"warning: process sharding unavailable ({error}); "
                "falling back to serial interior stepping",
                file=sys.stderr,
            )
            return False
        self._executor = executor
        self._coordinator = HeadMeshCoordinator(
            self.mesh,
            executor,
            owner_of,
            owner_for=lambda node_id: self._cluster_of[node_id] % executor.workers,
        )
        return True

    def shutdown_sharding(self) -> None:
        """Tear down shard workers, if any; idempotent."""
        self._executor.shutdown()

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One head-mesh phase, then feed fresh packets down the hierarchy."""
        self._mesh_driver.protocol_phase(now)
        mesh_fresh: Dict[int, int] = {}
        for member in list(self._mesh_seen):
            if member == self.source:
                total = self.mesh.packets_generated
            else:
                total = self.stats.node_counters(member).useful_packets
            mesh_fresh[member] = total - self._mesh_seen[member]
            self._mesh_seen[member] = total
        # Mid clusters drain every step (they feed the same step's leaf
        # deltas), directly into the stats counters.
        mid_delivered: Dict[int, int] = {}
        for mid_index, mid in enumerate(self._mids):
            if self._mid_dead[mid_index]:
                continue
            mid.step(mesh_fresh.get(mid.root, 0))
            for node, useful in mid.take_window():
                self.stats.record_receive_counts(node, useful, from_parent=True)
                mid_delivered[node] = mid_delivered.get(node, 0) + useful
        deltas: List[int] = []
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                deltas.append(0)
                continue
            head = cluster.root
            if head in mesh_fresh:
                deltas.append(mesh_fresh[head])
            else:
                deltas.append(mid_delivered.get(head, 0))
        self._executor.enqueue_step(deltas)
        self._stepped = True

    def _flush_interiors(self) -> None:
        """Barrier: drain interior delivery windows into the stats counters.

        Serial and sharded executors return identical windows at identical
        barriers, so the stats stream — and every export derived from it —
        is byte-identical across modes.
        """
        for report in self._executor.flush():
            for node, useful in report:
                self.stats.record_receive_counts(node, useful, from_parent=True)

    def receivers(self) -> List[int]:
        """All live non-source members: mesh, mid interiors, leaf interiors.

        Doubles as the step barrier: the session calls this exactly at each
        sampling point (and result collection), so interior windows are
        flushed to stats before every read.
        """
        self._flush_interiors()
        nodes = list(self.mesh.receivers())
        for mid_index, mid in enumerate(self._mids):
            if not self._mid_dead[mid_index]:
                nodes.extend(mid.live_interiors())
        for index, cluster in enumerate(self._clusters):
            if not self._dead_clusters[index]:
                nodes.extend(cluster.live_interiors())
        return sorted(nodes)

    # ------------------------------------------------------------- membership
    def fail_node(self, node: int) -> None:
        """Fail a participant: interiors freeze, heads trigger promotion."""
        if node == self.source:
            raise ValueError("failing the source is not part of the evaluation")
        index = self._cluster_of.get(node)
        if index is None:
            raise ValueError(f"node {node} is not an overlay member")
        if self._dead_clusters[index]:
            raise ValueError(f"node {node} belongs to a dead cluster")
        self._flush_interiors()
        cluster = self._clusters[index]
        if cluster.root != node:
            self._executor.fail_interior(index, node)
            return
        survivors = cluster.live_interiors()
        promoted: Optional[int] = None
        if survivors:
            promoted = promotion_candidate(
                self.topology,
                survivors,
                estimator=self._estimator,
                source=self.source,
            )
        if node in self._mesh_seen:
            self._fail_mesh_member(node, index, promoted)
        else:
            self._fail_group_head(node, index, promoted)

    def _fail_mesh_member(
        self, node: int, index: int, promoted: Optional[int]
    ) -> None:
        """A mesh member died: replace it in the mesh, rehome its cluster(s).

        At two levels the leaf promotion *is* the mesh replacement.  At three
        levels the mesh seat passes to the fattest surviving leaf head of the
        node's head group (the group's mid cluster re-roots under it), while
        the node's own leaf cluster promotes independently and rejoins the
        group as a mid interior.
        """
        mid_index = self._mid_of.get(node)
        if mid_index is None:
            # Two-level layout: the promoted interior takes the mesh seat.
            if promoted is None:
                # Singleton (or fully failed) cluster: the head just leaves
                # the mesh and the cluster dies with it.
                self._mesh_driver.fail_node(node)
                self._mesh_seen.pop(node)
                self._dead_clusters[index] = True
                return
            if getattr(self.topology, "use_routing_engine", False):
                self.topology.warm_routes([promoted])
            self._mesh_driver.fail_node(node)
            self._mesh_driver.add_node(promoted)
            self._executor.promote(index, promoted)
            # The promoted head keeps its interior deliveries in its stats
            # counters; baseline the mesh feed there so interiors only ever
            # see packets it receives *as head* (everything earlier it
            # already has).
            self._mesh_seen.pop(node)
            self._mesh_seen[promoted] = self.stats.node_counters(
                promoted
            ).useful_packets
            return
        # Three-level layout: the failed node is a super-head.
        mid = self._mids[mid_index]
        mid_survivors = mid.live_interiors()
        if mid_survivors:
            successor = promotion_candidate(
                self.topology,
                mid_survivors,
                estimator=self._estimator,
                source=self.source,
            )
            if getattr(self.topology, "use_routing_engine", False):
                self.topology.warm_routes([successor])
            self._mesh_driver.fail_node(node)
            self._mesh_driver.add_node(successor)
            self._mesh_seen.pop(node)
            self._mesh_seen[successor] = self.stats.node_counters(
                successor
            ).useful_packets
            mid.promote(successor)
        else:
            # No other leaf head in the group: the group starves with its
            # super-head (the paper's unrepaired-tree behaviour).
            self._mesh_driver.fail_node(node)
            self._mesh_seen.pop(node)
            self._mid_dead[mid_index] = True
        self._mid_of.pop(node)
        if promoted is None:
            self._dead_clusters[index] = True
            return
        self._executor.promote(index, promoted)
        if not self._mid_dead[mid_index]:
            mid.add_interior(
                promoted,
                access_capacity_kbps(self.topology, promoted),
                access_loss_rate(self.topology, promoted),
            )
            self._mid_of[promoted] = mid_index

    def _fail_group_head(
        self, node: int, index: int, promoted: Optional[int]
    ) -> None:
        """A non-mesh leaf head died (levels=3): promote within its group."""
        mid_index = self._mid_of.get(node)
        if mid_index is None:  # pragma: no cover - membership invariant guard
            raise ValueError(f"leaf head {node} belongs to no head group")
        mid = self._mids[mid_index]
        mid.fail_interior(node)
        self._mid_of.pop(node)
        if promoted is None:
            self._dead_clusters[index] = True
            return
        self._executor.promote(index, promoted)
        mid.add_interior(
            promoted,
            access_capacity_kbps(self.topology, promoted),
            access_loss_rate(self.topology, promoted),
        )
        self._mid_of[promoted] = mid_index

    def add_node(self, node: int, parent: Optional[int] = None) -> int:
        """Join ``node`` into the nearest live cluster; returns its parent.

        ``parent`` may pin the in-cluster attachment point's cluster: when
        given, the joiner lands in ``parent``'s cluster instead of the
        RTT-nearest one (the injector never passes it; tests do).
        """
        if node in self._cluster_of:
            raise ValueError(f"node {node} is already an overlay member")
        if parent is not None:
            index = self._cluster_of.get(parent)
            if index is None or self._dead_clusters[index]:
                raise ValueError(f"join parent {parent} is not a live overlay member")
        else:
            heads = [
                cluster.root
                for cluster_index, cluster in enumerate(self._clusters)
                if not self._dead_clusters[cluster_index]
            ]
            head = nearest_head(
                self.topology, heads, node, estimator=self._estimator
            )
            index = self._cluster_of[head]
        self._flush_interiors()
        chosen = self._executor.add_interior(
            index,
            node,
            access_capacity_kbps(self.topology, node),
            access_loss_rate(self.topology, node),
        )
        self._cluster_of[node] = index
        return chosen

    # ---------------------------------------------------------------- failure
    def targeted_victim_order(self) -> List[int]:
        """Members ranked by blast radius, for adversarial (targeted) churn.

        Mesh members come first, ordered by the live population that depends
        on them: every cluster (and, at three levels, every head group)
        hanging below them in the head-dissemination tree — a mesh member's
        failure stalls fresh data for all of those until the mesh recovers.
        Non-mesh leaf heads follow, ranked by their own cluster's live
        population, then interiors by their in-cluster subtree size.  The
        source is excluded — failing it is outside the evaluation.
        """
        leaf_population: Dict[int, int] = {}
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                continue
            leaf_population[cluster.root] = 1 + len(cluster.live_interiors())

        if self._mids:
            mesh_population: Dict[int, int] = {}
            for mid_index, mid in enumerate(self._mids):
                if self._mid_dead[mid_index]:
                    continue
                total = leaf_population.get(mid.root, 0)
                for head in mid.live_interiors():
                    total += leaf_population.get(head, 0)
                mesh_population[mid.root] = total
        else:
            mesh_population = leaf_population

        tree = self.mesh.tree
        subtree_population: Dict[int, int] = {}

        def population(head: int) -> int:
            if head in subtree_population:
                return subtree_population[head]
            total = mesh_population.get(head, 0)
            for child in tree.children(head):
                total += population(child)
            subtree_population[head] = total
            return total

        heads = [
            head
            for head in mesh_population
            if head != self.source and head in tree
        ]
        heads.sort(key=lambda head: (-population(head), head))

        group_heads: List[tuple] = []
        if self._mids:
            for mid_index, mid in enumerate(self._mids):
                if self._mid_dead[mid_index]:
                    continue
                for head in mid.live_interiors():
                    group_heads.append((-leaf_population.get(head, 0), head))
            group_heads.sort()

        interiors: List[tuple] = []
        for index, cluster in enumerate(self._clusters):
            if self._dead_clusters[index]:
                continue
            for node in cluster.live_interiors():
                interiors.append((-cluster.subtree_size(node), node))
        interiors.sort()
        return (
            heads
            + [head for _, head in group_heads]
            + [node for _, node in interiors]
        )


@register_system(
    "bullet-clustered",
    uses_tree=False,
    description="clustered Bullet: mesh among heads, count-model interiors",
    supports_fail_node=True,
    supports_join=True,
    hierarchical=True,
)
def _build_clustered(ctx: BuildContext) -> ClusteredBullet:
    if ctx.source is None:
        raise ValueError("bullet-clustered needs a workload with a source")
    return ClusteredBullet(
        ctx.simulator, ctx.source, list(ctx.participants), ctx.config
    )
