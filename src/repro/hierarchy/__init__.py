"""Two-level clustered overlays with shardable interior simulation.

The paper's Bullet mesh is flat and tops out at a thousand nodes; pushing
toward the million-user north star means bounding per-node protocol state.
This package implements the CliqueStream-style split:

* :mod:`~repro.hierarchy.clustering` — proximity clustering of overlay
  participants (by access router), capacity-based head election, promotion
  candidates and nearest-cluster lookup for mid-run joins;
* :mod:`~repro.hierarchy.interior` — :class:`InteriorCluster`, the cheap
  count-based intra-cluster dissemination model with a scalar reference
  stepper and a byte-identical vectorized batch stepper;
* :mod:`~repro.hierarchy.system` — :class:`ClusteredBullet`, registered as
  ``bullet-clustered``: heads run the full Bullet mesh/RanSub/recovery
  machinery, interiors ride the cluster trees, with head-failure promotion
  and join-to-nearest-cluster;
* :mod:`~repro.hierarchy.sharding` — :class:`ShardedSession` plus the serial
  and multiprocess shard executors that step cluster interiors in parallel
  worker processes between head-boundary step barriers, byte-identical to
  the serial mode.
"""

from repro.hierarchy.clustering import ClusterPlan, nearest_head, plan_clusters
from repro.hierarchy.interior import ClusterShard, InteriorCluster
from repro.hierarchy.sharding import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardedSession,
)
from repro.hierarchy.system import ClusteredBullet

__all__ = [
    "ClusterPlan",
    "ClusterShard",
    "ClusteredBullet",
    "InteriorCluster",
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "ShardedSession",
    "nearest_head",
    "plan_clusters",
]
