"""Sharded interior stepping: barrier-batched cluster simulation.

Cluster interiors only exchange state with the rest of the system through
their head's packet count, which the Bullet mesh advances on the main
process.  That makes interiors embarrassingly shardable: between two step
barriers (the session's sampling points, plus every membership event) each
cluster consumes nothing but its per-step head deltas.  The executors here
exploit that:

* :class:`SerialShardExecutor` — the reference: steps every cluster with the
  scalar :meth:`~repro.hierarchy.interior.InteriorCluster.step` as deltas
  arrive.  This is the serial mode's engine.
* :class:`ProcessShardExecutor` — the sharded mode: buffers deltas on the
  main process and, at each barrier, ships one message per worker carrying
  the whole window; workers replay it with the vectorized
  :meth:`~repro.hierarchy.interior.InteriorCluster.step_batch` and return
  per-node delivery windows.  Clusters are partitioned round-robin across
  fork-spawned workers; the only traffic is head deltas out and window
  counts back — exactly the head-boundary exchange the tentpole specifies.

Both executors expose the same interface and produce byte-identical delivery
windows (the batch stepper replays the same IEEE-754 sequence as the scalar
one), so a sharded run's exports match the serial run bit for bit — the
equivalence suite and the CI determinism matrix both check this.

:class:`ShardedSession` is the thin session subclass that flips a clustered
system into process-sharded mode before the first step and tears the workers
down afterwards; ``run_experiment`` dispatches to it for configs with
``shard_workers >= 2``.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.session import ExperimentSession
from repro.hierarchy.interior import ClusterShard, InteriorCluster

#: One cluster's flushed delivery window: (node, useful packets) pairs.
WindowReport = List[Tuple[int, int]]


class SerialShardExecutor:
    """Steps every cluster inline with the scalar reference stepper."""

    def __init__(self, clusters: Sequence[InteriorCluster]) -> None:
        self.clusters = list(clusters)

    def enqueue_step(self, deltas: Sequence[int]) -> None:
        """Apply one simulation step's per-cluster head deltas immediately."""
        for cluster, delta in zip(self.clusters, deltas):
            cluster.step(delta)

    def flush(self) -> List[WindowReport]:
        """Drain per-cluster delivery windows, in cluster order."""
        return [cluster.take_window() for cluster in self.clusters]

    def fail_interior(self, cluster_index: int, node: int) -> None:
        self.clusters[cluster_index].fail_interior(node)

    def promote(self, cluster_index: int, new_head: int) -> None:
        self.clusters[cluster_index].promote(new_head)

    def add_interior(
        self, cluster_index: int, node: int, cap_kbps: float, loss_rate: float
    ) -> int:
        """Attach a joiner; returns the in-cluster parent it landed under."""
        return self.clusters[cluster_index].add_interior(node, cap_kbps, loss_rate)

    def shutdown(self) -> None:
        """Nothing to tear down."""


def _worker_loop(conn, clusters: Dict[int, InteriorCluster], head_host=None) -> None:
    """One shard worker: replay windows and mutations for owned clusters.

    Runs in a forked child.  Commands arrive strictly ordered over the pipe,
    so mutations land between the barrier windows exactly where the main
    process issued them.  All owned clusters are fused into one
    :class:`~repro.hierarchy.interior.ClusterShard` so each barrier window
    replays with one numpy op sequence per tree depth, not per cluster.

    With a :class:`~repro.hierarchy.headmesh.HeadHost` attached the worker
    also owns its heads' Bullet protocol state: every ``mesh_*`` command is a
    synchronous request/reply handled by the host.  Interior and mesh
    commands share the pipe's strict ordering, so the two planes never race.
    """
    shard = ClusterShard(clusters)
    try:
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "run":
                windows: Dict[int, List[int]] = command[1]
                shard.step_window(windows)
                reports = shard.take_windows()
                conn.send({index: reports[index] for index in windows})
            elif kind.startswith("mesh_"):
                if head_host is None:  # pragma: no cover - protocol misuse guard
                    raise ValueError("no head host attached to this shard worker")
                conn.send(head_host.handle(command))
            elif kind == "fail":
                shard.fail_interior(command[1], command[2])
            elif kind == "promote":
                shard.promote(command[1], command[2])
            elif kind == "add":
                shard.add_interior(command[1], command[2], command[3], command[4])
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol misuse guard
                raise ValueError(f"unknown shard command {kind!r}")
    except EOFError:  # pragma: no cover - parent died; exit quietly
        return
    finally:
        conn.close()


class ProcessShardExecutor:
    """Runs cluster interiors in forked worker processes between barriers.

    The main process keeps the cluster objects as a *structure mirror*:
    membership mutations are applied both locally and in the owning worker,
    so tree shape, liveness and roots stay queryable on the main side, while
    packet counts advance only in the workers (the mirror's counts go stale
    and are never read).  Deltas are buffered per step and shipped once per
    flush — one pickled dict per worker per barrier.
    """

    @staticmethod
    def effective_workers(n_clusters: int, workers: int) -> int:
        """Worker count after clamping to the number of clusters."""
        return min(workers, max(n_clusters, 1))

    def __init__(
        self,
        clusters: Sequence[InteriorCluster],
        workers: int,
        head_hosts: Optional[Sequence] = None,
    ) -> None:
        if workers < 2:
            raise ValueError("process sharding needs at least 2 workers")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "process sharding requires the fork start method; use the"
                " serial executor on this platform"
            )
        self.clusters = list(clusters)
        self.workers = self.effective_workers(len(self.clusters), workers)
        if head_hosts is not None and len(head_hosts) != self.workers:
            raise ValueError(
                f"expected {self.workers} head hosts, got {len(head_hosts)}"
            )
        #: cluster index -> worker index (round-robin partition).
        self._owner: List[int] = [
            index % self.workers for index in range(len(self.clusters))
        ]
        self._pending: List[List[int]] = []
        context = multiprocessing.get_context("fork")
        self._connections = []
        self._processes = []
        for worker in range(self.workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            owned = {
                index: cluster
                for index, cluster in enumerate(self.clusters)
                if self._owner[index] == worker
            }
            host = head_hosts[worker] if head_hosts is not None else None
            process = context.Process(
                target=_worker_loop, args=(child_conn, owned, host), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._alive = True

    def enqueue_step(self, deltas: Sequence[int]) -> None:
        """Buffer one step's per-cluster head deltas until the next barrier."""
        if len(deltas) != len(self.clusters):
            raise ValueError("one delta per cluster required")
        self._pending.append(list(deltas))

    def flush(self) -> List[WindowReport]:
        """Barrier: ship buffered windows, gather per-cluster reports."""
        window_length = len(self._pending)
        per_worker: List[Dict[int, List[int]]] = [
            {} for _ in range(self.workers)
        ]
        for cluster_index in range(len(self.clusters)):
            per_worker[self._owner[cluster_index]][cluster_index] = [
                step[cluster_index] for step in self._pending
            ]
        self._pending = []
        if window_length == 0:
            # Nothing stepped since the last barrier; windows are empty by
            # construction, so skip the round-trip entirely.
            return [[] for _ in self.clusters]
        for connection, windows in zip(self._connections, per_worker):
            connection.send(("run", windows))
        reports: List[WindowReport] = [[] for _ in self.clusters]
        for connection in self._connections:
            try:
                worker_reports = connection.recv()
            except EOFError as error:  # pragma: no cover - worker crash guard
                raise RuntimeError("shard worker died mid-run") from error
            for cluster_index, report in worker_reports.items():
                reports[cluster_index] = report
        return reports

    def _command(self, cluster_index: int, command: Tuple) -> None:
        if self._pending:
            raise RuntimeError(
                "membership mutations require a flushed barrier; call flush()"
                " before fail/promote/add"
            )
        self._connections[self._owner[cluster_index]].send(command)

    # --------------------------------------------------------- head-mesh RPCs
    # Synchronous request/reply exchanges for shard-owned head meshes.  Each
    # helper sends first, then collects every reply, so a barrier costs one
    # round-trip regardless of worker count.  The pipe's FIFO ordering keeps
    # mesh exchanges strictly serialized against interior commands.
    def mesh_scatter(self, commands: Dict[int, Tuple]) -> Dict[int, Dict]:
        """Send per-worker commands, gather per-worker replies."""
        targets = sorted(commands)
        for worker in targets:
            self._connections[worker].send(commands[worker])
        replies: Dict[int, Dict] = {}
        for worker in targets:
            try:
                replies[worker] = self._connections[worker].recv()
            except EOFError as error:  # pragma: no cover - worker crash guard
                raise RuntimeError("shard worker died mid-run") from error
        return replies

    def mesh_broadcast(self, command: Tuple) -> Dict[int, Dict]:
        """Send one command to every worker, gather every reply."""
        return self.mesh_scatter({worker: command for worker in range(self.workers)})

    def mesh_call(self, worker: int, command: Tuple) -> Dict:
        """Send one command to one worker and await its reply."""
        return self.mesh_scatter({worker: command})[worker]

    def fail_interior(self, cluster_index: int, node: int) -> None:
        self._command(cluster_index, ("fail", cluster_index, node))
        self.clusters[cluster_index].fail_interior(node)

    def promote(self, cluster_index: int, new_head: int) -> None:
        self._command(cluster_index, ("promote", cluster_index, new_head))
        self.clusters[cluster_index].promote(new_head)

    def add_interior(
        self, cluster_index: int, node: int, cap_kbps: float, loss_rate: float
    ) -> int:
        """Attach a joiner in both the worker and the structure mirror.

        The mirror's deterministic parent choice matches the worker's (it
        depends on tree structure only, which the two sides share), so the
        returned parent needs no worker round-trip.
        """
        self._command(cluster_index, ("add", cluster_index, node, cap_kbps, loss_rate))
        return self.clusters[cluster_index].add_interior(node, cap_kbps, loss_rate)

    def shutdown(self) -> None:
        """Stop the workers; idempotent."""
        if not self._alive:
            return
        self._alive = False
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker guard
                process.terminate()
        for connection in self._connections:
            connection.close()


class ShardedSession(ExperimentSession):
    """An experiment session whose clustered system shards its interiors.

    Construction is the plain :class:`ExperimentSession` build; the only
    addition is flipping the system's interior executor to
    :class:`ProcessShardExecutor` *before the first step* (workers fork the
    pristine cluster state) and tearing the workers down when the run ends.
    Because the executors are byte-identical, a ``ShardedSession`` run
    exports exactly what the serial session would.
    """

    def __init__(self, config=None, **kwargs) -> None:
        super().__init__(config, **kwargs)
        workers = getattr(config, "shard_workers", 0) if config is not None else 0
        enable = getattr(self.system, "enable_sharding", None)
        if enable is None:
            raise ValueError(
                f"system {config.system!r} does not support sharded interior"
                " stepping; shard_workers requires a hierarchical system"
                " (e.g. bullet-clustered)"
            )
        enable(workers)

    def run(self):
        try:
            return super().run()
        finally:
            shutdown = getattr(self.system, "shutdown_sharding", None)
            if shutdown is not None:
                shutdown()


__all__ = [
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "ShardedSession",
    "WindowReport",
]
