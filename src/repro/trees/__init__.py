"""Overlay trees: the generic tree abstraction plus random, offline
bottleneck-bandwidth (OMBT) and Overcast-like constructions."""

from repro.trees.bottleneck_tree import (
    build_bottleneck_tree,
    estimate_overlay_link_throughput,
    tree_bottleneck_estimate,
)
from repro.trees.overcast import build_overcast_tree
from repro.trees.random_tree import build_balanced_tree, build_random_tree
from repro.trees.tree import OverlayTree, tree_from_parent_map, validate_spans

__all__ = [
    "OverlayTree",
    "build_balanced_tree",
    "build_bottleneck_tree",
    "build_overcast_tree",
    "build_random_tree",
    "estimate_overlay_link_throughput",
    "tree_bottleneck_estimate",
    "tree_from_parent_map",
    "validate_spans",
]
