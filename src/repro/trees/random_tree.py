"""Random overlay trees.

The paper's headline configuration runs Bullet "over a random overlay tree":
each joining node picks a parent uniformly at random among nodes already in
the tree, subject to a maximum fanout (so the tree does not degenerate into a
star around the root).  Random trees deliver poor bandwidth on their own
(Figure 6) which is exactly why they make a good substrate for demonstrating
that Bullet's mesh recovers the difference.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng


def build_random_tree(
    root: int,
    members: Sequence[int],
    max_fanout: int = 4,
    seed: int = 1,
    fill_root_first: bool = True,
) -> OverlayTree:
    """Build a random tree over ``members`` rooted at ``root``.

    Nodes join in random order; each picks a parent uniformly at random among
    the nodes already joined that still have fanout budget.  With
    ``fill_root_first`` (the default) the first ``max_fanout`` joiners attach
    directly to the source, mirroring real deployments where the source
    admits a full complement of children — a source with a single child would
    make the entire stream squeeze through one overlay link, which no overlay
    construction does on purpose.
    """
    if max_fanout < 1:
        raise ValueError("max_fanout must be at least 1")
    others = [node for node in members if node != root]
    if root not in members:
        raise ValueError("root must be one of the members")
    rng = SeededRng(seed, "random-tree")
    join_order = rng.permutation(others)

    parents: Dict[int, int] = {}
    fanout: Dict[int, int] = {root: 0}
    eligible: List[int] = [root]
    for node in join_order:
        if fill_root_first and fanout[root] < max_fanout and root in eligible:
            parent = root
        else:
            parent = rng.choice(eligible)
        parents[node] = parent
        fanout[parent] += 1
        fanout[node] = 0
        if fanout[parent] >= max_fanout:
            eligible.remove(parent)
        eligible.append(node)
    return OverlayTree(root, parents)


def build_balanced_tree(root: int, members: Sequence[int], fanout: int = 4) -> OverlayTree:
    """Build a deterministic balanced ``fanout``-ary tree (useful in tests).

    Nodes are attached breadth-first in member order, giving the minimum
    possible height for the fanout.
    """
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    if root not in members:
        raise ValueError("root must be one of the members")
    others = [node for node in members if node != root]
    parents: Dict[int, int] = {}
    frontier: List[int] = [root]
    counts: Dict[int, int] = {root: 0}
    position = 0
    for node in others:
        while counts[frontier[position]] >= fanout:
            position += 1
        parent = frontier[position]
        parents[node] = parent
        counts[parent] += 1
        counts[node] = 0
        frontier.append(node)
    return OverlayTree(root, parents)
