"""The overlay tree abstraction Bullet and RanSub run on top of.

Bullet "layers a mesh on top of an original overlay tree" and only needs the
tree for (i) baseline parent->child streaming and (ii) RanSub's collect /
distribute paths.  The tree here is a parent map over overlay participants
(which are physical client hosts of the topology), with the traversal and
subtree queries RanSub and the disjoint-send logic require: children,
descendants, descendant counts, non-descendants and depth.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple


class OverlayTree:
    """A rooted overlay tree over a fixed set of member nodes."""

    def __init__(self, root: int, parents: Dict[int, int]) -> None:
        self.root = root
        self._parents: Dict[int, int] = dict(parents)
        if root in self._parents:
            raise ValueError("the root must not have a parent")
        self._children: Dict[int, List[int]] = {root: []}
        for node in self._parents:
            self._children.setdefault(node, [])
        for node, parent in self._parents.items():
            if parent not in self._children:
                raise ValueError(f"parent {parent} of node {node} is not a tree member")
            self._children[parent].append(node)
        for children in self._children.values():
            children.sort()
        self._validate_acyclic()

    def _validate_acyclic(self) -> None:
        members = self.members()
        reachable: Set[int] = set()
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            if node in reachable:
                raise ValueError("cycle detected in overlay tree")
            reachable.add(node)
            queue.extend(self._children.get(node, []))
        if reachable != set(members):
            unreachable = set(members) - reachable
            raise ValueError(f"nodes unreachable from root: {sorted(unreachable)}")

    # ---------------------------------------------------------------- queries
    def members(self) -> List[int]:
        """All overlay participants, root included."""
        return sorted(self._children.keys())

    def __len__(self) -> int:
        return len(self._children)

    def __contains__(self, node: int) -> bool:
        return node in self._children

    def parent(self, node: int) -> Optional[int]:
        """The node's parent, or ``None`` for the root."""
        return self._parents.get(node)

    def children(self, node: int) -> List[int]:
        """The node's direct children (sorted, possibly empty)."""
        return list(self._children.get(node, []))

    def is_leaf(self, node: int) -> bool:
        """True if the node has no children."""
        return not self._children.get(node)

    def leaves(self) -> List[int]:
        """All leaf nodes."""
        return [node for node in self._children if not self._children[node]]

    def depth(self, node: int) -> int:
        """Number of tree edges from the root to ``node``."""
        depth = 0
        current = node
        while current != self.root:
            parent = self._parents.get(current)
            if parent is None:
                raise KeyError(f"node {current} is not in the tree")
            current = parent
            depth += 1
        return depth

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self.depth(node) for node in self._children)

    def descendants(self, node: int) -> List[int]:
        """All nodes strictly below ``node``."""
        result: List[int] = []
        queue = deque(self._children.get(node, []))
        while queue:
            current = queue.popleft()
            result.append(current)
            queue.extend(self._children.get(current, []))
        return result

    def descendant_count(self, node: int) -> int:
        """Number of strict descendants (what RanSub's collect phase counts)."""
        return len(self.descendants(node))

    def subtree(self, node: int) -> List[int]:
        """``node`` plus all of its descendants."""
        return [node] + self.descendants(node)

    def non_descendants(self, node: int) -> List[int]:
        """Members outside the subtree rooted at ``node`` (excluding the node).

        This is the population RanSub-nondescendants draws distribute sets
        from for ``node``.
        """
        below = set(self.subtree(node))
        return [member for member in self._children if member not in below]

    def ancestors(self, node: int) -> List[int]:
        """Path of ancestors from the node's parent up to the root."""
        result: List[int] = []
        current = node
        while current != self.root:
            parent = self._parents.get(current)
            if parent is None:
                raise KeyError(f"node {current} is not in the tree")
            result.append(parent)
            current = parent
        return result

    def path_from_root(self, node: int) -> List[int]:
        """Nodes from the root down to ``node`` inclusive."""
        return list(reversed([node] + self.ancestors(node)))

    def edges(self) -> List[Tuple[int, int]]:
        """All (parent, child) tree edges."""
        return [(parent, child) for child, parent in self._parents.items()]

    def max_fanout(self) -> int:
        """Largest number of children at any node."""
        return max((len(children) for children in self._children.values()), default=0)

    def best_join_parent(self, exclude: Iterable[int] = ()) -> int:
        """The member a mid-run joiner should attach under.

        One policy shared by every tree-based system so identical workloads
        grow identical trees: the non-excluded member with the fewest
        children (preferring members under the tree's current fanout
        ceiling), shallowest first, lowest id on ties — flash crowds grow a
        balanced tree instead of a chain.
        """
        excluded = set(exclude)
        candidates = [member for member in self._children if member not in excluded]
        if not candidates:
            raise ValueError("no live member available as a join parent")
        limit = max(2, self.max_fanout())
        under_limit = [
            member for member in candidates if len(self._children[member]) < limit
        ]
        pool = under_limit or candidates
        return min(
            pool, key=lambda m: (len(self._children[m]), self.depth(m), m)
        )

    # ------------------------------------------------------------- mutations
    def add_leaf(self, node: int, parent: int) -> None:
        """Attach a new member as a leaf under ``parent`` (a mid-run join).

        The systems' ``add_node`` implementations use this to grow the
        overlay while the stream is live; the new member starts with no
        children.
        """
        if node in self._children:
            raise ValueError(f"node {node} is already a tree member")
        if parent not in self._children:
            raise ValueError(f"parent {parent} is not a tree member")
        self._parents[node] = parent
        self._children[node] = []
        children = self._children[parent]
        children.append(node)
        children.sort()

    def remove_subtree(self, node: int) -> List[int]:
        """Remove ``node`` and its whole subtree (models an unrecovered failure)."""
        if node == self.root:
            raise ValueError("cannot remove the root")
        removed = self.subtree(node)
        removed_set = set(removed)
        parent = self._parents[node]
        self._children[parent] = [child for child in self._children[parent] if child != node]
        for member in removed:
            self._parents.pop(member, None)
            self._children.pop(member, None)
        # Defensive: no surviving node should reference a removed parent.
        for member, member_parent in list(self._parents.items()):
            if member_parent in removed_set:
                raise RuntimeError("remove_subtree left an orphaned node")
        return removed

    def remove_node_reparent_children(self, node: int) -> List[int]:
        """Remove one node, reattaching its children to the node's parent.

        Models a tree-repair transformation some overlays perform; Bullet's
        failure experiments deliberately do *not* use it (worst case), but the
        baselines and tests do.
        """
        if node == self.root:
            raise ValueError("cannot remove the root")
        parent = self._parents[node]
        orphans = self._children.get(node, [])
        for child in orphans:
            self._parents[child] = parent
            self._children[parent].append(child)
        self._children[parent] = sorted(
            child for child in self._children[parent] if child != node
        )
        self._parents.pop(node)
        self._children.pop(node)
        return orphans

    def copy(self) -> "OverlayTree":
        """An independent copy of the tree."""
        return OverlayTree(self.root, dict(self._parents))

    def as_parent_map(self) -> Dict[int, int]:
        """The underlying parent map (copy)."""
        return dict(self._parents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayTree(root={self.root}, members={len(self)}, height={self.height()})"


def tree_from_parent_map(root: int, parents: Dict[int, int]) -> OverlayTree:
    """Convenience constructor mirroring :class:`OverlayTree`'s signature."""
    return OverlayTree(root, parents)


def validate_spans(tree: OverlayTree, members: Iterable[int]) -> None:
    """Raise if the tree does not span exactly the given member set."""
    expected = set(members)
    actual = set(tree.members())
    if expected != actual:
        missing = expected - actual
        extra = actual - expected
        raise ValueError(f"tree does not span members (missing={missing}, extra={extra})")
