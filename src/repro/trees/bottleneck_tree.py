"""The offline greedy bottleneck-bandwidth tree (Section 4.1, OMBT).

The paper's strongest tree baseline: given complete topology knowledge, grow
a tree that maximizes the minimum-throughput overlay link.  The estimate of
an overlay link's throughput follows the paper's assumptions exactly:

1. routing between overlay participants is fixed (the topology's routes);
2. data moves over TCP-friendly unicast connections;
3. a flow's stand-alone rate is the steady-state TCP formula evaluated at the
   path RTT and the path loss rate;
4. when ``n`` tree flows share a physical link each gets at most ``c / n``.

The throughput of a candidate overlay link is the minimum of the formula rate
and the per-link fair shares along its routing path, given the flows already
placed in the tree.  The greedy construction is Prim-like (the Widest Path
Heuristic): repeatedly attach the outside node whose best overlay link into
the current tree has the highest estimated throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.graph import Topology
from repro.transport.tcp_model import tcp_throughput_kbps
from repro.trees.tree import OverlayTree


@dataclass
class _CandidateLink:
    """One candidate overlay edge from a tree member to an outside node."""

    src: int
    dst: int
    throughput_kbps: float


def estimate_overlay_link_throughput(
    topology: Topology,
    src: int,
    dst: int,
    link_flow_counts: Dict[int, int],
    max_fanout_rate_kbps: float = float("inf"),
) -> float:
    """Estimate the TCP-friendly throughput of the overlay link ``src -> dst``.

    ``link_flow_counts`` counts the tree flows already routed over each
    physical link; the candidate flow itself is added on top when computing
    fair shares.
    """
    rtt, loss = topology.round_trip(src, dst)
    formula_rate = tcp_throughput_kbps(max(rtt, 1e-3), loss)
    rate = min(formula_rate, max_fanout_rate_kbps)
    path = topology.path(src, dst)
    for link_index in path.links:
        link = topology.link(link_index)
        competing = link_flow_counts.get(link_index, 0) + 1
        rate = min(rate, link.capacity_kbps / competing)
    return rate


def build_bottleneck_tree(
    topology: Topology,
    root: int,
    members: Sequence[int],
    max_fanout: Optional[int] = None,
) -> OverlayTree:
    """Greedy OMBT construction over ``members`` rooted at ``root``.

    At each step every overlay link from an in-tree node to an outside node is
    scored with :func:`estimate_overlay_link_throughput`; the outside node
    with the single best link is attached via that link and the physical links
    along its routing path are charged one more flow.  Like the paper's
    algorithm, throughputs of already-attached nodes are not re-examined.
    """
    member_set = list(dict.fromkeys(members))
    if root not in member_set:
        raise ValueError("root must be one of the members")
    # The greedy scores every in-tree × outside pair, in both directions
    # (RTT).  One shortest-path-tree solve per member up front replaces the
    # O(members²) per-pair solves the scoring loop would otherwise trigger.
    topology.warm_routes(member_set)
    outside = [node for node in member_set if node != root]

    parents: Dict[int, int] = {}
    in_tree: List[int] = [root]
    fanout: Dict[int, int] = {node: 0 for node in member_set}
    link_flow_counts: Dict[int, int] = {}

    while outside:
        best: Optional[_CandidateLink] = None
        for src in in_tree:
            if max_fanout is not None and fanout[src] >= max_fanout:
                continue
            for dst in outside:
                throughput = estimate_overlay_link_throughput(
                    topology, src, dst, link_flow_counts
                )
                if best is None or throughput > best.throughput_kbps:
                    best = _CandidateLink(src=src, dst=dst, throughput_kbps=throughput)
        if best is None:
            raise ValueError(
                "no eligible attachment point; max_fanout is too small for the member count"
            )
        parents[best.dst] = best.src
        fanout[best.src] += 1
        in_tree.append(best.dst)
        outside.remove(best.dst)
        for link_index in topology.path(best.src, best.dst).links:
            link_flow_counts[link_index] = link_flow_counts.get(link_index, 0) + 1

    return OverlayTree(root, parents)


def tree_bottleneck_estimate(
    topology: Topology, tree: OverlayTree
) -> Tuple[float, Dict[Tuple[int, int], float]]:
    """Estimate each tree edge's throughput and the overall bottleneck.

    Used to sanity-check the greedy construction and in tests: the returned
    bottleneck is the quantity OMBT greedily maximizes.
    """
    topology.warm_routes(list(tree.members()))
    link_flow_counts: Dict[int, int] = {}
    for parent, child in tree.edges():
        for link_index in topology.path(parent, child).links:
            link_flow_counts[link_index] = link_flow_counts.get(link_index, 0) + 1

    per_edge: Dict[Tuple[int, int], float] = {}
    for parent, child in tree.edges():
        rtt, loss = topology.round_trip(parent, child)
        rate = tcp_throughput_kbps(max(rtt, 1e-3), loss)
        for link_index in topology.path(parent, child).links:
            link = topology.link(link_index)
            rate = min(rate, link.capacity_kbps / link_flow_counts[link_index])
        per_edge[(parent, child)] = rate
    bottleneck = min(per_edge.values()) if per_edge else float("inf")
    return bottleneck, per_edge
