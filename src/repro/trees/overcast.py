"""An Overcast-like online bandwidth-optimizing tree (Section 4.2 reference).

The paper notes: "we built a simple bandwidth optimizing overlay tree
construction based on Overcast.  The resulting dynamically constructed trees
never achieved more than 75% of the bandwidth of our own offline algorithm."

Overcast's join rule: a node joins at the root and repeatedly migrates down —
it moves under a child of its current parent whenever doing so does not
reduce its measured bandwidth back to the root (preferring deeper positions
to relieve the root), and stops when no child qualifies.  Here "measured
bandwidth" is the bottleneck capacity of the overlay path from the root
through the prospective parent, estimated from the topology the way an
online probe would see it (without global knowledge of competing flows).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.topology.graph import Topology
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng


def _probe_bandwidth(topology: Topology, src: int, dst: int) -> float:
    """What an online bandwidth probe between two hosts would report.

    Online systems cannot see other overlay flows ahead of time, so the probe
    reports the bottleneck physical capacity of the path — optimistic compared
    to the offline algorithm's fair-share-aware estimate, which is one reason
    Overcast-style trees underperform OMBT.
    """
    return topology.path(src, dst).bottleneck_kbps


def build_overcast_tree(
    topology: Topology,
    root: int,
    members: Sequence[int],
    max_fanout: int = 6,
    bandwidth_tolerance: float = 0.9,
    seed: int = 1,
) -> OverlayTree:
    """Build an Overcast-like tree by sequential joins with downward migration.

    ``bandwidth_tolerance`` is the fraction of the current root-bandwidth a
    deeper position must preserve for the node to migrate under a sibling
    (Overcast uses "does not reduce", i.e. tolerance 1.0; a slightly smaller
    default keeps trees from becoming degenerate chains on uniform topologies).
    """
    if not 0.0 < bandwidth_tolerance <= 1.0:
        raise ValueError("bandwidth_tolerance must be in (0, 1]")
    if max_fanout < 1:
        raise ValueError("max_fanout must be at least 1")
    if root not in members:
        raise ValueError("root must be one of the members")

    rng = SeededRng(seed, "overcast")
    join_order = rng.permutation([node for node in members if node != root])

    parents: Dict[int, int] = {}
    children: Dict[int, List[int]] = {root: []}

    def root_bandwidth_via(node: int, parent: int) -> float:
        """Bandwidth from the root to ``node`` if attached under ``parent``."""
        bandwidth = _probe_bandwidth(topology, parent, node)
        current = parent
        while current != root:
            upstream = parents[current]
            bandwidth = min(bandwidth, _probe_bandwidth(topology, upstream, current))
            current = upstream
        return bandwidth

    for node in join_order:
        parent = root
        bandwidth = root_bandwidth_via(node, parent)
        # Migrate down while some child of the current parent preserves
        # (almost all of) the bandwidth back to the root.
        while True:
            candidates = [child for child in children.get(parent, []) if child != node]
            best_child: Optional[int] = None
            best_bandwidth = 0.0
            for child in candidates:
                via_child = root_bandwidth_via(node, child)
                if via_child > best_bandwidth:
                    best_child, best_bandwidth = child, via_child
            if best_child is not None and best_bandwidth >= bandwidth_tolerance * bandwidth:
                parent, bandwidth = best_child, best_bandwidth
                continue
            if len(children.get(parent, [])) >= max_fanout and candidates:
                # No room at this parent: fall through to the least-loaded child.
                parent = min(candidates, key=lambda child: len(children.get(child, [])))
                bandwidth = root_bandwidth_via(node, parent)
                continue
            break
        parents[node] = parent
        children.setdefault(parent, []).append(node)
        children.setdefault(node, [])

    return OverlayTree(root, parents)
