"""The fluid network simulator: flows, max-min fair allocation, timers and
statistics collection."""

from repro.network.allocation import AllocationEngine, EngineStats
from repro.network.control import ControlChannel, ControlMessage
from repro.network.events import EventScheduler, PeriodicTimer
from repro.network.fairshare import (
    SOLVERS,
    AllocationRequest,
    max_min_allocation,
    register_solver,
    resolve_solver,
    single_pass_allocation,
)
from repro.network.flows import Flow, Packet
from repro.network.simulator import NetworkSimulator
from repro.network.stats import NodeCounters, StatsCollector

__all__ = [
    "SOLVERS",
    "AllocationEngine",
    "AllocationRequest",
    "ControlChannel",
    "ControlMessage",
    "EngineStats",
    "EventScheduler",
    "Flow",
    "NetworkSimulator",
    "NodeCounters",
    "Packet",
    "PeriodicTimer",
    "StatsCollector",
    "max_min_allocation",
    "register_solver",
    "resolve_solver",
    "single_pass_allocation",
]
