"""The time-stepped fluid network simulator (the ModelNet substitute).

ModelNet routes every emulated packet through core machines that impose
per-link bandwidth, delay and loss.  This simulator reproduces the properties
the evaluation depends on — per-link capacity constraints shared fairly
between competing TCP-friendly flows, path loss, and TFRC's rate adaptation —
at the granularity of a simulation step (default 1 second) rather than per
packet, so thousand-node overlays run in pure Python.

Each step proceeds in three phases driven by the experiment harness:

1. :meth:`NetworkSimulator.begin_step` — flows whose cap may have changed
   (demand writes, TFRC feedback, creation/removal) are re-submitted to the
   incremental :class:`~repro.network.allocation.AllocationEngine`, which
   re-solves the max-min fair allocation for the affected region of the
   flow/link constraint graph only; per-flow non-blocking send budgets are
   refreshed from the result.
2. The protocol layer runs: it consumes packets delivered in the previous
   step and submits new packets through ``flow.try_send``.
3. :meth:`NetworkSimulator.end_step` — packets accepted by each flow are
   subjected to path loss, surviving packets are handed to the destination
   (visible next step), TFRC receives its feedback and the clock advances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.network.allocation import AllocationEngine, EngineStats
from repro.network.fairshare import Solver
from repro.network.flows import Flow
from repro.network.stats import StatsCollector
from repro.topology.graph import Topology
from repro.util.rng import SeededRng
from repro.util.units import PACKET_SIZE_KBITS


class NetworkSimulator:
    """Owns the clock, the active flows and the bandwidth allocation."""

    def __init__(
        self,
        topology: Topology,
        dt: float = 1.0,
        seed: int = 1,
        packet_kbits: float = PACKET_SIZE_KBITS,
        stats: Optional[StatsCollector] = None,
        congestion_loss_rate: float = 0.03,
        congestion_threshold: float = 0.98,
        solver: "str | Solver" = "max_min",
        incremental: bool = True,
    ) -> None:
        """``congestion_loss_rate`` models drop-tail queue drops on saturated
        links: a physical link whose allocated traffic reaches
        ``congestion_threshold`` of its capacity drops roughly this fraction
        of every crossing flow's packets.  ModelNet (the paper's emulation
        substrate) emulates exactly such queues, and the resulting losses —
        which compound hop-by-hop down a streaming tree and which TFRC reacts
        to — are central to the tree-vs-mesh comparison.  Set the rate to 0 to
        disable congestion losses.

        ``solver`` names the bandwidth solver (``max_min``, ``single_pass`` or
        any callable/registered solver).  ``incremental=True`` (the default)
        re-solves only flows affected by cap or membership changes each step;
        ``incremental=False`` forces a from-scratch solve every step (the
        original behaviour, kept as the reference mode for benchmarks and
        equivalence tests)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not 0.0 <= congestion_loss_rate < 1.0:
            raise ValueError("congestion_loss_rate must be in [0, 1)")
        if not 0.0 < congestion_threshold <= 1.0:
            raise ValueError("congestion_threshold must be in (0, 1]")
        self.topology = topology
        self.dt = dt
        self.packet_kbits = packet_kbits
        self.time: float = 0.0
        self.stats = stats if stats is not None else StatsCollector(packet_kbits)
        self._flows: Dict[int, Flow] = {}
        self._loss_rng = SeededRng(seed, "loss-draws")
        self._step_count = 0
        self.congestion_loss_rate = congestion_loss_rate
        self.congestion_threshold = congestion_threshold
        self._congested_links: set[int] = set()
        self.incremental = incremental
        self._engine = AllocationEngine(topology.capacity_map(), solver=solver)
        self._capacity_version = topology.capacity_version

    # ----------------------------------------------------------- flow control
    def create_flow(
        self,
        src: int,
        dst: int,
        label: str = "",
        demand_kbps: float = float("inf"),
        use_tfrc: bool = True,
    ) -> Flow:
        """Open a flow between two hosts along the fixed routing path."""
        flow = Flow(
            self.topology,
            src,
            dst,
            label=label,
            packet_kbits=self.packet_kbits,
            demand_kbps=demand_kbps,
            use_tfrc=use_tfrc,
        )
        self._flows[flow.flow_id] = flow
        return flow

    def remove_flow(self, flow: Flow) -> None:
        """Close and forget a flow."""
        flow.close()
        self._flows.pop(flow.flow_id, None)
        self._engine.retire(flow.flow_id)

    @property
    def flows(self) -> List[Flow]:
        """All currently registered flows."""
        return list(self._flows.values())

    def active_flow_count(self) -> int:
        """Number of flows that currently want to send."""
        return sum(1 for flow in self._flows.values() if flow.active and flow.rate_cap_kbps() > 0)

    # ------------------------------------------------------------------ steps
    def begin_step(self) -> None:
        """Allocate bandwidth to every active flow and refresh send budgets.

        The allocation is incremental: only flows whose rate cap changed
        since the previous step (``Flow.cap_dirty``), plus flows created or
        removed, are re-submitted to the :class:`AllocationEngine`; the
        engine re-solves just the affected region of the constraint graph.
        """
        if self.topology.capacity_version != self._capacity_version:
            self._engine.reset_capacities(self.topology.capacity_map())
            self._capacity_version = self.topology.capacity_version
        engine = self._engine
        incremental = self.incremental
        for flow in self._flows.values():
            if not flow.active:
                engine.retire(flow.flow_id)
            elif not incremental or flow.cap_dirty or not engine.tracks(flow.flow_id):
                # From-scratch mode re-reads every cap unconditionally: it is
                # the oracle the incremental mode is tested against, so it
                # must not depend on the dirty flags being right.
                engine.submit(flow.flow_id, flow.link_indices, flow.rate_cap_kbps())
                flow.cap_dirty = False
        if not self.incremental:
            engine.mark_all_dirty()
        changed = engine.solve()
        allocation = engine.allocation
        for flow in self._flows.values():
            if not flow.active:
                continue
            flow.begin_step(allocation.get(flow.flow_id, 0.0), self.dt)
        if changed:
            self._congested_links = self._find_congested_links(allocation)
        # On clean rounds every allocation is unchanged, so the congested set
        # from the previous step is still exact.

    def _find_congested_links(self, allocation: Mapping[int, float]) -> set:
        """Links whose allocated traffic reaches the congestion threshold."""
        if self.congestion_loss_rate <= 0.0:
            return set()
        load: Dict[int, float] = {}
        for flow in self._flows.values():
            if not flow.active:
                continue
            granted = allocation.get(flow.flow_id, 0.0)
            if granted <= 0:
                continue
            for link in flow.link_indices:
                load[link] = load.get(link, 0.0) + granted
        capacities = self._engine.capacities
        return {
            link
            for link, used in load.items()
            if used >= self.congestion_threshold * capacities.get(link, float("inf"))
        }

    def end_step(self) -> None:
        """Apply loss, deliver surviving packets and advance the clock."""
        for flow in list(self._flows.values()):
            sent = flow.collect_sent()
            if not flow.active:
                # A flow closed mid-step delivers nothing.
                continue
            if not sent:
                flow.deliver([], 0, dt=self.dt)
                continue
            survived: List[int] = []
            lost = 0
            p = flow.path_loss
            if self._congested_links:
                congested_hops = sum(
                    1 for link in flow.link_indices if link in self._congested_links
                )
                if congested_hops:
                    survival = (1.0 - p) * (1.0 - self.congestion_loss_rate) ** congested_hops
                    p = 1.0 - survival
            if p <= 0.0:
                survived = sent
            else:
                for sequence in sent:
                    if self._loss_rng.random() < p:
                        lost += 1
                    else:
                        survived.append(sequence)
            for sequence in survived:
                self.stats.record_link_transmission(sequence, flow.link_indices)
            flow.deliver(survived, lost, dt=self.dt)
        self.time += self.dt
        self._step_count += 1

    def run_steps(
        self, n_steps: int, protocol_phase: Optional[Callable[[float], None]] = None
    ) -> None:
        """Convenience driver: run ``n_steps`` full cycles.

        ``protocol_phase`` is called between :meth:`begin_step` and
        :meth:`end_step` with the current simulated time.
        """
        for _ in range(n_steps):
            self.begin_step()
            if protocol_phase is not None:
                protocol_phase(self.time)
            self.end_step()

    # ------------------------------------------------------------------ misc
    def path_rtt(self, a: int, b: int) -> float:
        """Round-trip time between two hosts on the fixed routes."""
        rtt, _ = self.topology.round_trip(a, b)
        return rtt

    def warm_routes(self, sources, dsts=None) -> int:
        """Pre-resolve underlay routes for a set of hosts (batch API).

        Delegates to the topology's routing engine: one shortest-path-tree
        solve per source, amortized over every destination the source later
        talks to.  Protocol drivers call this ahead of discovery spikes
        (overlay construction, flash-crowd joins) so no Dijkstra runs inside
        the step loop.  No-op in legacy routing mode.
        """
        return self.topology.warm_routes(sources, dsts)

    @property
    def allocation_stats(self) -> EngineStats:
        """Counters from the incremental allocation engine (work avoided)."""
        return self._engine.stats

    @property
    def allocation_engine(self) -> AllocationEngine:
        """The bandwidth allocation engine (read-mostly; used by benchmarks)."""
        return self._engine

    def describe(self) -> Dict[str, float]:
        """Small status summary for logging and debugging."""
        summary = {
            "time_s": self.time,
            "flows": float(len(self._flows)),
            "active_flows": float(self.active_flow_count()),
            "steps": float(self._step_count),
        }
        summary.update(
            {f"alloc_{key}": value for key, value in self._engine.describe().items()}
        )
        summary.update(
            {
                f"routing_{key}": value
                for key, value in self.topology.routing.describe().items()
            }
        )
        return summary
