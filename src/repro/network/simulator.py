"""The time-stepped fluid network simulator (the ModelNet substitute).

ModelNet routes every emulated packet through core machines that impose
per-link bandwidth, delay and loss.  This simulator reproduces the properties
the evaluation depends on — per-link capacity constraints shared fairly
between competing TCP-friendly flows, path loss, and TFRC's rate adaptation —
at the granularity of a simulation step (default 1 second) rather than per
packet, so thousand-node overlays run in pure Python.

Each step proceeds in three phases driven by the experiment harness:

1. :meth:`NetworkSimulator.begin_step` — flows whose cap may have changed
   (demand writes, TFRC feedback, creation/removal) are re-submitted to the
   incremental :class:`~repro.network.allocation.AllocationEngine`, which
   re-solves the max-min fair allocation for the affected region of the
   flow/link constraint graph only; per-flow non-blocking send budgets are
   refreshed from the result.
2. The protocol layer runs: it consumes packets delivered in the previous
   step and submits new packets through ``flow.try_send``.
3. :meth:`NetworkSimulator.end_step` — packets accepted by each flow are
   subjected to path loss, surviving packets are handed to the destination
   (visible next step), TFRC receives its feedback and the clock advances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.network.allocation import AllocationEngine, EngineStats
from repro.network.fairshare import Solver
from repro.network.flows import Flow
from repro.network.stats import StatsCollector
from repro.topology.graph import Topology
from repro.util.rng import SeededRng
from repro.util.units import PACKET_SIZE_KBITS
from repro.analysis.shakeout import tracked_set


class NetworkSimulator:
    """Owns the clock, the active flows and the bandwidth allocation."""

    def __init__(
        self,
        topology: Topology,
        dt: float = 1.0,
        seed: int = 1,
        packet_kbits: float = PACKET_SIZE_KBITS,
        stats: Optional[StatsCollector] = None,
        congestion_loss_rate: float = 0.03,
        congestion_threshold: float = 0.98,
        solver: "str | Solver" = "max_min",
        incremental: bool = True,
        step_engine: bool = False,
    ) -> None:
        """``congestion_loss_rate`` models drop-tail queue drops on saturated
        links: a physical link whose allocated traffic reaches
        ``congestion_threshold`` of its capacity drops roughly this fraction
        of every crossing flow's packets.  ModelNet (the paper's emulation
        substrate) emulates exactly such queues, and the resulting losses —
        which compound hop-by-hop down a streaming tree and which TFRC reacts
        to — are central to the tree-vs-mesh comparison.  Set the rate to 0 to
        disable congestion losses.

        ``solver`` names the bandwidth solver (``max_min``, ``single_pass`` or
        any callable/registered solver).  ``incremental=True`` (the default)
        re-solves only flows affected by cap or membership changes each step;
        ``incremental=False`` forces a from-scratch solve every step (the
        original behaviour, kept as the reference mode for benchmarks and
        equivalence tests).

        ``step_engine=True`` enables the quiescence-aware fast paths from
        :mod:`repro.sched`: flows track their *effective* cap exactly (so a
        feedback round that does not move the binding cap stays clean), the
        default max-min solver runs vectorized, and idle flows evolve their
        TFRC state in one numpy batch instead of per-flow Python loops.  All
        of it is bit-identical to the legacy per-flow path."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not 0.0 <= congestion_loss_rate < 1.0:
            raise ValueError("congestion_loss_rate must be in [0, 1)")
        if not 0.0 < congestion_threshold <= 1.0:
            raise ValueError("congestion_threshold must be in (0, 1]")
        self.topology = topology
        self.dt = dt
        self.packet_kbits = packet_kbits
        self.time: float = 0.0
        self.stats = stats if stats is not None else StatsCollector(packet_kbits)
        self._flows: Dict[int, Flow] = {}
        self._loss_rng = SeededRng(seed, "loss-draws")
        self._step_count = 0
        self.congestion_loss_rate = congestion_loss_rate
        self.congestion_threshold = congestion_threshold
        self._congested_links: set[int] = tracked_set("simulator.congested_links")
        self.incremental = incremental
        self.step_engine = step_engine
        if step_engine and solver == "max_min":
            # The vectorized solver is a bit-identical clone of the scalar
            # reference; only the default solver is swapped (custom solvers
            # keep whatever the caller registered).  The instance caches the
            # flow->link incidence between solves with a stable request set.
            from repro.sched.vectors import VectorizedMaxMinSolver

            solver = VectorizedMaxMinSolver()
        self._engine = AllocationEngine(topology.capacity_map(), solver=solver)
        self._capacity_version = topology.capacity_version
        #: Cached equation-rate targets for idle (nothing-sent) TFRC flows;
        #: constant while a flow stays idle, invalidated on any delivery.
        self._idle_targets: Dict[int, float] = {}

    # ----------------------------------------------------------- flow control
    def create_flow(
        self,
        src: int,
        dst: int,
        label: str = "",
        demand_kbps: float = float("inf"),
        use_tfrc: bool = True,
    ) -> Flow:
        """Open a flow between two hosts along the fixed routing path."""
        flow = Flow(
            self.topology,
            src,
            dst,
            label=label,
            packet_kbits=self.packet_kbits,
            demand_kbps=demand_kbps,
            use_tfrc=use_tfrc,
        )
        flow.exact_dirty = self.step_engine
        self._flows[flow.flow_id] = flow
        return flow

    def remove_flow(self, flow: Flow) -> None:
        """Close and forget a flow."""
        flow.close()
        self._flows.pop(flow.flow_id, None)
        self._engine.retire(flow.flow_id)
        self._idle_targets.pop(flow.flow_id, None)

    @property
    def flows(self) -> List[Flow]:
        """All currently registered flows."""
        return list(self._flows.values())

    def active_flow_count(self) -> int:
        """Number of flows that currently want to send."""
        return sum(1 for flow in self._flows.values() if flow.active and flow.rate_cap_kbps() > 0)

    # ------------------------------------------------------------------ steps
    def begin_step(self) -> None:
        """Allocate bandwidth to every active flow and refresh send budgets.

        The allocation is incremental: only flows whose rate cap changed
        since the previous step (``Flow.cap_dirty``), plus flows created or
        removed, are re-submitted to the :class:`AllocationEngine`; the
        engine re-solves just the affected region of the constraint graph.
        """
        if self.topology.capacity_version != self._capacity_version:
            self._engine.reset_capacities(self.topology.capacity_map())
            self._capacity_version = self.topology.capacity_version
        engine = self._engine
        incremental = self.incremental
        for flow in self._flows.values():
            if not flow.active:
                engine.retire(flow.flow_id)
            elif not incremental or flow.cap_dirty or not engine.tracks(flow.flow_id):
                # From-scratch mode re-reads every cap unconditionally: it is
                # the oracle the incremental mode is tested against, so it
                # must not depend on the dirty flags being right.
                engine.submit(flow.flow_id, flow.link_indices, flow.rate_cap_kbps())
                flow.cap_dirty = False
        if not self.incremental:
            engine.mark_all_dirty()
        changed = engine.solve()
        allocation = engine.allocation
        for flow in self._flows.values():
            if not flow.active:
                continue
            flow.begin_step(allocation.get(flow.flow_id, 0.0), self.dt)
        if changed:
            self._congested_links = tracked_set(
                "simulator.congested_links", self._find_congested_links(allocation)
            )
        # On clean rounds every allocation is unchanged, so the congested set
        # from the previous step is still exact.

    def _find_congested_links(self, allocation: Mapping[int, float]) -> set:
        """Links whose allocated traffic reaches the congestion threshold."""
        if self.congestion_loss_rate <= 0.0:
            return set()
        load: Dict[int, float] = {}
        for flow in self._flows.values():
            if not flow.active:
                continue
            granted = allocation.get(flow.flow_id, 0.0)
            if granted <= 0:
                continue
            for link in flow.link_indices:
                load[link] = load.get(link, 0.0) + granted
        capacities = self._engine.capacities
        return {
            link
            for link, used in load.items()
            if used >= self.congestion_threshold * capacities.get(link, float("inf"))
        }

    def end_step(self) -> None:
        """Apply loss, deliver surviving packets and advance the clock."""
        idle: Optional[List[Flow]] = [] if self.step_engine else None
        batch: Optional[List[tuple]] = [] if self.step_engine else None
        for flow in list(self._flows.values()):
            sent = flow.collect_sent()
            if not flow.active:
                # A flow closed mid-step delivers nothing.
                continue
            if not sent:
                if idle is not None:
                    # Step-engine mode: idle TFRC evolution runs as one numpy
                    # batch after the loop.  Loss draws are unaffected — idle
                    # flows consume no randomness — so the RNG stream stays
                    # in flow-insertion order over the flows that did send.
                    idle.append(flow)
                else:
                    flow.deliver([], 0, dt=self.dt)
                continue
            if idle is not None:
                # Any delivery invalidates the cached idle equation target.
                self._idle_targets.pop(flow.flow_id, None)
            survived: List[int] = []
            lost = 0
            p = flow.path_loss
            if self._congested_links:
                congested_hops = sum(
                    1 for link in flow.link_indices if link in self._congested_links
                )
                if congested_hops:
                    survival = (1.0 - p) * (1.0 - self.congestion_loss_rate) ** congested_hops
                    p = 1.0 - survival
            if p <= 0.0:
                survived = sent
            else:
                for sequence in sent:
                    if self._loss_rng.random() < p:
                        lost += 1
                    else:
                        survived.append(sequence)
            for sequence in survived:
                self.stats.record_link_transmission(sequence, flow.link_indices)
            if batch is not None:
                tfrc = flow.tfrc
                if (
                    tfrc is not None
                    and tfrc.slow_start_gain == 2.0
                    and tfrc.congestion_avoidance_gain == 0.25
                    and tfrc.loss_history.max_intervals == 8
                ):
                    # Step-engine mode: Flow.deliver's bookkeeping happens
                    # here, and its TFRC feedback chunks run as one numpy
                    # batch after the loop (loss draws above already consumed
                    # this flow's randomness, so the RNG stream is unchanged).
                    flow._delivered.extend(survived)
                    flow.packets_delivered += len(survived)
                    flow.packets_lost += lost
                    batch.append((flow, len(survived), lost))
                    continue
            flow.deliver(survived, lost, dt=self.dt)
        if batch:
            self._apply_feedback_batch(batch)
        if idle:
            self._evolve_idle(idle)
        self.time += self.dt
        self._step_count += 1

    def _apply_feedback_batch(self, batch: List[tuple]) -> None:
        """Run the TFRC feedback rounds for all sending flows in one batch.

        Bit-identical to calling ``flow.deliver(survived, lost, dt)`` on each
        flow (minus the delivery bookkeeping, already done in the loop):
        state is gathered out of the authoritative ``TfrcFlowState`` /
        ``LossHistory`` objects, evolved through
        :func:`~repro.sched.vectors.feedback_rounds`, and scattered back —
        including the exact effective-cap dirty tracking from
        :meth:`Flow.deliver`.
        """
        import numpy as np

        from repro.sched.vectors import feedback_rounds
        from repro.transport.tfrc import MIN_RATE_KBPS

        n = len(batch)
        dt = self.dt
        rates: List[float] = []
        slow_start: List[bool] = []
        seen_loss: List[bool] = []
        lengths: List[int] = []
        current: List[int] = []
        received: List[int] = []
        lost: List[int] = []
        chunks: List[int] = []
        rtt: List[float] = []
        size_bytes: List[int] = []
        demand: List[float] = []
        was_clean: List[bool] = []
        intervals = np.zeros((n, 8), dtype=np.float64)
        for index, (flow, flow_received, flow_lost) in enumerate(batch):
            tfrc = flow.tfrc
            history = tfrc.loss_history
            rates.append(tfrc.allowed_rate_kbps)
            slow_start.append(tfrc.in_slow_start)
            seen_loss.append(history._seen_loss)
            closed = history.intervals
            if closed:
                intervals[index, : len(closed)] = closed
            lengths.append(len(closed))
            current.append(history._current)
            received.append(flow_received)
            lost.append(flow_lost)
            count = max(1, min(16, int(round(dt / flow.rtt_s)))) if dt > 0 else 1
            if flow_lost > 0:
                count = min(count, max(flow_lost, 1))
            chunks.append(count)
            rtt.append(flow.rtt_s)
            size_bytes.append(tfrc.packet_size_bytes)
            demand.append(flow.demand_kbps)
            was_clean.append(flow.exact_dirty and not flow.cap_dirty)
        rates_arr = np.asarray(rates, dtype=np.float64)
        demand_arr = np.asarray(demand, dtype=np.float64)
        new_rates, new_ss, new_seen, new_len, new_cur, history_dirty = feedback_rounds(
            rates_arr.copy(),
            np.asarray(slow_start, dtype=bool),
            np.asarray(seen_loss, dtype=bool),
            intervals,
            np.asarray(lengths, dtype=np.int64),
            np.asarray(current, dtype=np.int64),
            np.asarray(received, dtype=np.int64),
            np.asarray(lost, dtype=np.int64),
            np.asarray(chunks, dtype=np.int64),
            np.asarray(rtt, dtype=np.float64),
            np.asarray(size_bytes, dtype=np.float64),
            MIN_RATE_KBPS,
        )
        cap_same = np.minimum(demand_arr, new_rates) == np.minimum(demand_arr, rates_arr)
        for index, (flow, _, _) in enumerate(batch):
            tfrc = flow.tfrc
            tfrc.allowed_rate_kbps = float(new_rates[index])
            tfrc._in_slow_start = bool(new_ss[index])
            history = tfrc.loss_history
            history._current = int(new_cur[index])
            if history_dirty[index]:
                history._seen_loss = True
                history.intervals = [
                    int(value) for value in intervals[index, : int(new_len[index])]
                ]
            if not (was_clean[index] and cap_same[index]):
                flow.cap_dirty = True

    def _evolve_idle(self, idle: List[Flow]) -> None:
        """Advance idle flows' TFRC state in one batch (step-engine mode).

        Bit-identical to calling ``flow.deliver([], 0, dt)`` on each flow:
        flows without TFRC are true no-ops and are skipped outright; standard
        TFRC flows evolve through :func:`~repro.sched.vectors.
        evolve_idle_rates`; anything unusual (non-default gains, a rate below
        the floor) falls back to the scalar path with exact dirty tracking.
        """
        import numpy as np

        from repro.sched.vectors import evolve_idle_rates
        from repro.transport.tfrc import MIN_RATE_KBPS

        batch: List[Flow] = []
        rates: List[float] = []
        slow_start: List[bool] = []
        chunks: List[int] = []
        targets: List[float] = []
        demands: List[float] = []
        was_dirty: List[bool] = []
        idle_targets = self._idle_targets
        dt = self.dt
        for flow in idle:
            tfrc = flow.tfrc
            if tfrc is None:
                continue
            rate = tfrc.allowed_rate_kbps
            if (
                tfrc.slow_start_gain != 2.0
                or tfrc.congestion_avoidance_gain != 0.25
                or rate < MIN_RATE_KBPS
            ):
                # Non-standard state: the scalar path already tracks the
                # effective cap exactly through ``flow.exact_dirty``.
                flow.deliver([], 0, dt=dt)
                continue
            if tfrc.in_slow_start:
                target = 0.0
            else:
                fid = flow.flow_id
                target = idle_targets.get(fid)
                if target is None:
                    target = tfrc.equation_rate_kbps()
                    idle_targets[fid] = target
            batch.append(flow)
            rates.append(rate)
            slow_start.append(tfrc.in_slow_start)
            chunks.append(max(1, min(16, int(round(dt / flow.rtt_s)))))
            targets.append(target)
            demands.append(flow.demand_kbps)
            was_dirty.append(flow.cap_dirty)
        if not batch:
            return
        rates_arr = np.asarray(rates, dtype=np.float64)
        demand_arr = np.asarray(demands, dtype=np.float64)
        new_rates = evolve_idle_rates(
            rates_arr,
            np.asarray(slow_start, dtype=bool),
            np.asarray(chunks, dtype=np.int64),
            np.asarray(targets, dtype=np.float64),
            MIN_RATE_KBPS,
            0.25,
        )
        rate_changed = new_rates != rates_arr
        cap_changed = np.minimum(demand_arr, new_rates) != np.minimum(demand_arr, rates_arr)
        for index, flow in enumerate(batch):
            if rate_changed[index]:
                flow.tfrc.allowed_rate_kbps = float(new_rates[index])
            if cap_changed[index] and not was_dirty[index]:
                flow.cap_dirty = True

    def run_steps(
        self, n_steps: int, protocol_phase: Optional[Callable[[float], None]] = None
    ) -> None:
        """Convenience driver: run ``n_steps`` full cycles.

        ``protocol_phase`` is called between :meth:`begin_step` and
        :meth:`end_step` with the current simulated time.
        """
        for _ in range(n_steps):
            self.begin_step()
            if protocol_phase is not None:
                protocol_phase(self.time)
            self.end_step()

    # ------------------------------------------------------------------ misc
    def path_rtt(self, a: int, b: int) -> float:
        """Round-trip time between two hosts on the fixed routes."""
        rtt, _ = self.topology.round_trip(a, b)
        return rtt

    def warm_routes(self, sources, dsts=None) -> int:
        """Pre-resolve underlay routes for a set of hosts (batch API).

        Delegates to the topology's routing engine: one shortest-path-tree
        solve per source, amortized over every destination the source later
        talks to.  Protocol drivers call this ahead of discovery spikes
        (overlay construction, flash-crowd joins) so no Dijkstra runs inside
        the step loop.  No-op in legacy routing mode.
        """
        return self.topology.warm_routes(sources, dsts)

    @property
    def allocation_stats(self) -> EngineStats:
        """Counters from the incremental allocation engine (work avoided)."""
        return self._engine.stats

    @property
    def allocation_engine(self) -> AllocationEngine:
        """The bandwidth allocation engine (read-mostly; used by benchmarks)."""
        return self._engine

    def describe(self) -> Dict[str, float]:
        """Small status summary for logging and debugging."""
        summary = {
            "time_s": self.time,
            "flows": float(len(self._flows)),
            "active_flows": float(self.active_flow_count()),
            "steps": float(self._step_count),
        }
        summary.update(
            {f"alloc_{key}": value for key, value in self._engine.describe().items()}
        )
        summary.update(
            {
                f"routing_{key}": value
                for key, value in self.topology.routing.describe().items()
            }
        )
        return summary
