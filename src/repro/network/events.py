"""Periodic timers for protocol logic running on the simulation clock.

RanSub epochs, Bloom filter refreshes and peer re-evaluation all fire "every
N seconds" in the paper.  :class:`PeriodicTimer` encapsulates that pattern so
protocol code reads as "if timer.fire(now): ...".  :class:`EventScheduler`
provides one-shot scheduled callbacks (used by the failure injector).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass
class PeriodicTimer:
    """Fires at most once per ``period`` seconds of simulated time."""

    period: float
    #: Offset of the first firing; defaults to one full period after start.
    start_at: Optional[float] = None
    _next_fire: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def fire(self, now: float) -> bool:
        """Return True if the timer is due at time ``now`` (and re-arm it)."""
        if self._next_fire is None:
            self._next_fire = self.start_at if self.start_at is not None else now + self.period
        if now + 1e-12 < self._next_fire:
            return False
        # Re-arm relative to the scheduled time so long steps do not drift.
        while self._next_fire <= now + 1e-12:
            self._next_fire += self.period
        return True

    def prime(self, now: float) -> float:
        """Arm the timer as a ``fire(now)`` call would, without firing it.

        Returns the absolute time of the next firing.  The step engine uses
        this when registering a timer as a wakeup: polling code lazily arms
        on its first ``fire`` call, so a timer that is only *called* when its
        wakeup pops would arm one full period late.  Priming at registration
        time pins the first deadline to the same instant the polling loop
        would have, and gives the wakeup queue a float-exact deadline.
        """
        if self._next_fire is None:
            self._next_fire = self.start_at if self.start_at is not None else now + self.period
        return self._next_fire

    def reset(self, now: float) -> None:
        """Restart the period from ``now``."""
        self._next_fire = now + self.period

    def time_to_next(self, now: float) -> float:
        """Seconds until the next firing (period if never armed)."""
        if self._next_fire is None:
            return self.period if self.start_at is None else max(0.0, self.start_at - now)
        return max(0.0, self._next_fire - now)


class EventScheduler:
    """A tiny priority-queue scheduler for one-shot events on simulated time."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []

    def schedule(self, at_time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``at_time``."""
        if at_time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._queue, (at_time, next(self._counter), callback))

    def run_due(self, now: float) -> int:
        """Run every event scheduled at or before ``now``; returns the count."""
        ran = 0
        while self._queue and self._queue[0][0] <= now + 1e-12:
            _, _, callback = heapq.heappop(self._queue)
            callback()
            ran += 1
        return ran

    def next_time(self) -> Optional[float]:
        """Scheduled time of the earliest pending event (``None`` if empty).

        The step engine uses this as the injector's wakeup deadline: a step
        whose clock is still short of it can skip ``run_due`` outright.
        """
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of events not yet run."""
        return len(self._queue)
