"""Typed control-plane messaging over the simulated network.

In the paper every control message — peering requests and replies, Bloom
filter refreshes, RanSub collect/distribute sets, anti-entropy digests — is
real traffic: it crosses the same physical paths as data and therefore
experiences the same latency and loss.  Section 3.4 (peer eviction) and
Section 4.6 (failure routing) depend on that: a lost peering reply leaves a
half-open peering, a delayed distribute set postpones peer discovery.

:class:`ControlMessage` is the base type every protocol message derives
from; :class:`ControlChannel` carries messages between overlay hosts with
the path latency and loss the :class:`~repro.topology.graph.Topology`
reports, charging delivered bytes to the receiving node's control-overhead
counters (the accounting behind the paper's ~30 Kbps/node claim).

Delivery model
--------------

``send(message, now)`` draws one Bernoulli loss sample over the routing
path (compounding per-link loss, plus the channel's ``extra_loss_rate``
scenario knob) and, if the message survives, schedules it ``path.delay_s``
seconds later.  ``pump(until, dispatch)`` delivers every message due by
``until`` in arrival order; protocol drivers call it once per simulation
step with ``until = now + dt`` so that control exchanges whose real latency
is far below the step size (the common case: millisecond paths, one-second
steps) can cascade — request, reply, refresh — within a single step, while
high-latency control links (delay >= dt) naturally spread over multiple
steps.  Messages to or from a host marked down are dropped, never queued.

The channel never inspects payloads: protocols define their own message
subclasses (peering in :mod:`repro.core.control_messages`, RanSub in
:mod:`repro.ransub.protocol`, the baselines in their own modules) and give
them honest wire sizes via :meth:`ControlMessage.size_bytes`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Optional, Set, Tuple

from repro.network.stats import StatsCollector
from repro.topology.graph import Topology
from repro.util.rng import SeededRng
from repro.analysis.shakeout import tracked_set

#: Fixed per-message header bytes (src, dst, kind tag, length).
CONTROL_HEADER_BYTES: int = 16

#: Signature of channel taps: ``tap(event, time_s, message)`` with event one
#: of ``"sent"``, ``"delivered"`` or ``"dropped"``.
ChannelTap = Callable[[str, float, "ControlMessage"], None]

#: Signature of the dispatch callback ``pump`` hands delivered messages to.
Dispatch = Callable[["ControlMessage"], None]


@dataclass
class ControlMessage:
    """Base class of every control-plane message.

    Subclasses add payload fields, override :attr:`kind` with a short stable
    tag (used in counters and observer taps) and override either
    :meth:`payload_bytes` or :meth:`size_bytes` to declare an honest wire
    size — the channel charges exactly this many bytes to the receiver.
    """

    src: int
    dst: int

    #: Short stable tag identifying the message type in counters and taps.
    kind: ClassVar[str] = "control"

    def payload_bytes(self) -> int:
        """Payload size in bytes (excluding the fixed header)."""
        return 0

    def size_bytes(self) -> int:
        """Total wire size charged to the receiving node."""
        return CONTROL_HEADER_BYTES + self.payload_bytes()


class ControlChannel:
    """Carries control messages between hosts with path latency and loss.

    ``extra_loss_rate`` is a scenario knob applied on top of the routing
    path's own loss (used to study lossy control planes without touching
    the data plane).  ``stats`` (when given) receives
    ``record_control(dst, size_bytes)`` for every *delivered* message, so
    control overhead reflects what actually arrived.
    """

    def __init__(
        self,
        topology: Topology,
        stats: Optional[StatsCollector] = None,
        seed: int = 1,
        extra_loss_rate: float = 0.0,
        min_delay_s: float = 0.0,
    ) -> None:
        if not 0.0 <= extra_loss_rate <= 1.0:
            raise ValueError("extra_loss_rate must be in [0, 1]")
        if min_delay_s < 0:
            raise ValueError("min_delay_s must be non-negative")
        self.topology = topology
        self.stats = stats
        self.extra_loss_rate = extra_loss_rate
        self.min_delay_s = min_delay_s
        self._rng = SeededRng(seed, "control-channel")
        self._queue: List[Tuple[float, int, ControlMessage]] = []
        self._counter = itertools.count()
        self._down: Set[int] = tracked_set("control.down")
        #: Observer taps, called as ``tap(event, time_s, message)``.
        self.taps: List[ChannelTap] = []
        self._exclusive_tap: Optional[ChannelTap] = None
        # Lifetime counters (per message kind and total).  Counters avoid the
        # per-message dict.get dance: the pump runs for every delivered
        # message, which is hot at 500 nodes.
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.delivered_by_kind: Counter = Counter()
        self.dropped_by_kind: Counter = Counter()

    # ------------------------------------------------------------------- send
    def send(self, message: ControlMessage, now: float) -> bool:
        """Submit a message; returns False if it was lost in transit.

        The loss draw happens up front (the fate of a message is decided the
        moment it leaves), but a surviving message only becomes visible to
        the destination once :meth:`pump` passes its arrival time.
        """
        if message.src == message.dst:
            raise ValueError("control messages must travel between two hosts")
        self.sent_count += 1
        if self.taps:
            self._notify("sent", now, message)
        if message.src in self._down or message.dst in self._down:
            self._drop(message, now)
            return False
        path = self.topology.path(message.src, message.dst)
        loss = 1.0 - (1.0 - path.loss_rate) * (1.0 - self.extra_loss_rate)
        if loss > 0.0 and self._rng.random() < loss:
            self._drop(message, now)
            return False
        due = now + max(path.delay_s, self.min_delay_s)
        heapq.heappush(self._queue, (due, next(self._counter), message))
        return True

    def _drop(self, message: ControlMessage, now: float) -> None:
        self.dropped_count += 1
        self.dropped_by_kind[message.kind] += 1
        if self.taps:
            self._notify("dropped", now, message)

    # ---------------------------------------------------------------- deliver
    def pump(self, until: float, dispatch: Dispatch) -> int:
        """Deliver every message due by ``until`` (in arrival order).

        ``dispatch(message)`` may itself call :meth:`send`; newly submitted
        messages whose arrival falls before ``until`` are delivered in the
        same pump, which is how sub-step control cascades resolve.  Returns
        the number of messages delivered.
        """
        delivered = 0
        while self._queue and self._queue[0][0] <= until + 1e-12:
            due, _, message = heapq.heappop(self._queue)
            if message.dst in self._down or message.src in self._down:
                # A crashed host neither receives nor completes its sends:
                # messages still in flight from it die with it.
                self._drop(message, due)
                continue
            self.delivered_count += 1
            self.delivered_by_kind[message.kind] += 1
            if self.stats is not None:
                self.stats.record_control(message.dst, message.size_bytes())
            if self.taps:
                self._notify("delivered", due, message)
            dispatch(message)
            delivered += 1
        return delivered

    # ------------------------------------------------------------------ taps
    def set_exclusive_tap(self, tap: ChannelTap) -> None:
        """Install a tap that replaces any previous exclusive tap.

        Exactly one exclusive tap is live at a time — used by the experiment
        session so that re-driving the same system never stacks stale
        observers.  Taps appended directly to :attr:`taps` are untouched.
        """
        if self._exclusive_tap is not None and self._exclusive_tap in self.taps:
            self.taps.remove(self._exclusive_tap)
        self._exclusive_tap = tap
        self.taps.append(tap)

    # ----------------------------------------------------------------- hosts
    def mark_down(self, node: int) -> None:
        """Mark a host as failed: its queued and future messages are lost."""
        self._down.add(node)

    def is_down(self, node: int) -> bool:
        """Whether a host has been marked down."""
        return node in self._down

    # ------------------------------------------------------------------ misc
    def pending(self) -> int:
        """Messages accepted but not yet delivered (includes ones to down hosts)."""
        return len(self._queue)

    def next_due(self) -> Optional[float]:
        """Arrival time of the earliest queued message (``None`` if empty).

        The step engine treats this as a wakeup deadline: a step whose pump
        horizon falls short of it — and whose outboxes flushed nothing — can
        skip the channel pump entirely.  Messages addressed to down hosts
        still count (they are only discarded at delivery time).
        """
        return self._queue[0][0] if self._queue else None

    def _notify(self, event: str, time_s: float, message: ControlMessage) -> None:
        for tap in self.taps:
            tap(event, time_s, message)

    def describe(self) -> Dict[str, float]:
        """Small status summary for logging and debugging."""
        return {
            "sent": float(self.sent_count),
            "delivered": float(self.delivered_count),
            "dropped": float(self.dropped_count),
            "pending": float(self.pending()),
        }
