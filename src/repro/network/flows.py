"""Overlay flows: the unit of bandwidth allocation in the fluid simulator.

A :class:`Flow` connects two overlay hosts across the fixed routing path the
topology provides.  Each simulation step the allocator grants the flow a rate
(bounded by its demand, its TFRC allowed rate and the max-min fair share of
every physical link it crosses); the flow converts that rate into a packet
budget exposed through the non-blocking sender the protocols use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.topology.graph import PathInfo, Topology
from repro.transport.socket import NonBlockingSender
from repro.transport.tfrc import TfrcFlowState
from repro.util.units import PACKET_SIZE_KBITS

_flow_ids = itertools.count()


@dataclass
class Packet:
    """One data packet in flight: a sequence number plus bookkeeping."""

    sequence: int
    origin: int
    hop_src: int
    hop_dst: int
    sent_at: float


class Flow:
    """A unidirectional overlay flow between two hosts.

    The protocol layer interacts with a flow through three methods:

    * :meth:`set_demand` — how fast the application wants to push data;
    * :meth:`try_send` — non-blocking packet submission (fails when the
      current step's budget is exhausted);
    * :meth:`take_delivered` — packets that arrived since the last call.
    """

    def __init__(
        self,
        topology: Topology,
        src: int,
        dst: int,
        label: str = "",
        packet_kbits: float = PACKET_SIZE_KBITS,
        demand_kbps: float = float("inf"),
        use_tfrc: bool = True,
    ) -> None:
        if src == dst:
            raise ValueError("flow endpoints must differ")
        self.flow_id: int = next(_flow_ids)
        self.src = src
        self.dst = dst
        self.label = label or f"{src}->{dst}"
        self.packet_kbits = packet_kbits
        #: True whenever this flow's rate cap may have changed since the
        #: allocator last saw it (new flow, demand write, TFRC feedback).
        #: The incremental allocation engine skips flows with a clean flag.
        self.cap_dirty: bool = True
        #: Step-engine mode: track the *effective* cap (min of demand and the
        #: TFRC rate) exactly, so a demand write or feedback round that does
        #: not move the binding cap leaves the flow clean.  Off by default —
        #: legacy mode keeps the conservative always-dirty behaviour.
        self.exact_dirty: bool = False
        self._demand_kbps = demand_kbps
        # One engine lookup per direction: the forward path carries the data,
        # the backward path only contributes its delay to the control RTT.
        forward = topology.path(src, dst)
        backward = topology.path(dst, src)
        self.path: PathInfo = forward
        self.rtt_s = max(forward.delay_s + backward.delay_s, 1e-3)
        self.path_loss = forward.loss_rate
        self.tfrc: Optional[TfrcFlowState] = (
            TfrcFlowState(rtt_s=self.rtt_s) if use_tfrc else None
        )
        self.sender = NonBlockingSender()
        self.allocated_kbps: float = 0.0
        self.active: bool = True
        self._delivered: List[int] = []
        self._in_flight: List[int] = []
        # Cumulative counters for statistics.
        self.packets_sent: int = 0
        self.packets_delivered: int = 0
        self.packets_lost: int = 0

    # ------------------------------------------------------------------- app
    @property
    def demand_kbps(self) -> float:
        """How fast the application wants to send over this flow (Kbps)."""
        return self._demand_kbps

    @demand_kbps.setter
    def demand_kbps(self, value: float) -> None:
        if self.exact_dirty and not self.cap_dirty:
            before = self.rate_cap_kbps()
            self._demand_kbps = value
            if self.rate_cap_kbps() != before:
                self.cap_dirty = True
        else:
            self._demand_kbps = value
            self.cap_dirty = True

    def set_demand(self, demand_kbps: float) -> None:
        """Set how fast the application wants to send over this flow."""
        if demand_kbps < 0:
            raise ValueError("demand must be non-negative")
        self.demand_kbps = demand_kbps

    def mark_cap_dirty(self) -> None:
        """Tell the allocator this flow's cap changed through a side channel.

        ``set_demand`` and TFRC feedback flag the flow automatically; call
        this only after mutating :attr:`tfrc` (or other cap inputs) directly.
        """
        self.cap_dirty = True

    def try_send(self, sequence: int) -> bool:
        """Submit one packet to the transport; False means it would block."""
        if not self.active:
            return False
        return self.sender.try_send(sequence)

    def send_budget(self) -> int:
        """Packets the transport will still accept this step."""
        return self.sender.budget

    def take_delivered(self) -> List[int]:
        """Packets that arrived at the destination since the previous call."""
        delivered, self._delivered = self._delivered, []
        return delivered

    # ------------------------------------------------------------- simulator
    def rate_cap_kbps(self) -> float:
        """The binding per-flow cap: min(demand, TFRC allowed rate)."""
        cap = self.demand_kbps
        if self.tfrc is not None:
            cap = min(cap, self.tfrc.rate_cap_kbps())
        return cap

    def begin_step(self, allocated_kbps: float, dt: float) -> None:
        """Record the allocation and refresh the non-blocking send budget."""
        self.allocated_kbps = allocated_kbps
        packets_per_step = allocated_kbps * dt / self.packet_kbits
        self.sender.refresh(packets_per_step)

    def collect_sent(self) -> List[int]:
        """Drain the packets accepted by the transport during this step."""
        sent = self.sender.drain()
        self.packets_sent += len(sent)
        return sent

    def deliver(self, sequences: List[int], lost: int, dt: float = 1.0) -> None:
        """Called by the simulator at end of step with surviving packets.

        TFRC receivers report feedback once per RTT, and one-or-more losses
        per RTT count as a single loss event.  A simulation step usually spans
        many RTTs, so the step's packets are split into per-RTT feedback
        chunks before being fed to the rate controller — otherwise a heavily
        lossy step would register as just one loss event and TFRC would badly
        under-react to congestion.
        """
        self._delivered.extend(sequences)
        self.packets_delivered += len(sequences)
        self.packets_lost += lost
        if self.tfrc is None:
            return
        exact = self.exact_dirty and not self.cap_dirty
        cap_before = self.rate_cap_kbps() if exact else 0.0
        # Feedback is about to mutate the TFRC allowed rate; the allocator
        # must re-read this flow's cap next step (unless exact tracking shows
        # the binding cap did not move).
        self.cap_dirty = True
        received = len(sequences)
        chunks = max(1, min(16, int(round(dt / self.rtt_s)))) if dt > 0 else 1
        chunks = min(chunks, max(lost, 1)) if lost > 0 else chunks
        for index in range(chunks):
            chunk_received = received // chunks + (1 if index < received % chunks else 0)
            chunk_lost = lost // chunks + (1 if index < lost % chunks else 0)
            self.tfrc.on_feedback(received_packets=chunk_received, lost_packets=chunk_lost)
        if exact and self.rate_cap_kbps() == cap_before:
            self.cap_dirty = False

    def close(self) -> None:
        """Mark the flow inactive; the simulator drops it on the next step."""
        self.active = False

    # ------------------------------------------------------------------ misc
    @property
    def link_indices(self) -> Tuple[int, ...]:
        """Physical links the flow traverses, in path order."""
        return self.path.links

    def achieved_kbps(self, elapsed_s: float) -> float:
        """Average goodput since the start of the flow's life."""
        if elapsed_s <= 0:
            return 0.0
        return self.packets_delivered * self.packet_kbits / elapsed_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow({self.label}, alloc={self.allocated_kbps:.1f} Kbps, "
            f"sent={self.packets_sent}, delivered={self.packets_delivered})"
        )
