"""Max-min fair bandwidth allocation across physical links.

The simulator assumes (like the paper's own throughput estimator in Section
4.1) that competing TCP-friendly flows sharing a physical link each obtain a
fair share of its capacity.  The allocator below computes the classic max-min
fair allocation by progressive filling, with per-flow rate caps (the minimum
of application demand and the TFRC allowed rate):

1. raise every unfrozen flow's rate at the same pace;
2. when a link saturates, freeze all flows crossing it;
3. when a flow reaches its cap, freeze that flow;
4. repeat until every flow is frozen.

The implementation freezes whole groups per iteration so the number of
iterations is bounded by the number of distinct bottlenecks, not the number
of flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Numerical slack used when deciding whether a link is saturated.
_EPSILON = 1e-9


@dataclass
class AllocationRequest:
    """One flow's view for the allocator: its path and its rate cap."""

    flow_key: int
    link_indices: Sequence[int]
    cap_kbps: float


def max_min_allocation(
    requests: Sequence[AllocationRequest],
    link_capacity_kbps: Dict[int, float],
    max_iterations: int = 10_000,
) -> Dict[int, float]:
    """Compute the max-min fair allocation for ``requests``.

    ``link_capacity_kbps`` maps a physical link index to its capacity.  Links
    a flow references but that are missing from the map are treated as
    unconstrained.  Returns a map from ``flow_key`` to allocated Kbps.
    """
    allocation: Dict[int, float] = {request.flow_key: 0.0 for request in requests}
    if not requests:
        return allocation

    active: List[AllocationRequest] = []
    for request in requests:
        if request.cap_kbps <= _EPSILON:
            allocation[request.flow_key] = 0.0
        else:
            active.append(request)

    remaining: Dict[int, float] = {}
    flows_on_link: Dict[int, int] = {}
    for request in active:
        for link in request.link_indices:
            if link in link_capacity_kbps:
                remaining.setdefault(link, link_capacity_kbps[link])
                flows_on_link[link] = flows_on_link.get(link, 0) + 1

    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        # The uniform rate increment every unfrozen flow can still absorb.
        increment = min(request.cap_kbps - allocation[request.flow_key] for request in active)
        for link, count in flows_on_link.items():
            if count > 0:
                increment = min(increment, remaining[link] / count)
        if increment < 0:
            increment = 0.0

        saturated_links: List[int] = []
        for request in active:
            allocation[request.flow_key] += increment
        for link, count in list(flows_on_link.items()):
            if count > 0:
                remaining[link] -= increment * count
                if remaining[link] <= _EPSILON:
                    saturated_links.append(link)
        saturated_set = set(saturated_links)

        still_active: List[AllocationRequest] = []
        for request in active:
            at_cap = allocation[request.flow_key] >= request.cap_kbps - _EPSILON
            blocked = any(link in saturated_set for link in request.link_indices)
            if at_cap or blocked:
                for link in request.link_indices:
                    if link in flows_on_link:
                        flows_on_link[link] -= 1
            else:
                still_active.append(request)
        if len(still_active) == len(active) and increment <= _EPSILON:
            # No progress is possible (degenerate caps); stop to avoid looping.
            break
        active = still_active

    return allocation


def single_pass_allocation(
    requests: Sequence[AllocationRequest],
    link_capacity_kbps: Dict[int, float],
) -> Dict[int, float]:
    """The paper's simpler estimate: rate = min over path links of c/n, capped.

    This is the "each flow can achieve throughput of at most c/n" assumption
    the offline bottleneck tree uses.  Exposed for the OMBT implementation and
    for cross-checking the max-min allocator in tests.
    """
    flows_on_link: Dict[int, int] = {}
    for request in requests:
        for link in request.link_indices:
            if link in link_capacity_kbps:
                flows_on_link[link] = flows_on_link.get(link, 0) + 1

    allocation: Dict[int, float] = {}
    for request in requests:
        rate = request.cap_kbps
        for link in request.link_indices:
            if link in link_capacity_kbps:
                rate = min(rate, link_capacity_kbps[link] / flows_on_link[link])
        allocation[request.flow_key] = max(rate, 0.0)
    return allocation
