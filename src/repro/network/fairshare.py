"""Max-min fair bandwidth allocation across physical links.

The simulator assumes (like the paper's own throughput estimator in Section
4.1) that competing TCP-friendly flows sharing a physical link each obtain a
fair share of its capacity.  The allocator below computes the classic max-min
fair allocation by progressive filling, with per-flow rate caps (the minimum
of application demand and the TFRC allowed rate):

1. raise every unfrozen flow's rate at the same pace;
2. when a link saturates, freeze all flows crossing it;
3. when a flow reaches its cap, freeze that flow;
4. repeat until every flow is frozen.

The implementation freezes whole groups per iteration so the number of
iterations is bounded by the number of distinct bottlenecks, not the number
of flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

#: Numerical slack used when deciding whether a link is saturated.
_EPSILON = 1e-9


@dataclass
class AllocationRequest:
    """One flow's view for the allocator: its path and its rate cap."""

    flow_key: int
    link_indices: Sequence[int]
    cap_kbps: float


def max_min_allocation(
    requests: Sequence[AllocationRequest],
    link_capacity_kbps: Dict[int, float],
    max_iterations: int = 10_000,
) -> Dict[int, float]:
    """Compute the max-min fair allocation for ``requests``.

    ``link_capacity_kbps`` maps a physical link index to its capacity.  Links
    a flow references but that are missing from the map are treated as
    unconstrained.  Returns a map from ``flow_key`` to allocated Kbps.
    """
    allocation: Dict[int, float] = {request.flow_key: 0.0 for request in requests}
    if not requests:
        return allocation

    active: List[AllocationRequest] = []
    for request in requests:
        if request.cap_kbps <= _EPSILON:
            allocation[request.flow_key] = 0.0
        else:
            active.append(request)

    remaining: Dict[int, float] = {}
    flows_on_link: Dict[int, int] = {}
    for request in active:
        for link in request.link_indices:
            if link in link_capacity_kbps:
                remaining.setdefault(link, link_capacity_kbps[link])
                flows_on_link[link] = flows_on_link.get(link, 0) + 1

    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        # The uniform rate increment every unfrozen flow can still absorb.
        increment = min(request.cap_kbps - allocation[request.flow_key] for request in active)
        for link, count in flows_on_link.items():
            if count > 0:
                increment = min(increment, remaining[link] / count)
        if increment < 0:
            increment = 0.0

        saturated_links: List[int] = []
        for request in active:
            allocation[request.flow_key] += increment
        for link, count in flows_on_link.items():
            if count > 0:
                remaining[link] -= increment * count
                if remaining[link] <= _EPSILON:
                    saturated_links.append(link)
        # Retire saturated links from the working maps *before* freezing the
        # flows that cross them.  Freezing then only decrements links still in
        # play: a frozen flow can never drive a just-saturated link's count
        # negative (every crossing flow freezes this round) and stale counts
        # cannot leak into later rounds' increment computation.
        saturated_set = set(saturated_links)
        for link in saturated_links:
            del flows_on_link[link]
            del remaining[link]

        still_active: List[AllocationRequest] = []
        for request in active:
            at_cap = allocation[request.flow_key] >= request.cap_kbps - _EPSILON
            blocked = any(link in saturated_set for link in request.link_indices)
            if at_cap or blocked:
                for link in request.link_indices:
                    count = flows_on_link.get(link)
                    if count is not None:
                        flows_on_link[link] = count - 1
            else:
                still_active.append(request)
        if len(still_active) == len(active) and increment <= _EPSILON:
            # No progress is possible (degenerate caps); stop to avoid looping.
            break
        active = still_active

    return allocation


def single_pass_allocation(
    requests: Sequence[AllocationRequest],
    link_capacity_kbps: Dict[int, float],
) -> Dict[int, float]:
    """The paper's simpler estimate: rate = min over path links of c/n, capped.

    This is the "each flow can achieve throughput of at most c/n" assumption
    the offline bottleneck tree uses.  Exposed for the OMBT implementation and
    for cross-checking the max-min allocator in tests.

    Flows whose cap is (numerically) zero receive 0.0 and — like in
    :func:`max_min_allocation` — do not consume a share of any link, so both
    solvers agree on which flows contend for capacity.
    """
    flows_on_link: Dict[int, int] = {}
    for request in requests:
        if request.cap_kbps <= _EPSILON:
            continue
        for link in request.link_indices:
            if link in link_capacity_kbps:
                flows_on_link[link] = flows_on_link.get(link, 0) + 1

    allocation: Dict[int, float] = {}
    for request in requests:
        if request.cap_kbps <= _EPSILON:
            allocation[request.flow_key] = 0.0
            continue
        rate = request.cap_kbps
        for link in request.link_indices:
            if link in link_capacity_kbps:
                rate = min(rate, link_capacity_kbps[link] / flows_on_link[link])
        allocation[request.flow_key] = max(rate, 0.0)
    return allocation


#: A bandwidth solver: (requests, link capacities) -> per-flow Kbps.
Solver = Callable[[Sequence[AllocationRequest], Dict[int, float]], Dict[int, float]]

#: Named solvers selectable through ``NetworkSimulator(solver=...)`` and
#: ``ExperimentConfig.solver``.  ``max_min`` is the default (and the paper's
#: fairness model); ``single_pass`` is the cheaper c/n estimate.
SOLVERS: Dict[str, Solver] = {
    "max_min": max_min_allocation,
    "single_pass": single_pass_allocation,
}


def register_solver(name: str, solver: Solver, replace: bool = False) -> Solver:
    """Register a bandwidth solver under ``name`` for use by the simulator."""
    if not name or not isinstance(name, str):
        raise ValueError("solver name must be a non-empty string")
    if name in SOLVERS and not replace:
        raise ValueError(f"solver {name!r} is already registered")
    SOLVERS[name] = solver
    return solver


def resolve_solver(solver: "str | Solver") -> Solver:
    """Turn a solver name (or an already-callable solver) into a callable."""
    if callable(solver):
        return solver
    try:
        return SOLVERS[solver]
    except KeyError:
        raise ValueError(
            f"unknown solver {solver!r}; available: {', '.join(sorted(SOLVERS))}"
        ) from None
