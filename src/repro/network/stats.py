"""Per-node and per-link statistics collected during a simulation run.

These counters back every figure in the evaluation:

* per-node *raw* bandwidth (everything received, duplicates included),
  *useful* bandwidth (first copies only) and *from-parent* bandwidth —
  the three series plotted in Figures 7, 10, 13 and 14;
* instantaneous per-node bandwidth for the CDF of Figure 8;
* duplicate ratios and control overhead for the headline claims;
* packet-trace link stress (Section 4.2 reports an average of ~1.5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.units import PACKET_SIZE_KBITS, bytes_to_kbits


@dataclass
class NodeCounters:
    """Cumulative per-node receive counters."""

    raw_packets: int = 0
    useful_packets: int = 0
    duplicate_packets: int = 0
    from_parent_packets: int = 0
    duplicate_from_parent: int = 0
    control_bytes: float = 0.0


class StatsCollector:
    """Aggregates per-step samples into the time series the figures plot."""

    def __init__(self, packet_kbits: float = PACKET_SIZE_KBITS) -> None:
        self.packet_kbits = packet_kbits
        self._counters: Dict[int, NodeCounters] = defaultdict(NodeCounters)
        self._samples: List[Tuple[float, Dict[str, float]]] = []
        self._interval_counters: Dict[int, NodeCounters] = defaultdict(NodeCounters)
        self._per_node_interval: List[Tuple[float, Dict[int, float]]] = []
        self._traced_sequences: set[int] = set()
        self._trace_link_counts: Dict[Tuple[int, int], int] = defaultdict(int)

    # -------------------------------------------------------------- recording
    def record_receive(
        self, node: int, sequence: int, duplicate: bool, from_parent: bool
    ) -> None:
        """Record one received packet at ``node``."""
        for counters in (self._counters[node], self._interval_counters[node]):
            counters.raw_packets += 1
            if duplicate:
                counters.duplicate_packets += 1
                if from_parent:
                    counters.duplicate_from_parent += 1
            else:
                counters.useful_packets += 1
            if from_parent:
                counters.from_parent_packets += 1

    def record_receive_counts(
        self, node: int, useful: int, duplicates: int = 0, from_parent: bool = True
    ) -> None:
        """Record a batch of received packets at ``node`` in one call.

        Equivalent to ``useful + duplicates`` individual
        :meth:`record_receive` calls with the same ``from_parent`` flag, but
        O(1).  The hierarchical overlay uses this: cluster interiors are
        stepped as per-window counts and flushed to stats at step barriers
        rather than packet by packet.
        """
        if useful < 0 or duplicates < 0:
            raise ValueError("packet counts must be non-negative")
        if useful == 0 and duplicates == 0:
            return
        for counters in (self._counters[node], self._interval_counters[node]):
            counters.raw_packets += useful + duplicates
            counters.useful_packets += useful
            counters.duplicate_packets += duplicates
            if from_parent:
                counters.from_parent_packets += useful + duplicates
                counters.duplicate_from_parent += duplicates

    def record_control(self, node: int, n_bytes: float) -> None:
        """Record control-plane bytes charged to ``node``."""
        self._counters[node].control_bytes += n_bytes
        self._interval_counters[node].control_bytes += n_bytes

    def trace_sequences(self, sequences: Iterable[int]) -> None:
        """Mark sequence numbers whose link-level transmissions are traced."""
        self._traced_sequences.update(sequences)

    def record_link_transmission(self, sequence: int, link_indices: Sequence[int]) -> None:
        """Record one overlay transmission of a traced packet over physical links."""
        if sequence not in self._traced_sequences:
            return
        for link in link_indices:
            self._trace_link_counts[(sequence, link)] += 1

    # --------------------------------------------------------------- sampling
    def sample_interval(self, time_s: float, interval_s: float, nodes: Sequence[int]) -> None:
        """Close the current measurement interval and store per-node rates."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        per_node_useful: Dict[int, float] = {}
        totals = {"raw": 0.0, "useful": 0.0, "from_parent": 0.0, "control": 0.0}
        for node in nodes:
            counters = self._interval_counters[node]
            raw = counters.raw_packets * self.packet_kbits / interval_s
            useful = counters.useful_packets * self.packet_kbits / interval_s
            parent = counters.from_parent_packets * self.packet_kbits / interval_s
            control = bytes_to_kbits(counters.control_bytes) / interval_s
            per_node_useful[node] = useful
            totals["raw"] += raw
            totals["useful"] += useful
            totals["from_parent"] += parent
            totals["control"] += control
        count = max(len(nodes), 1)
        sample = {key: value / count for key, value in totals.items()}
        self._samples.append((time_s, sample))
        self._per_node_interval.append((time_s, per_node_useful))
        self._interval_counters = defaultdict(NodeCounters)

    # ----------------------------------------------------------------- output
    def time_series(self, metric: str) -> List[Tuple[float, float]]:
        """Return the averaged per-node series for ``raw``/``useful``/``from_parent``/``control``."""
        return [(time_s, sample[metric]) for time_s, sample in self._samples]

    def per_node_bandwidth_at(self, time_s: float) -> Dict[int, float]:
        """Per-node instantaneous useful bandwidth at the sample closest to ``time_s``."""
        if not self._per_node_interval:
            return {}
        closest = min(self._per_node_interval, key=lambda entry: abs(entry[0] - time_s))
        return dict(closest[1])

    def bandwidth_cdf_at(self, time_s: float) -> List[Tuple[float, float]]:
        """CDF points (bandwidth, fraction of nodes <= bandwidth) at ``time_s``."""
        per_node = self.per_node_bandwidth_at(time_s)
        if not per_node:
            return []
        values = sorted(per_node.values())
        n = len(values)
        return [(value, (index + 1) / n) for index, value in enumerate(values)]

    def node_counters(self, node: int) -> NodeCounters:
        """Cumulative counters for one node."""
        return self._counters[node]

    def duplicate_ratio(self, nodes: Optional[Sequence[int]] = None) -> float:
        """Duplicates as a fraction of all received packets (paper: <10%)."""
        selected = nodes if nodes is not None else list(self._counters)
        raw = sum(self._counters[node].raw_packets for node in selected)
        duplicates = sum(self._counters[node].duplicate_packets for node in selected)
        return duplicates / raw if raw else 0.0

    def control_overhead_kbps(
        self, nodes: Sequence[int], duration_s: float
    ) -> float:
        """Average per-node control overhead in Kbps over the run."""
        if duration_s <= 0 or not nodes:
            return 0.0
        total_bytes = sum(self._counters[node].control_bytes for node in nodes)
        return bytes_to_kbits(total_bytes) / duration_s / len(nodes)

    def average_useful_kbps(self, nodes: Sequence[int], duration_s: float) -> float:
        """Average per-node useful goodput over the whole run."""
        if duration_s <= 0 or not nodes:
            return 0.0
        total = sum(self._counters[node].useful_packets for node in nodes)
        return total * self.packet_kbits / duration_s / len(nodes)

    def link_stress(self) -> Tuple[float, int]:
        """Return (average, maximum) link stress over traced packets.

        Link stress for a traced packet on a physical link is the number of
        distinct overlay transmissions of that packet crossing the link.
        """
        if not self._trace_link_counts:
            return 0.0, 0
        counts = list(self._trace_link_counts.values())
        return sum(counts) / len(counts), max(counts)
