"""Incremental fair-share allocation over the simulator's flow set.

The original simulator re-solved the whole max-min allocation from scratch at
the top of every step — O(bottlenecks × flows × links) work even when nothing
changed — which caps how large an overlay the fluid simulator can carry.  The
:class:`AllocationEngine` makes the hot path incremental:

* it tracks, per flow, the cached constrained-link index array and the last
  submitted rate cap, and per link the set of flows crossing it;
* callers mark flows *dirty* (created, removed, cap changed); unchanged flows
  cost one dict lookup per step;
* a solve only covers the **affected region**: the connected components of
  the flow/link constraint graph reachable from a dirty flow or link.  Flows
  in untouched components keep their previous allocation verbatim;
* when *nothing* is dirty the previous allocation is returned as-is (the
  common case between churn/demand events).

Exactness: the affected region is closed under link sharing, so solving it in
isolation (all affected components in a single solver call, with flows in
creation order) yields the same allocation the solver would produce over the
whole problem — max-min allocations decompose across connected components.
In particular, when every flow is dirty (e.g. TFRC updates every cap every
step, or ``mark_all_dirty`` is used for from-scratch mode) the engine issues
exactly the same solver call the original from-scratch code did, making the
two modes byte-identical on such workloads.

The solver itself is pluggable (:data:`repro.network.fairshare.SOLVERS`):
``max_min`` progressive filling by default, ``single_pass`` for the paper's
cheaper c/n estimate, or any registered callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.analysis.shakeout import tracked_set
from repro.network.fairshare import (
    AllocationRequest,
    Solver,
    max_min_allocation,
    resolve_solver,
)

#: A cap at or below this is treated as "not sending" (matches the solvers).
_EPSILON = 1e-9


@dataclass
class EngineStats:
    """Counters describing how much work the incremental engine avoided."""

    #: Solve rounds driven (one per simulator step).
    steps: int = 0
    #: Rounds that reused the previous allocation verbatim (nothing dirty).
    clean_steps: int = 0
    #: Solver invocations (at most one per dirty round).
    solves: int = 0
    #: Total requests passed to the solver across all invocations.
    flows_solved: int = 0
    #: Total tracked-flow count summed over rounds (for averaging).
    flows_seen: int = 0
    #: Currently tracked flows (gauge).
    flows_tracked: int = 0

    @property
    def clean_fraction(self) -> float:
        """Fraction of rounds that skipped the solver entirely."""
        return self.clean_steps / self.steps if self.steps else 0.0

    @property
    def solve_fraction(self) -> float:
        """Solver requests as a fraction of flow-rounds (1.0 = from-scratch)."""
        return self.flows_solved / self.flows_seen if self.flows_seen else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for logging / benchmark JSON."""
        return {
            "steps": float(self.steps),
            "clean_steps": float(self.clean_steps),
            "solves": float(self.solves),
            "flows_solved": float(self.flows_solved),
            "flows_tracked": float(self.flows_tracked),
            "clean_fraction": self.clean_fraction,
            "solve_fraction": self.solve_fraction,
        }


@dataclass
class _FlowState:
    """Per-flow cached view: constrained links and the last submitted cap."""

    links: Tuple[int, ...]
    cap_kbps: float
    participating: bool = field(default=False)


class AllocationEngine:
    """Incremental bandwidth allocation with dirty-region re-solving.

    The caller drives one *round* per simulation step:

    1. :meth:`submit` every active flow whose cap may have changed (plus every
       new flow); :meth:`retire` flows that closed;
    2. :meth:`solve` — re-solves the affected region, or nothing;
    3. read :attr:`allocation` (flow key → Kbps).

    ``capacities`` maps link index → capacity; the engine never mutates it and
    only flows' links present in the map join the constraint graph.
    """

    def __init__(
        self,
        capacities: Mapping[int, float],
        solver: "str | Solver" = max_min_allocation,
    ) -> None:
        self._capacities: Mapping[int, float] = capacities
        self._solver: Solver = resolve_solver(solver)
        self._state: Dict[int, _FlowState] = {}
        self._allocation: Dict[int, float] = {}
        self._link_flows: Dict[int, Set[int]] = {}
        self._dirty_flows: Set[int] = tracked_set("allocation.dirty_flows")
        self._dirty_links: Set[int] = tracked_set("allocation.dirty_links")
        self._mutated = False
        self.stats = EngineStats()

    # -------------------------------------------------------------- mutation
    @property
    def capacities(self) -> Mapping[int, float]:
        """The link-capacity map the engine allocates against."""
        return self._capacities

    @property
    def allocation(self) -> Mapping[int, float]:
        """Current allocation (flow key → Kbps) for every tracked flow."""
        return self._allocation

    def tracks(self, flow_key: int) -> bool:
        """Whether the engine currently tracks ``flow_key``."""
        return flow_key in self._state

    def submit(self, flow_key: int, link_indices: Sequence[int], cap_kbps: float) -> None:
        """Register ``flow_key``'s current cap (new flows register implicitly).

        ``link_indices`` is only read on first sight of the flow — routing
        paths are fixed for a flow's lifetime, so the constrained-link array
        is cached once.
        """
        state = self._state.get(flow_key)
        if state is None:
            links = tuple(
                link for link in link_indices if link in self._capacities
            )
            state = _FlowState(links=links, cap_kbps=cap_kbps)
            self._state[flow_key] = state
            self._mutated = True
            if cap_kbps > _EPSILON:
                self._join(flow_key, state)
                self._dirty_flows.add(flow_key)
            else:
                self._allocation[flow_key] = 0.0
            return
        if cap_kbps == state.cap_kbps:
            return
        was_participating = state.participating
        state.cap_kbps = cap_kbps
        self._mutated = True
        if cap_kbps > _EPSILON:
            if not was_participating:
                self._join(flow_key, state)
            self._dirty_flows.add(flow_key)
        elif was_participating:
            self._leave(flow_key, state)
            self._allocation[flow_key] = 0.0

    def retire(self, flow_key: int) -> None:
        """Forget a flow (closed or removed); frees its share for others."""
        state = self._state.pop(flow_key, None)
        if state is None:
            return
        self._mutated = True
        if state.participating:
            self._leave(flow_key, state)
        self._allocation.pop(flow_key, None)
        self._dirty_flows.discard(flow_key)

    def mark_flow_dirty(self, flow_key: int) -> None:
        """Force ``flow_key``'s region to re-solve next round."""
        if flow_key in self._state:
            self._dirty_flows.add(flow_key)
            self._mutated = True

    def mark_all_dirty(self) -> None:
        """Force a full from-scratch solve next round (reference mode)."""
        self._mutated = True
        for flow_key, state in self._state.items():
            if state.participating:
                self._dirty_flows.add(flow_key)

    def reset_capacities(self, capacities: Mapping[int, float]) -> None:
        """Swap the capacity map (topology changed); re-solves everything.

        All engine state — cached link arrays, caps and the allocation map —
        is dropped: constrained-link subsets depend on the capacity map, so
        the caller must re-submit every flow (and :attr:`allocation` is empty
        until the next :meth:`solve`).
        """
        self._capacities = capacities
        self._state.clear()
        self._link_flows.clear()
        self._dirty_flows.clear()
        self._dirty_links.clear()
        self._allocation.clear()
        self._mutated = True

    # ------------------------------------------------------------------ solve
    def solve(self) -> bool:
        """Re-solve the dirty region; True if any allocation may have changed.

        Returns False on clean rounds, in which case :attr:`allocation` is
        the previous round's mapping, unchanged.
        """
        stats = self.stats
        stats.steps += 1
        stats.flows_tracked = len(self._state)
        stats.flows_seen += len(self._state)
        if not self._mutated and not self._dirty_flows and not self._dirty_links:
            stats.clean_steps += 1
            return False
        self._mutated = False
        affected = self._affected_flows()
        self._dirty_flows.clear()
        self._dirty_links.clear()
        if affected:
            requests: List[AllocationRequest] = [
                AllocationRequest(
                    flow_key=flow_key,
                    link_indices=state.links,
                    cap_kbps=state.cap_kbps,
                )
                for flow_key, state in self._state.items()
                if flow_key in affected
            ]
            solved = self._solver(requests, self._capacities)
            self._allocation.update(solved)
            stats.solves += 1
            stats.flows_solved += len(requests)
        return True

    # -------------------------------------------------------------- internals
    def _join(self, flow_key: int, state: _FlowState) -> None:
        state.participating = True
        link_flows = self._link_flows
        for link in state.links:
            members = link_flows.get(link)
            if members is None:
                members = set()
                link_flows[link] = members
            members.add(flow_key)

    def _leave(self, flow_key: int, state: _FlowState) -> None:
        """Detach a flow from the graph; its links' sharers must re-solve."""
        state.participating = False
        dirty_links = self._dirty_links
        link_flows = self._link_flows
        for link in state.links:
            members = link_flows.get(link)
            if members is not None:
                members.discard(flow_key)
            dirty_links.add(link)

    def _affected_flows(self) -> Set[int]:
        """Close the dirty seeds under link sharing (BFS over the graph)."""
        state_map = self._state
        link_flows = self._link_flows
        affected: Set[int] = set()
        stack: List[int] = []
        for flow_key in self._dirty_flows:  # det: ok(seeds a set closure; membership is order-insensitive)
            state = state_map.get(flow_key)
            if state is not None and state.participating:
                affected.add(flow_key)
                stack.append(flow_key)
        seen_links: Set[int] = set(self._dirty_links)
        for link in self._dirty_links:  # det: ok(seeds a set closure; membership is order-insensitive)
            for flow_key in link_flows.get(link, ()):
                if flow_key not in affected:
                    affected.add(flow_key)
                    stack.append(flow_key)
        while stack:
            flow_key = stack.pop()
            for link in state_map[flow_key].links:
                if link in seen_links:
                    continue
                seen_links.add(link)
                for other in link_flows.get(link, ()):
                    if other not in affected:
                        affected.add(other)
                        stack.append(other)
        return affected

    # ------------------------------------------------------------------ debug
    def participating_flows(self) -> Iterable[int]:
        """Flow keys currently contending for bandwidth (insertion order)."""
        return [
            flow_key
            for flow_key, state in self._state.items()
            if state.participating
        ]

    def describe(self) -> Dict[str, float]:
        """Small status snapshot for logging."""
        summary = self.stats.as_dict()
        summary["links_indexed"] = float(len(self._link_flows))
        return summary
