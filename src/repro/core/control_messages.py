"""Bullet's peering and recovery control messages (Sections 3.1, 3.2, 3.4).

These are the typed messages Bullet nodes exchange through the simulated
:class:`~repro.network.control.ControlChannel`:

* :class:`PeeringRequest` — a receiver asks a RanSub-discovered candidate to
  start sending to it; the request carries the receiver's current Bloom
  filter and recovery range so an accepting sender can begin forwarding
  useful packets immediately.
* :class:`PeeringReply` — the candidate's accept/reject answer (it rejects
  when its receiver list is full).
* :class:`RecoveryRefresh` — the periodic Bloom-filter / recovery-range
  refresh a receiver installs at each of its senders (Figure 4), also used
  to re-deal row assignments when the sender set changes.
* :class:`PeeringTeardown` — either side dissolves a peering (Section 3.4
  eviction, or garbage collection of half-open peerings created by lost
  replies).

Because these travel over the control channel they can be delayed or lost;
the node-level handlers in :class:`~repro.core.bullet_node.BulletNode` are
written so every loss is eventually healed (request timeouts, refresh
re-deals, teardown-on-unknown-refresh, stale-receiver garbage collection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.recovery import RecoveryRequest
from repro.network.control import ControlMessage
from repro.reconcile.bloom import FifoBloomFilter

#: Approximate wire size of a peering reply / teardown / small control message.
SMALL_CONTROL_BYTES: int = 24


def _empty_request() -> RecoveryRequest:
    return RecoveryRequest(
        receiver=-1, bloom=FifoBloomFilter.with_capacity(1), low=0, high=0,
        mod=0, total_senders=1,
    )


@dataclass
class PeeringRequest(ControlMessage):
    """Receiver -> candidate sender: please start sending to me."""

    request: RecoveryRequest = field(default_factory=_empty_request)
    epoch: int = 0

    kind = "peering-request"

    def size_bytes(self) -> int:
        # The request rides the receiver's full recovery request (Bloom
        # filter included) so an accepting sender can serve immediately.
        return 8 + self.request.size_bytes()


@dataclass
class PeeringReply(ControlMessage):
    """Candidate sender -> receiver: accepted or rejected."""

    accepted: bool = False
    epoch: int = 0

    kind = "peering-reply"

    def size_bytes(self) -> int:
        return SMALL_CONTROL_BYTES


@dataclass
class RecoveryRefresh(ControlMessage):
    """Receiver -> sender: the periodic Bloom filter / range refresh."""

    request: RecoveryRequest = field(default_factory=_empty_request)

    kind = "recovery-refresh"

    def size_bytes(self) -> int:
        return 8 + self.request.size_bytes()


@dataclass
class PeeringTeardown(ControlMessage):
    """Either side dissolves a peering.

    ``dropped_by`` names the role the *message source* played in the
    peering: ``"receiver"`` means "I was receiving from you and stop"
    (the destination forgets a receiver), ``"sender"`` means "I was (or am
    not) sending to you and stop" (the destination forgets a sender).
    """

    dropped_by: str = "receiver"

    kind = "peering-teardown"

    def __post_init__(self) -> None:
        if self.dropped_by not in ("receiver", "sender"):
            raise ValueError("dropped_by must be 'receiver' or 'sender'")

    def size_bytes(self) -> int:
        return SMALL_CONTROL_BYTES
