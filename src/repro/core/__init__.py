"""The Bullet mesh: configuration, per-node state, the disjoint send routine,
peer management, recovery and the mesh orchestrator."""

from repro.core.bullet_node import BulletNode, ControlPlaneServices, ReceiveOutcome
from repro.core.config import BulletConfig
from repro.core.control_messages import (
    PeeringReply,
    PeeringRequest,
    PeeringTeardown,
    RecoveryRefresh,
)
from repro.core.disjoint import ChildSendState, DisjointSender
from repro.core.mesh import BulletMesh, MeshStatus
from repro.core.peering import PeerManager, ReceiverRecord, SenderRecord
from repro.core.recovery import RecoveryRequest, SenderQueue, build_recovery_requests

__all__ = [
    "BulletConfig",
    "BulletMesh",
    "BulletNode",
    "ChildSendState",
    "ControlPlaneServices",
    "DisjointSender",
    "MeshStatus",
    "PeerManager",
    "PeeringReply",
    "PeeringRequest",
    "PeeringTeardown",
    "ReceiveOutcome",
    "ReceiverRecord",
    "RecoveryRefresh",
    "RecoveryRequest",
    "SenderQueue",
    "SenderRecord",
    "build_recovery_requests",
]
