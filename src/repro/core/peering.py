"""Peer-set management: finding, keeping and replacing mesh peers.

Covers Sections 3.1 and 3.4:

* on every RanSub epoch a node inspects the summary tickets in its distribute
  set and, if it has room in its sender list, asks the candidate with the
  *lowest* resemblance to start sending to it;
* a potential sender accepts the request only if it has room in its receiver
  list;
* periodically (every few epochs) a receiver drops a sender that ships mostly
  duplicates (>50%) or, failing that, the sender providing the least useful
  data, freeing a trial slot for a new candidate;
* a sender symmetrically drops the receiver that benefits the least from it
  (smallest fraction of the receiver's reported bandwidth supplied by this
  sender).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.config import BulletConfig
from repro.core.recovery import SenderQueue
from repro.ransub.state import RanSubView
from repro.reconcile.resemblance import rank_peers_by_divergence
from repro.reconcile.summary_ticket import SummaryTicket


@dataclass
class SenderRecord:
    """Receiver-side bookkeeping about one peer that sends to us."""

    sender: int
    added_epoch: int = 0
    useful_packets: int = 0
    duplicate_packets: int = 0
    #: Counters over the current evaluation period (reset at each evaluation).
    period_useful: int = 0
    period_duplicates: int = 0

    def record_packet(self, duplicate: bool) -> None:
        """Account one packet received from this sender."""
        if duplicate:
            self.duplicate_packets += 1
            self.period_duplicates += 1
        else:
            self.useful_packets += 1
            self.period_useful += 1

    def period_total(self) -> int:
        """Packets received from this sender during the evaluation period."""
        return self.period_useful + self.period_duplicates

    def period_duplicate_ratio(self) -> float:
        """Fraction of this period's packets that were duplicates."""
        total = self.period_total()
        return self.period_duplicates / total if total else 0.0

    def reset_period(self) -> None:
        """Start a new evaluation period."""
        self.period_useful = 0
        self.period_duplicates = 0


@dataclass
class ReceiverRecord:
    """Sender-side bookkeeping about one peer we send to."""

    receiver: int
    queue: SenderQueue
    added_epoch: int = 0
    #: Useful bandwidth the receiver last reported (Kbps), for weaning.
    reported_bandwidth_kbps: float = 0.0
    #: Packets sent to the receiver during the current evaluation period.
    period_sent: int = 0
    #: Recovery refreshes received from the receiver this evaluation period.
    period_refreshes: int = 0
    #: Consecutive evaluation periods with no refresh from the receiver
    #: (drives garbage collection of half-open peerings).
    stale_rounds: int = 0

    def reset_period(self) -> None:
        """Start a new evaluation period."""
        self.period_sent = 0
        self.period_refreshes = 0


class PeerManager:
    """Sender and receiver lists for one Bullet node."""

    def __init__(self, node: int, config: BulletConfig) -> None:
        self.node = node
        self.config = config
        self.senders: Dict[int, SenderRecord] = {}
        self.receivers: Dict[int, ReceiverRecord] = {}
        #: Optional latency estimator (``estimate_rtt(a, b)``) used as a
        #: proximity tiebreak when scoring peer candidates.  ``None`` keeps
        #: the historical pure-divergence ranking byte-identical.
        self.latency_estimator = None

    # -------------------------------------------------------------- capacity
    def has_sender_space(self) -> bool:
        """Can we accept another peer that sends to us?"""
        return len(self.senders) < self.config.max_senders

    def has_receiver_space(self) -> bool:
        """Can we accept another peer to send to?"""
        return len(self.receivers) < self.config.max_receivers

    # ------------------------------------------------------------- discovery
    def choose_candidate(
        self,
        view: RanSubView,
        own_ticket: SummaryTicket,
        exclude: Sequence[int] = (),
    ) -> Optional[int]:
        """Pick the most-divergent candidate peer from a RanSub view.

        Returns ``None`` when there is no sender space, the view is empty or
        every candidate is excluded (self, existing peers, parent, ...).

        With a latency estimator attached, the top few most-divergent
        candidates form a shortlist and the nearest of them (by estimated
        RTT, node id breaking ties) wins — divergent *and* close beats
        divergent alone.  Without one, the historical pure-divergence pick
        applies unchanged.
        """
        if not self.has_sender_space():
            return None
        excluded: Set[int] = set(exclude)
        excluded.add(self.node)
        excluded.update(self.senders)
        candidates = view.candidates(exclude=sorted(excluded))
        if not candidates:
            return None
        ranked = rank_peers_by_divergence(own_ticket, candidates)
        if not ranked:
            return None
        if self.latency_estimator is not None:
            shortlist = [peer for peer, _score in ranked[:3]]
            return min(
                shortlist,
                key=lambda peer: (self.latency_estimator.estimate_rtt(self.node, peer), peer),
            )
        return ranked[0][0]

    # -------------------------------------------------------------- mutation
    def add_sender(self, sender: int, epoch: int) -> SenderRecord:
        """Register a peer that will send to us (receiver side)."""
        if sender in self.senders:
            return self.senders[sender]
        if not self.has_sender_space():
            raise ValueError(f"node {self.node} has no sender space for {sender}")
        record = SenderRecord(sender=sender, added_epoch=epoch)
        self.senders[sender] = record
        return record

    def add_receiver(self, receiver: int, epoch: int) -> ReceiverRecord:
        """Register a peer we will send to (sender side)."""
        if receiver in self.receivers:
            return self.receivers[receiver]
        if not self.has_receiver_space():
            raise ValueError(f"node {self.node} has no receiver space for {receiver}")
        record = ReceiverRecord(
            receiver=receiver, queue=SenderQueue(receiver=receiver), added_epoch=epoch
        )
        self.receivers[receiver] = record
        return record

    def remove_sender(self, sender: int) -> None:
        """Forget a sending peer."""
        self.senders.pop(sender, None)

    def remove_receiver(self, receiver: int) -> None:
        """Forget a receiving peer."""
        self.receivers.pop(receiver, None)

    # ------------------------------------------------------------ evaluation
    def evaluate_senders(self) -> Optional[int]:
        """Pick a sender to drop per Section 3.4, or ``None`` to keep all.

        Preference order: a sender whose duplicate ratio exceeds the
        threshold; otherwise the sender that delivered the least useful data
        this period, "essentially reserving a trial slot in its sender list".
        Eviction is skipped while the node still has very few senders (there
        is nothing to learn from churn yet) and never touches senders added
        so recently that they have had no chance to deliver.
        """
        if not self.senders:
            return None
        candidates = [record for record in self.senders.values() if record.period_total() > 0]
        for record in sorted(candidates, key=lambda r: r.sender):
            if record.period_duplicate_ratio() > self.config.duplicate_threshold:
                return record.sender
        if len(self.senders) >= max(3, self.config.max_senders // 2) and candidates:
            worst = min(candidates, key=lambda r: (r.period_useful, -r.sender))
            return worst.sender
        return None

    def evaluate_receivers(self) -> Optional[int]:
        """Pick the receiver benefiting least from us, or ``None`` to keep all.

        Only triggered when the receiver list is full (the paper drops a
        receiver to create an empty slot for a trial receiver).  The benefit
        metric is the portion of the receiver's reported bandwidth that we
        supplied during the period.
        """
        if self.has_receiver_space() or not self.receivers:
            return None
        def benefit(record: ReceiverRecord) -> float:
            sent_kbps = record.period_sent * self.config.packet_kbits
            reported = max(record.reported_bandwidth_kbps, 1e-6)
            return sent_kbps / reported

        active = [record for record in self.receivers.values()]
        worst = min(active, key=lambda r: (benefit(r), -r.receiver))
        return worst.receiver

    def reset_periods(self) -> None:
        """Start a new evaluation period on both sides."""
        for record in self.senders.values():
            record.reset_period()
        for record in self.receivers.values():
            record.reset_period()

    # ------------------------------------------------------------- inspection
    def sender_ids(self) -> List[int]:
        """Peers currently sending to us."""
        return sorted(self.senders)

    def receiver_ids(self) -> List[int]:
        """Peers we currently send to."""
        return sorted(self.receivers)
