"""Recovering data from peers (Section 3.2, Figure 4).

A Bullet receiver views the stream as a matrix of sequence numbers with one
row per sending peer.  Periodically (every 5 seconds by default) it sends
each sender a *recovery request*: its current Bloom filter, the (Low, High)
range of sequences it is interested in, the row (``mod``) assigned to that
sender and the total number of senders.  A sender then forwards packets it
holds whose sequence ``x`` satisfies ``x mod s == mod``, ``Low <= x <= High``
and ``x`` not described by the Bloom filter.

The row assignment makes concurrently-active senders transmit (mostly)
disjoint packets, which is why Bullet's duplicate rate stays under 10%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import BulletConfig
from repro.reconcile.bloom import FifoBloomFilter
from repro.reconcile.working_set import WorkingSet

#: Approximate non-Bloom bytes in a recovery request (range, mod, counters).
RECOVERY_REQUEST_HEADER_BYTES: int = 32


@dataclass
class RecoveryRequest:
    """What a receiver installs at one of its senders."""

    receiver: int
    bloom: FifoBloomFilter
    low: int
    high: int
    mod: int
    total_senders: int
    #: Receiver's total useful bandwidth over the last period (Kbps); senders
    #: use it when evaluating which receiver benefits least (Section 3.4).
    reported_bandwidth_kbps: float = 0.0

    def size_bytes(self) -> int:
        """Wire size of the request (control-overhead accounting)."""
        return RECOVERY_REQUEST_HEADER_BYTES + self.bloom.size_bytes()

    def wants(self, sequence: int) -> bool:
        """Does the receiver want ``sequence`` from this particular sender?"""
        if sequence < self.low or sequence > self.high:
            return False
        if self.total_senders > 0 and sequence % self.total_senders != self.mod:
            return False
        return sequence not in self.bloom


def build_recovery_requests(
    receiver: int,
    working_set: WorkingSet,
    senders: Sequence[int],
    config: BulletConfig,
    reported_bandwidth_kbps: float = 0.0,
    rotation: int = 0,
) -> Dict[int, RecoveryRequest]:
    """Build this period's recovery request for each sending peer.

    Senders are assigned rows in their sorted order, offset by ``rotation``.
    Figure 4b shows that "as it receives more data ... the receiver requests
    different rows from senders": rotating the assignment every refresh means
    a packet whose assigned sender happened not to hold it gets a different
    sender on the next round instead of staying unrecoverable.
    """
    ordered = sorted(senders)
    total = len(ordered)
    if total == 0:
        return {}
    low, high = working_set.recovery_range(config.recovery_span_packets)
    high += config.recovery_lookahead_packets
    bloom = working_set.bloom_filter(
        expected_items=max(config.recovery_span_packets, 128),
        false_positive_rate=config.bloom_false_positive_rate,
    )
    requests: Dict[int, RecoveryRequest] = {}
    for index, sender in enumerate(ordered):
        requests[sender] = RecoveryRequest(
            receiver=receiver,
            bloom=bloom,
            low=low,
            high=high,
            mod=(index + rotation) % total,
            total_senders=total,
            reported_bandwidth_kbps=reported_bandwidth_kbps,
        )
    return requests


@dataclass
class SenderQueue:
    """Sender-side state for one receiver it serves."""

    receiver: int
    request: Optional[RecoveryRequest] = None
    #: Sequences selected for transmission but not yet accepted by transport.
    pending: List[int] = field(default_factory=list)
    #: Sequences already pushed to this receiver (avoid re-sending every step).
    already_sent: set = field(default_factory=set)
    #: Lifetime counters for peer evaluation.
    packets_sent: int = 0

    def install_request(self, request: RecoveryRequest, holdings: Iterable[int]) -> None:
        """Install a fresh recovery request and rebuild the pending queue.

        ``holdings`` is the sender's current working-set content; only packets
        the receiver wants (range, row, Bloom filter) are queued.
        """
        self.request = request
        fresh_pending: List[int] = []
        for sequence in holdings:
            if sequence in self.already_sent:
                continue
            if request.wants(sequence):
                fresh_pending.append(sequence)
        fresh_pending.sort()
        self.pending = fresh_pending
        # The receiver's Bloom filter supersedes our memory of what we sent
        # long ago; keep only recent entries to bound memory.
        if len(self.already_sent) > 4096:
            cutoff = request.low
            self.already_sent = {seq for seq in self.already_sent if seq >= cutoff}

    def offer_new_packet(self, sequence: int) -> None:
        """Consider a packet that just arrived at the sender for this receiver."""
        if self.request is None:
            return
        if sequence in self.already_sent:
            return
        if self.request.wants(sequence):
            self.pending.append(sequence)

    def take_for_send(self, budget: int) -> List[int]:
        """Dequeue up to ``budget`` packets to push to the receiver."""
        if budget <= 0 or not self.pending:
            return []
        batch, self.pending = self.pending[:budget], self.pending[budget:]
        for sequence in batch:
            self.already_sent.add(sequence)
        self.packets_sent += len(batch)
        return batch

    def pending_count(self) -> int:
        """Packets currently queued for this receiver."""
        return len(self.pending)
