"""Recovering data from peers (Section 3.2, Figure 4).

A Bullet receiver views the stream as a matrix of sequence numbers with one
row per sending peer.  Periodically (every 5 seconds by default) it sends
each sender a *recovery request*: its current Bloom filter, the (Low, High)
range of sequences it is interested in, the row (``mod``) assigned to that
sender and the total number of senders.  A sender then forwards packets it
holds whose sequence ``x`` satisfies ``x mod s == mod``, ``Low <= x <= High``
and ``x`` not described by the Bloom filter.

The row assignment makes concurrently-active senders transmit (mostly)
disjoint packets, which is why Bullet's duplicate rate stays under 10%.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import BulletConfig
from repro.reconcile.bloom import BloomSnapshot, FifoBloomFilter
from repro.reconcile.working_set import WorkingSet

#: Approximate non-Bloom bytes in a recovery request (range, mod, counters).
RECOVERY_REQUEST_HEADER_BYTES: int = 32

#: Filters a request may carry: a standalone FIFO filter (legacy from-scratch
#: builds, tests) or a frozen snapshot of a node's live filter (the
#: incremental protocol path).
RequestBloom = Union[FifoBloomFilter, BloomSnapshot]


@dataclass
class RecoveryRequest:
    """What a receiver installs at one of its senders."""

    receiver: int
    bloom: RequestBloom
    low: int
    high: int
    mod: int
    total_senders: int
    #: Receiver's total useful bandwidth over the last period (Kbps); senders
    #: use it when evaluating which receiver benefits least (Section 3.4).
    reported_bandwidth_kbps: float = 0.0

    def size_bytes(self) -> int:
        """Wire size of the request (control-overhead accounting)."""
        return RECOVERY_REQUEST_HEADER_BYTES + self.bloom.size_bytes()

    def wants(self, sequence: int) -> bool:
        """Does the receiver want ``sequence`` from this particular sender?"""
        if sequence < self.low or sequence > self.high:
            return False
        if self.total_senders > 0 and sequence % self.total_senders != self.mod:
            return False
        return sequence not in self.bloom

    def same_selection(self, other: "RecoveryRequest") -> bool:
        """True if both requests select exactly the same packets.

        Filters are compared by identity: the incremental protocol path
        reuses one frozen snapshot object for as long as the working set is
        unchanged, so identity is exact and O(1).  Distinct filter objects
        (the from-scratch path builds a fresh one per refresh) compare
        unequal, which degrades to the historical always-rescan behaviour.
        """
        return (
            self.bloom is other.bloom
            and self.low == other.low
            and self.high == other.high
            and self.mod == other.mod
            and self.total_senders == other.total_senders
        )


def build_recovery_requests(
    receiver: int,
    working_set: WorkingSet,
    senders: Sequence[int],
    config: BulletConfig,
    reported_bandwidth_kbps: float = 0.0,
    rotation: int = 0,
    bloom: Optional[RequestBloom] = None,
) -> Dict[int, RecoveryRequest]:
    """Build this period's recovery request for each sending peer.

    Senders are assigned rows in their sorted order, offset by ``rotation``.
    Figure 4b shows that "as it receives more data ... the receiver requests
    different rows from senders": rotating the assignment every refresh means
    a packet whose assigned sender happened not to hold it gets a different
    sender on the next round instead of staying unrecoverable.

    ``bloom`` short-circuits the filter construction with a caller-supplied
    filter (the incremental path passes the working set's live snapshot);
    when omitted, a filter is built from scratch as the pre-incremental code
    always did.
    """
    ordered = sorted(senders)
    total = len(ordered)
    if total == 0:
        return {}
    low, high = working_set.recovery_range(config.recovery_span_packets)
    high += config.recovery_lookahead_packets
    if bloom is None:
        bloom = working_set.bloom_filter(
            expected_items=max(config.recovery_span_packets, 128),
            false_positive_rate=config.bloom_false_positive_rate,
        )
    requests: Dict[int, RecoveryRequest] = {}
    for index, sender in enumerate(ordered):
        requests[sender] = RecoveryRequest(
            receiver=receiver,
            bloom=bloom,
            low=low,
            high=high,
            mod=(index + rotation) % total,
            total_senders=total,
            reported_bandwidth_kbps=reported_bandwidth_kbps,
        )
    return requests


@dataclass
class SenderQueue:
    """Sender-side state for one receiver it serves."""

    receiver: int
    request: Optional[RecoveryRequest] = None
    #: Sequences selected for transmission but not yet accepted by transport.
    pending: List[int] = field(default_factory=list)
    #: Sequences already pushed to this receiver (avoid re-sending every step).
    already_sent: set = field(default_factory=set)
    #: Lifetime counters for peer evaluation.
    packets_sent: int = 0

    def adopt_request(self, request: RecoveryRequest, holdings_low_water: int = 0) -> None:
        """Take over a refresh whose selection is unchanged.

        The pending queue already equals what a rescan would rebuild (offers
        keep it sorted and complete), so only the request object — carrying a
        possibly updated reported bandwidth — is swapped in.
        ``holdings_low_water`` is the sender's working-set low-water mark:
        packets the sender pruned must leave the queue exactly as a rescan
        against current holdings would drop them (a sender cannot serve data
        it discarded).
        """
        self.request = request
        pending = self.pending
        if pending and pending[0] < holdings_low_water:
            del pending[: bisect_left(pending, holdings_low_water)]

    def install_request(self, request: RecoveryRequest, holdings: Iterable[int]) -> None:
        """Install a fresh recovery request and rebuild the pending queue.

        ``holdings`` is the sender's current working-set content; only packets
        the receiver wants (range, row, Bloom filter) are queued.
        """
        self.request = request
        sent = self.already_sent
        low = request.low
        high = request.high
        total = request.total_senders
        mod = request.mod
        # Row and range are cheap arithmetic; hoist them out of the Bloom
        # probe so the k-hash membership test only runs on this sender's row.
        if total > 1:
            candidates = [
                s for s in holdings if low <= s <= high and s % total == mod and s not in sent
            ]
        else:
            candidates = [s for s in holdings if low <= s <= high and s not in sent]
        candidates.sort()
        self.pending = request.bloom.missing(candidates)
        # The receiver's Bloom filter supersedes our memory of what we sent
        # long ago; keep only recent entries to bound memory.
        if len(sent) > 4096:
            cutoff = request.low
            self.already_sent = {seq for seq in sent if seq >= cutoff}

    def offer_new_packet(self, sequence: int) -> None:
        """Consider a packet that just arrived at the sender for this receiver."""
        if self.request is None:
            return
        if sequence in self.already_sent:
            return
        if self.request.wants(sequence):
            # Keep the queue sorted (drains stay in sequence order, and an
            # unchanged-selection refresh can adopt it verbatim) and
            # deduplicated: a packet that arrived in the same step as a
            # refresh is already queued by the install's holdings scan.
            index = bisect_left(self.pending, sequence)
            if index < len(self.pending) and self.pending[index] == sequence:
                return
            self.pending.insert(index, sequence)

    def take_for_send(self, budget: int) -> List[int]:
        """Dequeue up to ``budget`` packets to push to the receiver."""
        if budget <= 0 or not self.pending:
            return []
        batch, self.pending = self.pending[:budget], self.pending[budget:]
        for sequence in batch:
            self.already_sent.add(sequence)
        self.packets_sent += len(batch)
        return batch

    def pending_count(self) -> int:
        """Packets currently queued for this receiver."""
        return len(self.pending)
