"""The Bullet mesh orchestrator.

:class:`BulletMesh` wires a set of :class:`~repro.core.bullet_node.BulletNode`
participants to the fluid network simulator and an underlying overlay tree,
and drives the whole protocol once per simulation step:

1. deliver packets that arrived over tree and mesh flows into working sets;
2. fire the protocol timers (RanSub epochs, Bloom refreshes, peer
   re-evaluation) — these only *queue* control messages on the nodes;
3. pump the control plane: drain node outboxes into the simulated
   :class:`~repro.network.control.ControlChannel` and dispatch delivered
   messages to the destination nodes' handlers;
4. generate new stream packets at the root;
5. forward freshly received packets down the tree with the disjoint send
   routine (Figure 5);
6. serve peer receivers from the per-receiver recovery queues (Figure 4).

The mesh is deliberately a *thin scheduler*: every cross-node interaction —
peering requests and replies, recovery refreshes, teardowns, RanSub
collect/distribute — travels through the control channel with real path
latency and loss, and all protocol decisions live in the node handlers
(:meth:`BulletNode.handle_control`).  The mesh never mutates another node's
peer or queue state directly; its only cross-cutting powers are the
:class:`~repro.core.bullet_node.ControlPlaneServices` it exposes to handlers
(open/close mesh data flows, name the nodes that must not be peered with).

The orchestrator also implements node failure (Section 4.6): a failed node
stops sending and receiving, its control messages are dropped by the
channel, the underlying tree is *not* repaired, and RanSub either stalls
(failure detection off) or times the dead subtree out and routes around it
(failure detection on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bullet_node import BulletNode
from repro.core.config import BulletConfig
from repro.experiments.registry import BuildContext, register_system
from repro.network.control import ControlChannel, ControlMessage
from repro.network.events import PeriodicTimer
from repro.network.flows import Flow
from repro.network.simulator import NetworkSimulator
from repro.trees.tree import OverlayTree
from repro.util.hashing import stable_hash
from repro.util.rng import SeededRng
from repro.analysis.shakeout import tracked_set

#: Cache-coherence invariants checked by ``python -m repro.analysis`` (COH001).
#: The per-depth node levels are derived from the overlay tree; growing the
#: tree without rebuilding them leaves the RanSub epoch walking stale levels.
CACHE_INVARIANTS = {
    "BulletMesh": {
        "scope": "module",
        "calls": {
            "tree.add_leaf": ["_rebuild_depth_levels"],
        },
    },
}


@dataclass
class MeshStatus:
    """Summary of the mesh state at one instant (for logging / debugging)."""

    time_s: float
    active_nodes: int
    mesh_flows: int
    tree_flows: int
    total_peerings: int


class BulletMesh:
    """Runs the Bullet protocol over a tree, on top of the fluid simulator."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        tree: OverlayTree,
        config: Optional[BulletConfig] = None,
        trace_sample_stride: int = 200,
    ) -> None:
        self.simulator = simulator
        self.tree = tree
        self.config = config or BulletConfig()
        self.stats = simulator.stats
        self._rng = SeededRng(self.config.seed, "bullet-mesh")
        self.failed: Set[int] = tracked_set("mesh.failed")
        self._epoch_count = 0
        self._next_sequence = 0
        self._source_carry = 0.0
        self._trace_sample_stride = max(1, trace_sample_stride)
        #: Smoothed fresh-packet production rate per node (packets per step).
        self._fresh_rate: Dict[int, float] = {}
        #: Packets pushed to each mesh peering during the current step.
        self._sent_this_step: Dict[Tuple[int, int], int] = {}

        #: All control-plane traffic rides this channel (latency + loss).
        self.control_channel = ControlChannel(
            simulator.topology,
            stats=self.stats,
            seed=self.config.seed,
            extra_loss_rate=self.config.control_loss_rate,
        )

        self._ransub_rng = SeededRng(self.config.seed, "ransub")
        members = tree.members()
        self.nodes: Dict[int, BulletNode] = {}
        for member in members:
            self.nodes[member] = BulletNode(
                node=member,
                config=self.config,
                children=tree.children(member),
                parent=tree.parent(member),
                is_root=(member == tree.root),
                ransub_rng=self._ransub_rng,
            )
            self.nodes[member].refresh_ticket()

        # One TFRC flow per tree edge (the baseline parent stream).
        self.tree_flows: Dict[Tuple[int, int], Flow] = {}
        for parent, child in tree.edges():
            flow = simulator.create_flow(
                parent, child, label=f"tree:{parent}->{child}",
                demand_kbps=self.config.stream_rate_kbps,
            )
            self.tree_flows[(parent, child)] = flow

        # Mesh (perpendicular) flows are created lazily as peerings form.
        self.mesh_flows: Dict[Tuple[int, int], Flow] = {}

        self._epoch_timer = PeriodicTimer(self.config.ransub_epoch_s)
        #: Per-node refresh timers.  With ``refresh_stagger`` each node gets
        #: a deterministic phase offset inside the refresh period, spreading
        #: the per-refresh protocol work across simulation steps instead of
        #: spiking every node on the same step.
        self._refresh_timers: Dict[int, PeriodicTimer] = {
            member: self._make_refresh_timer(member) for member in members
        }

        #: Wall-clock seconds spent per protocol-phase stage (the protocol
        #: benchmark's measurement surface): ``timers`` covers the RanSub
        #: epoch + refresh generation + node-local timeout polls, ``control``
        #: the channel pump and message handlers, ``deliver``/``data_out``
        #: the data plane around them.
        self.phase_seconds: Dict[str, float] = {
            "deliver": 0.0, "timers": 0.0, "control": 0.0, "data_out": 0.0
        }

        #: Optional quiescence-aware step engine (see attach_step_engine).
        self._step_engine = None

        #: Optional latency estimator shared by every node's peer scoring
        #: (see :meth:`set_latency_estimator`).
        self._latency_estimator = None

        self._rebuild_depth_levels()

    def set_latency_estimator(self, estimator) -> None:
        """Attach a latency estimator to every node's peer manager.

        ``estimator`` is any object with ``estimate_rtt(a, b)`` (see
        :mod:`repro.topology.landmarks`); nodes use it as a proximity
        tiebreak when choosing peer candidates.  ``None`` detaches it and
        restores the historical pure-divergence scoring.
        """
        self._latency_estimator = estimator
        for node in self.nodes.values():
            node.peers.latency_estimator = estimator

    def _make_refresh_timer(self, node: int) -> PeriodicTimer:
        period = self.config.bloom_refresh_s
        if not self.config.refresh_stagger:
            return PeriodicTimer(period)
        dt = self.simulator.dt
        slots = max(1, int(round(period / dt)))
        offset = (stable_hash(f"refresh-phase-{node}", self.config.seed) % slots) * dt
        return PeriodicTimer(period, start_at=period + offset)

    def _rebuild_depth_levels(self) -> None:
        """Group members by tree depth, deepest first, for the RanSub
        timeout cascade (see _poll_timers)."""
        by_depth: Dict[int, List[int]] = {}
        for member in self.nodes:
            by_depth.setdefault(self.tree.depth(member), []).append(member)
        self._members_deepest_first: List[List[int]] = [
            sorted(by_depth[depth]) for depth in sorted(by_depth, reverse=True)
        ]

    # --------------------------------------------------------------- plumbing
    @property
    def root(self) -> int:
        """The overlay source."""
        return self.tree.root

    @property
    def packets_generated(self) -> int:
        """Distinct stream packets the source has produced so far.

        This is the source's own "useful count": the hierarchical overlay
        reads it to feed the source-led cluster, since the source never
        records receives for its own packets.
        """
        return self._next_sequence

    def members(self) -> List[int]:
        """All overlay participants (including failed ones)."""
        return sorted(self.nodes)

    def active_members(self) -> List[int]:
        """Participants that have not failed."""
        return [node for node in sorted(self.nodes) if node not in self.failed]

    def receivers(self) -> List[int]:
        """Participants other than the root that have not failed."""
        return [node for node in self.active_members() if node != self.root]

    def status(self) -> MeshStatus:
        """A point-in-time summary of the mesh."""
        peerings = sum(len(node.peers.senders) for node in self.nodes.values())
        return MeshStatus(
            time_s=self.simulator.time,
            active_nodes=len(self.active_members()),
            mesh_flows=len(self.mesh_flows),
            tree_flows=len(self.tree_flows),
            total_peerings=peerings,
        )

    # ----------------------------------------------- control-plane services
    # These three methods are the ControlPlaneServices interface node
    # handlers call back into; they touch only orchestration state (data
    # flows), never another node's protocol state.
    def open_mesh_flow(self, sender: int, receiver: int) -> None:
        """Create the mesh data flow behind an accepted peering."""
        if (sender, receiver) in self.mesh_flows:
            return
        self.mesh_flows[(sender, receiver)] = self.simulator.create_flow(
            sender, receiver, label=f"mesh:{sender}->{receiver}", demand_kbps=0.0
        )

    def close_mesh_flow(self, sender: int, receiver: int) -> None:
        """Remove the data flow of a dissolved peering."""
        flow = self.mesh_flows.pop((sender, receiver), None)
        if flow is not None:
            self.simulator.remove_flow(flow)

    def peer_exclusions(self, node: int) -> Set[int]:
        """Nodes no participant may peer with: failed nodes, and the source
        unless it is configured to serve peers."""
        exclusions = set(self.failed)
        if not self.config.source_serves_peers:
            exclusions.add(self.root)
        return exclusions

    # ----------------------------------------------------------- step engine
    def attach_step_engine(self, engine) -> None:
        """Register this mesh's wakeup sources with a session step engine.

        The mesh owns two kinds of periodic wakeups: the global RanSub epoch
        timer and one staggered Bloom-refresh timer per member.  With an
        engine attached, :meth:`protocol_phase` consults the due set and only
        fires (and re-arms) the timers whose wakeups came due, instead of
        polling every member's timer every step.  Firing exactly the due
        subset in ascending node order reproduces the legacy pass byte for
        byte: a non-due ``PeriodicTimer.fire`` is a no-op, so skipping it
        changes nothing, and due members keep their relative order.
        """
        self._step_engine = engine
        now = self.simulator.time
        engine.arm_timer(("bullet", "epoch"), self._epoch_timer, now)
        for member in self.active_members():
            engine.arm_timer(
                ("bullet", "refresh", member), self._refresh_timers[member], now
            )

    def _fire_timers(self, now: float) -> None:
        """Fire the epoch and refresh timers that are due at ``now``."""
        engine = self._step_engine
        if engine is None:
            if self._epoch_timer.fire(now):
                self._begin_ransub_epoch(now)
            for node_id in self.active_members():
                if self._refresh_timers[node_id].fire(now):
                    self.nodes[node_id].send_recovery_refreshes()
            return
        due = engine.due_set(now)
        if ("bullet", "epoch") in due:
            if self._epoch_timer.fire(now):
                self._begin_ransub_epoch(now)
            engine.arm_timer(("bullet", "epoch"), self._epoch_timer, now)
        due_members = sorted(
            key[2]
            for key in due
            if type(key) is tuple and len(key) == 3 and key[:2] == ("bullet", "refresh")
        )
        checked = 0
        for node_id in due_members:
            if node_id in self.failed or node_id not in self.nodes:
                continue
            checked += 1
            timer = self._refresh_timers[node_id]
            if timer.fire(now):
                self.nodes[node_id].send_recovery_refreshes()
            engine.arm_timer(("bullet", "refresh", node_id), timer, now)
        engine.note_skipped(len(self.nodes) - len(self.failed) - checked)

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One full protocol pass; call between simulator begin/end step."""
        clock = time.perf_counter  # det: ok(phase timing accounting only; never feeds simulated state)
        t0 = clock()
        self._sent_this_step = {}
        self._deliver_phase()
        t1 = clock()
        self._fire_timers(now)
        self._poll_timers(now)
        t2 = clock()
        self._control_phase(now)
        t3 = clock()
        self._source_phase()
        self._forward_phase()
        self._serve_peers_phase()
        self._update_flow_demands()
        t4 = clock()
        phases = self.phase_seconds
        phases["deliver"] += t1 - t0
        phases["timers"] += t2 - t1
        phases["control"] += t3 - t2
        phases["data_out"] += t4 - t3

    def protocol_plane_seconds(self) -> float:
        """Wall-clock seconds spent on refresh/RanSub/control work so far.

        The protocol-phase macro benchmark gates on this: it is the portion
        of the step this PR's incremental engine owns (timer-driven refresh
        and epoch generation, timeout polls, and the control-plane pump with
        its message handlers), excluding the data plane around it.
        """
        return self.phase_seconds["timers"] + self.phase_seconds["control"]

    def run(self, duration_s: float, sample_interval_s: float = 5.0) -> None:
        """Drive the simulator for ``duration_s`` seconds of simulated time."""
        from repro.experiments.session import ExperimentSession

        ExperimentSession(
            simulator=self.simulator, system=self, sample_interval_s=sample_interval_s
        ).drive(duration_s)

    # ---------------------------------------------------------- control plane
    def _poll_timers(self, now: float) -> None:
        """Fire node-local timeouts (peering-request expiry, RanSub deadline).

        RanSub deadlines are polled deepest-first with a channel pump between
        depth levels: when a node times a dead child out, its late partial
        collect must reach its parent *before* the parent's own deadline
        check, otherwise one dead leaf would cut off its entire live
        ancestor chain (every node shares the same per-epoch deadline).
        This mirrors the deepest-first force-finalize of the synchronous
        RanSub facade.
        """
        for node_id in self.active_members():
            self.nodes[node_id].poll_pending_requests(now)
        for level in self._members_deepest_first:
            fired = False
            for node_id in level:
                if node_id in self.failed:
                    continue
                fired = self.nodes[node_id].poll_ransub(now) or fired
            if fired:
                self._control_phase(now)

    def _dispatch_control(self, message: ControlMessage) -> None:
        node = self.nodes.get(message.dst)
        if node is None or node.failed:
            return
        node.handle_control(message, self, self.simulator.time)

    def _flush_outboxes(self, now: float) -> int:
        flushed = 0
        for node_id in self.active_members():
            for message in self.nodes[node_id].take_outbox():
                self.control_channel.send(message, now)
                flushed += 1
        return flushed

    def _control_phase(self, now: float) -> None:
        """Transmit queued messages and dispatch everything that arrives.

        The pump horizon is the end of the current step, so control
        exchanges whose path latency is far below ``dt`` (the common case)
        cascade — collect up the tree, distribute down, request, reply —
        within one step, while high-latency control links spread over
        multiple steps.
        """
        horizon = now + self.simulator.dt
        if self._flush_outboxes(now) == 0 and self._step_engine is not None:
            # Nothing left the nodes this pass; if nothing already in flight
            # arrives within the pump horizon either, the pump is a no-op —
            # no dispatch can run, so no outbox can refill.  Skip it.
            due = self.control_channel.next_due()
            if due is None or due > horizon + 1e-12:
                self._step_engine.note_skipped(1)
                return
        while True:
            delivered = self.control_channel.pump(horizon, self._dispatch_control)
            if self._flush_outboxes(now) == 0 and delivered == 0:
                break

    # --------------------------------------------------------------- delivery
    def _deliver_phase(self) -> None:
        for (parent, child), flow in list(self.tree_flows.items()):
            delivered = flow.take_delivered()
            if child in self.failed:
                continue
            node = self.nodes[child]
            for sequence in delivered:
                outcome = node.on_packet(sequence, from_node=parent, via_peer=False)
                self.stats.record_receive(
                    child, sequence, duplicate=outcome.duplicate, from_parent=True
                )
        for (sender, receiver), flow in list(self.mesh_flows.items()):
            delivered = flow.take_delivered()
            if receiver in self.failed:
                continue
            node = self.nodes[receiver]
            for sequence in delivered:
                outcome = node.on_packet(sequence, from_node=sender, via_peer=True)
                self.stats.record_receive(
                    receiver, sequence, duplicate=outcome.duplicate, from_parent=False
                )

    def _source_phase(self) -> None:
        if self.root in self.failed:
            return
        packets = (
            self.config.stream_rate_kbps * self.simulator.dt / self.config.packet_kbits
            + self._source_carry
        )
        count = int(packets)
        self._source_carry = packets - count
        root_node = self.nodes[self.root]
        for _ in range(count):
            sequence = self._next_sequence
            self._next_sequence += 1
            if sequence % self._trace_sample_stride == 0:
                self.stats.trace_sequences([sequence])
            root_node.on_packet(sequence, from_node=None, via_peer=False)

    def _forward_phase(self) -> None:
        for node_id in self.active_members():
            node = self.nodes[node_id]
            fresh = node.take_newly_received()
            # Smoothed estimate of how much fresh data this node produces per
            # step; drives the demand of its child tree flows so idle claims
            # do not starve mesh flows sharing the same uplink.
            previous = self._fresh_rate.get(node_id, 0.0)
            self._fresh_rate[node_id] = 0.7 * previous + 0.3 * len(fresh)
            if not fresh:
                continue
            # Offer fresh packets to the recovery queues of our receivers so
            # peers can pull them without waiting for the next Bloom refresh.
            for record in node.peers.receivers.values():
                for sequence in fresh:
                    record.queue.offer_new_packet(sequence)
            if not node.disjoint.children:
                continue

            def try_send(child: int, sequence: int, _parent: int = node_id) -> bool:
                if child in self.failed:
                    return False
                flow = self.tree_flows.get((_parent, child))
                if flow is None:
                    return False
                return flow.try_send(sequence)

            node.disjoint.send_batch(fresh, try_send)

    def _serve_peers_phase(self) -> None:
        for node_id in self.active_members():
            node = self.nodes[node_id]
            for receiver_id, record in list(node.peers.receivers.items()):
                if receiver_id in self.failed:
                    continue
                flow = self.mesh_flows.get((node_id, receiver_id))
                if flow is None:
                    continue
                budget = flow.send_budget()
                if budget <= 0:
                    continue
                batch = record.queue.take_for_send(budget)
                sent = 0
                for sequence in batch:
                    if flow.try_send(sequence):
                        record.period_sent += 1
                        sent += 1
                if sent:
                    self._sent_this_step[(node_id, receiver_id)] = sent

    # ----------------------------------------------------------------- timers
    def _begin_ransub_epoch(self, now: float) -> None:
        self._epoch_count += 1
        timeout_s = self.config.effective_collect_timeout_s
        for node_id in self.active_members():
            self.nodes[node_id].begin_ransub_epoch(self._epoch_count, now, timeout_s)
        if self._epoch_count % self.config.eviction_period_epochs == 0:
            for node_id in self.active_members():
                self.nodes[node_id].evaluate_peers(self, self._epoch_count)

    def _update_flow_demands(self) -> None:
        dt = self.simulator.dt
        for (sender, receiver), flow in self.mesh_flows.items():
            record = self.nodes[sender].peers.receivers.get(receiver)
            pending = record.queue.pending_count() if record is not None else 0
            # Demand covers the backlog plus the rate we just sustained, so a
            # queue fully drained this step does not zero out next step's
            # allocation (which would halve mesh throughput by oscillating).
            recent = self._sent_this_step.get((sender, receiver), 0)
            total = pending + recent
            if total <= 0:
                flow.set_demand(0.0)
            else:
                flow.set_demand((total + 1) * self.config.packet_kbits / dt)
        for (parent, child), flow in self.tree_flows.items():
            if parent in self.failed or child in self.failed:
                flow.set_demand(0.0)
                continue
            if parent == self.root:
                flow.set_demand(self.config.stream_rate_kbps)
                continue
            fresh_rate_kbps = (
                self._fresh_rate.get(parent, 0.0) * self.config.packet_kbits / dt
            )
            demand = min(
                self.config.stream_rate_kbps,
                max(1.25 * fresh_rate_kbps, 4 * self.config.packet_kbits / dt),
            )
            flow.set_demand(demand)

    # ------------------------------------------------------------- membership
    def add_node(self, node_id: int, parent: Optional[int] = None) -> int:
        """Join one participant mid-run; returns the tree parent it attached to.

        The joiner must be a client host of the underlying topology.  It is
        attached as a tree leaf (under ``parent`` when given, otherwise under
        a deterministically chosen live member with spare fanout), starts
        receiving the parent stream immediately through a fresh tree flow,
        and enters RanSub — and therefore peer discovery — at the next epoch
        boundary.  Its working set is primed at the live stream position so
        recovery asks peers for current data rather than long-expired
        sequences.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} is already an overlay member")
        if parent is None:
            parent = self._choose_join_parent()
        if parent not in self.nodes or parent in self.failed:
            raise ValueError(f"join parent {parent} is not a live overlay member")
        self.tree.add_leaf(node_id, parent)
        node = BulletNode(
            node=node_id,
            config=self.config,
            children=(),
            parent=parent,
            is_root=False,
            ransub_rng=self._ransub_rng,
        )
        head = int(self._next_sequence) - self.config.recovery_span_packets
        if head > 0:
            node.working_set.prune_below(head)
        node.refresh_ticket()
        node.peers.latency_estimator = self._latency_estimator
        self.nodes[node_id] = node
        self.nodes[parent].add_child(node_id)
        self.tree_flows[(parent, node_id)] = self.simulator.create_flow(
            parent, node_id, label=f"tree:{parent}->{node_id}",
            demand_kbps=self.config.stream_rate_kbps,
        )
        self._refresh_timers[node_id] = self._make_refresh_timer(node_id)
        if self._step_engine is not None:
            self._step_engine.arm_timer(
                ("bullet", "refresh", node_id),
                self._refresh_timers[node_id],
                self.simulator.time,
            )
        self._rebuild_depth_levels()
        return parent

    def _choose_join_parent(self) -> int:
        return self.tree.best_join_parent(exclude=self.failed)

    # ---------------------------------------------------------------- failure
    def fail_node(self, node_id: int) -> None:
        """Fail one participant: it stops sending, receiving and responding.

        The underlying tree is deliberately not repaired (the paper's
        worst-case assumption); its queued and future control messages are
        dropped by the channel, and RanSub behaviour depends on
        ``config.ransub_failure_detection``.
        """
        if node_id == self.root:
            raise ValueError("failing the source is not part of the evaluation")
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        self.failed.add(node_id)
        node = self.nodes[node_id]
        node.failed = True
        node.outbox.clear()
        node.pending_requests.clear()
        self.control_channel.mark_down(node_id)
        if self._step_engine is not None:
            self._step_engine.disarm(("bullet", "refresh", node_id))
        for key, flow in list(self.tree_flows.items()):
            if node_id in key:
                self.simulator.remove_flow(flow)
                del self.tree_flows[key]
        for key, flow in list(self.mesh_flows.items()):
            if node_id in key:
                self.simulator.remove_flow(flow)
                del self.mesh_flows[key]


@register_system(
    "bullet",
    description="Bullet: overlay tree + RanSub mesh recovery (the paper's system)",
    supports_fail_node=True,
    supports_join=True,
)
def _build_bullet(ctx: BuildContext) -> BulletMesh:
    return BulletMesh(ctx.simulator, ctx.tree, ctx.config.bullet_config())
