"""The Bullet mesh orchestrator.

:class:`BulletMesh` wires a set of :class:`~repro.core.bullet_node.BulletNode`
participants to the fluid network simulator and an underlying overlay tree,
and drives the whole protocol once per simulation step:

1. deliver packets that arrived over tree and mesh flows into working sets;
2. generate new stream packets at the root;
3. forward freshly received packets down the tree with the disjoint send
   routine (Figure 5);
4. serve peer receivers from the per-receiver recovery queues (Figure 4);
5. on timers: run RanSub epochs (peer discovery, sending factors), refresh
   Bloom filters / recovery ranges at senders, and re-evaluate the peer set.

The orchestrator also implements node failure (Section 4.6): a failed node
stops sending and receiving, the underlying tree is *not* repaired, and
RanSub either stalls (failure detection off) or routes around the failed
subtree (failure detection on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bullet_node import BulletNode
from repro.core.config import BulletConfig
from repro.core.recovery import RecoveryRequest
from repro.experiments.registry import BuildContext, register_system
from repro.network.events import PeriodicTimer
from repro.network.flows import Flow
from repro.network.simulator import NetworkSimulator
from repro.ransub.protocol import RanSubProtocol
from repro.ransub.state import MemberSummary
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng

#: Approximate wire size of a peering request reply / small control message.
SMALL_CONTROL_BYTES: int = 24


@dataclass
class MeshStatus:
    """Summary of the mesh state at one instant (for logging / debugging)."""

    time_s: float
    active_nodes: int
    mesh_flows: int
    tree_flows: int
    total_peerings: int


class BulletMesh:
    """Runs the Bullet protocol over a tree, on top of the fluid simulator."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        tree: OverlayTree,
        config: Optional[BulletConfig] = None,
        trace_sample_stride: int = 200,
    ) -> None:
        self.simulator = simulator
        self.tree = tree
        self.config = config or BulletConfig()
        self.stats = simulator.stats
        self._rng = SeededRng(self.config.seed, "bullet-mesh")
        self.failed: Set[int] = set()
        self._epoch_count = 0
        self._next_sequence = 0
        self._source_carry = 0.0
        self._trace_sample_stride = max(1, trace_sample_stride)
        #: Smoothed fresh-packet production rate per node (packets per step).
        self._fresh_rate: Dict[int, float] = {}
        #: Packets pushed to each mesh peering during the current step.
        self._sent_this_step: Dict[Tuple[int, int], int] = {}

        members = tree.members()
        self.nodes: Dict[int, BulletNode] = {}
        for member in members:
            self.nodes[member] = BulletNode(
                node=member,
                config=self.config,
                children=tree.children(member),
                parent=tree.parent(member),
                is_root=(member == tree.root),
            )
            self.nodes[member].refresh_ticket()

        # One TFRC flow per tree edge (the baseline parent stream).
        self.tree_flows: Dict[Tuple[int, int], Flow] = {}
        for parent, child in tree.edges():
            flow = simulator.create_flow(
                parent, child, label=f"tree:{parent}->{child}",
                demand_kbps=self.config.stream_rate_kbps,
            )
            self.tree_flows[(parent, child)] = flow

        # Mesh (perpendicular) flows are created lazily as peerings form.
        self.mesh_flows: Dict[Tuple[int, int], Flow] = {}

        self.ransub = RanSubProtocol(
            tree=tree,
            state_provider=self._ransub_state,
            set_size=self.config.ransub_set_size,
            seed=self.config.seed,
            overhead_sink=self.stats.record_control,
            failure_detection=self.config.ransub_failure_detection,
        )
        self._epoch_timer = PeriodicTimer(self.config.ransub_epoch_s)
        self._refresh_timer = PeriodicTimer(self.config.bloom_refresh_s)

    # --------------------------------------------------------------- plumbing
    def _ransub_state(self, node: int) -> MemberSummary:
        return self.nodes[node].member_summary(self.ransub.epoch)

    @property
    def root(self) -> int:
        """The overlay source."""
        return self.tree.root

    def members(self) -> List[int]:
        """All overlay participants (including failed ones)."""
        return sorted(self.nodes)

    def active_members(self) -> List[int]:
        """Participants that have not failed."""
        return [node for node in sorted(self.nodes) if node not in self.failed]

    def receivers(self) -> List[int]:
        """Participants other than the root that have not failed."""
        return [node for node in self.active_members() if node != self.root]

    def status(self) -> MeshStatus:
        """A point-in-time summary of the mesh."""
        peerings = sum(len(node.peers.senders) for node in self.nodes.values())
        return MeshStatus(
            time_s=self.simulator.time,
            active_nodes=len(self.active_members()),
            mesh_flows=len(self.mesh_flows),
            tree_flows=len(self.tree_flows),
            total_peerings=peerings,
        )

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One full protocol pass; call between simulator begin/end step."""
        self._deliver_phase()
        self._source_phase()
        self._forward_phase()
        self._serve_peers_phase()
        if self._epoch_timer.fire(now):
            self._run_ransub_epoch(now)
        if self._refresh_timer.fire(now):
            self._refresh_recovery_state()
        self._update_flow_demands()

    def run(self, duration_s: float, sample_interval_s: float = 5.0) -> None:
        """Drive the simulator for ``duration_s`` seconds of simulated time."""
        from repro.experiments.session import ExperimentSession

        ExperimentSession(
            simulator=self.simulator, system=self, sample_interval_s=sample_interval_s
        ).drive(duration_s)

    # --------------------------------------------------------------- delivery
    def _deliver_phase(self) -> None:
        for (parent, child), flow in list(self.tree_flows.items()):
            delivered = flow.take_delivered()
            if child in self.failed:
                continue
            node = self.nodes[child]
            for sequence in delivered:
                outcome = node.on_packet(sequence, from_node=parent, via_peer=False)
                self.stats.record_receive(
                    child, sequence, duplicate=outcome.duplicate, from_parent=True
                )
        for (sender, receiver), flow in list(self.mesh_flows.items()):
            delivered = flow.take_delivered()
            if receiver in self.failed:
                continue
            node = self.nodes[receiver]
            for sequence in delivered:
                outcome = node.on_packet(sequence, from_node=sender, via_peer=True)
                self.stats.record_receive(
                    receiver, sequence, duplicate=outcome.duplicate, from_parent=False
                )

    def _source_phase(self) -> None:
        if self.root in self.failed:
            return
        packets = (
            self.config.stream_rate_kbps * self.simulator.dt / self.config.packet_kbits
            + self._source_carry
        )
        count = int(packets)
        self._source_carry = packets - count
        root_node = self.nodes[self.root]
        for _ in range(count):
            sequence = self._next_sequence
            self._next_sequence += 1
            if sequence % self._trace_sample_stride == 0:
                self.stats.trace_sequences([sequence])
            root_node.on_packet(sequence, from_node=None, via_peer=False)

    def _forward_phase(self) -> None:
        for node_id in self.active_members():
            node = self.nodes[node_id]
            fresh = node.take_newly_received()
            # Smoothed estimate of how much fresh data this node produces per
            # step; drives the demand of its child tree flows so idle claims
            # do not starve mesh flows sharing the same uplink.
            previous = self._fresh_rate.get(node_id, 0.0)
            self._fresh_rate[node_id] = 0.7 * previous + 0.3 * len(fresh)
            if not fresh:
                continue
            # Offer fresh packets to the recovery queues of our receivers so
            # peers can pull them without waiting for the next Bloom refresh.
            for record in node.peers.receivers.values():
                for sequence in fresh:
                    record.queue.offer_new_packet(sequence)
            if not node.disjoint.children:
                continue

            def try_send(child: int, sequence: int, _parent: int = node_id) -> bool:
                if child in self.failed:
                    return False
                flow = self.tree_flows.get((_parent, child))
                if flow is None:
                    return False
                return flow.try_send(sequence)

            node.disjoint.send_batch(fresh, try_send)

    def _serve_peers_phase(self) -> None:
        self._sent_this_step: Dict[Tuple[int, int], int] = {}
        for node_id in self.active_members():
            node = self.nodes[node_id]
            for receiver_id, record in list(node.peers.receivers.items()):
                if receiver_id in self.failed:
                    continue
                flow = self.mesh_flows.get((node_id, receiver_id))
                if flow is None:
                    continue
                budget = flow.send_budget()
                if budget <= 0:
                    continue
                batch = record.queue.take_for_send(budget)
                sent = 0
                for sequence in batch:
                    if flow.try_send(sequence):
                        record.period_sent += 1
                        sent += 1
                if sent:
                    self._sent_this_step[(node_id, receiver_id)] = sent

    # ----------------------------------------------------------------- timers
    def _run_ransub_epoch(self, now: float) -> None:
        self._epoch_count += 1
        for node_id in self.active_members():
            self.nodes[node_id].refresh_ticket()
        result = self.ransub.run_epoch(failed_nodes=self.failed)
        if result.completed:
            self._apply_sending_factors()
            self._discover_peers(result.views)
        for node_id in self.active_members():
            self.nodes[node_id].disjoint.reset_epoch()
        if self._epoch_count % self.config.eviction_period_epochs == 0:
            self._improve_mesh()

    def _apply_sending_factors(self) -> None:
        for node_id in self.active_members():
            counts = self.ransub.child_descendant_counts(node_id)
            if counts:
                self.nodes[node_id].disjoint.update_sending_factors(counts)

    def _discover_peers(self, views: Dict[int, "RanSubView"]) -> None:  # noqa: F821
        for node_id, view in views.items():
            if node_id in self.failed:
                continue
            node = self.nodes[node_id]
            if not node.peers.has_sender_space():
                continue
            exclude: List[int] = list(self.failed)
            if not self.config.peer_with_parent and node.parent is not None:
                exclude.append(node.parent)
            if not self.config.source_serves_peers:
                exclude.append(self.root)
            candidate = node.peers.choose_candidate(view, node.current_ticket(), exclude=exclude)
            if candidate is None or candidate not in self.nodes:
                continue
            self._request_peering(receiver=node_id, sender=candidate)

    def _request_peering(self, receiver: int, sender: int) -> bool:
        """The receiver asks ``sender`` to start sending to it."""
        if sender in self.failed or receiver in self.failed:
            return False
        if sender == self.root and not self.config.source_serves_peers:
            return False
        sender_node = self.nodes[sender]
        receiver_node = self.nodes[receiver]
        # The peering request carries the receiver's Bloom filter; the sender
        # receives it whether or not it accepts.
        installed = self._initial_request_for(receiver_node, sender)
        self.stats.record_control(sender, installed.size_bytes())
        if not sender_node.peers.has_receiver_space():
            # Rejected: no space in the sender's receiver list.
            self.stats.record_control(receiver, SMALL_CONTROL_BYTES)
            return False
        epoch = self.ransub.epoch
        receiver_node.peers.add_sender(sender, epoch)
        sender_node.peers.add_receiver(receiver, epoch)
        self.mesh_flows[(sender, receiver)] = self.simulator.create_flow(
            sender, receiver, label=f"mesh:{sender}->{receiver}", demand_kbps=0.0
        )
        # Re-deal the recovery rows across the receiver's (now larger) sender
        # set right away so the new sender gets a single row rather than the
        # whole range (which would duplicate the other senders' work).
        self._refresh_receiver_requests(receiver)
        self.stats.record_control(receiver, SMALL_CONTROL_BYTES)
        return True

    def _initial_request_for(self, receiver_node: BulletNode, sender: int) -> RecoveryRequest:
        """A request covering the receiver's full recovery range for a new sender."""
        low, high = receiver_node.working_set.recovery_range(self.config.recovery_span_packets)
        high += self.config.recovery_lookahead_packets
        bloom = receiver_node.working_set.bloom_filter(
            expected_items=max(self.config.recovery_span_packets, 128),
            false_positive_rate=self.config.bloom_false_positive_rate,
        )
        return RecoveryRequest(
            receiver=receiver_node.node,
            bloom=bloom,
            low=low,
            high=high,
            mod=0,
            total_senders=1,
            reported_bandwidth_kbps=receiver_node.reported_bandwidth_kbps(
                self.config.bloom_refresh_s
            ),
        )

    def _refresh_recovery_state(self) -> None:
        for node_id in self.active_members():
            self._refresh_receiver_requests(node_id)

    def _refresh_receiver_requests(self, node_id: int) -> None:
        """Rebuild and install one receiver's recovery requests at its senders."""
        node = self.nodes[node_id]
        if not node.peers.senders:
            return
        requests = node.build_recovery_requests(self.config.bloom_refresh_s)
        for sender_id, request in requests.items():
            if sender_id in self.failed or sender_id not in self.nodes:
                continue
            sender_node = self.nodes[sender_id]
            record = sender_node.peers.receivers.get(node_id)
            if record is None:
                continue
            record.queue.install_request(
                request,
                sender_node.working_set.sequences_in_range(request.low, request.high),
            )
            record.reported_bandwidth_kbps = request.reported_bandwidth_kbps
            # The sender receives the refreshed Bloom filter.
            self.stats.record_control(sender_id, request.size_bytes())

    def _improve_mesh(self) -> None:
        """Section 3.4: drop wasteful or under-performing peers on both sides."""
        for node_id in self.active_members():
            node = self.nodes[node_id]
            drop_sender = node.peers.evaluate_senders()
            if drop_sender is not None:
                self._tear_down_peering(sender=drop_sender, receiver=node_id)
            drop_receiver = node.peers.evaluate_receivers()
            if drop_receiver is not None:
                self._tear_down_peering(sender=node_id, receiver=drop_receiver)
            node.peers.reset_periods()

    def _tear_down_peering(self, sender: int, receiver: int) -> None:
        if receiver in self.nodes:
            self.nodes[receiver].peers.remove_sender(sender)
        if sender in self.nodes:
            self.nodes[sender].peers.remove_receiver(receiver)
        flow = self.mesh_flows.pop((sender, receiver), None)
        if flow is not None:
            self.simulator.remove_flow(flow)

    def _update_flow_demands(self) -> None:
        dt = self.simulator.dt
        sent_this_step = getattr(self, "_sent_this_step", {})
        for (sender, receiver), flow in self.mesh_flows.items():
            record = self.nodes[sender].peers.receivers.get(receiver)
            pending = record.queue.pending_count() if record is not None else 0
            # Demand covers the backlog plus the rate we just sustained, so a
            # queue fully drained this step does not zero out next step's
            # allocation (which would halve mesh throughput by oscillating).
            recent = sent_this_step.get((sender, receiver), 0)
            total = pending + recent
            if total <= 0:
                flow.set_demand(0.0)
            else:
                flow.set_demand((total + 1) * self.config.packet_kbits / dt)
        for (parent, child), flow in self.tree_flows.items():
            if parent in self.failed or child in self.failed:
                flow.set_demand(0.0)
                continue
            if parent == self.root:
                flow.set_demand(self.config.stream_rate_kbps)
                continue
            fresh_rate_kbps = (
                self._fresh_rate.get(parent, 0.0) * self.config.packet_kbits / dt
            )
            demand = min(
                self.config.stream_rate_kbps,
                max(1.25 * fresh_rate_kbps, 4 * self.config.packet_kbits / dt),
            )
            flow.set_demand(demand)

    # ---------------------------------------------------------------- failure
    def fail_node(self, node_id: int) -> None:
        """Fail one participant: it stops sending, receiving and responding.

        The underlying tree is deliberately not repaired (the paper's
        worst-case assumption); RanSub behaviour depends on
        ``config.ransub_failure_detection``.
        """
        if node_id == self.root:
            raise ValueError("failing the source is not part of the evaluation")
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        self.failed.add(node_id)
        self.nodes[node_id].failed = True
        for key, flow in list(self.tree_flows.items()):
            if node_id in key:
                self.simulator.remove_flow(flow)
                del self.tree_flows[key]
        for key, flow in list(self.mesh_flows.items()):
            if node_id in key:
                self.simulator.remove_flow(flow)
                del self.mesh_flows[key]


@register_system(
    "bullet", description="Bullet: overlay tree + RanSub mesh recovery (the paper's system)"
)
def _build_bullet(ctx: BuildContext) -> BulletMesh:
    return BulletMesh(ctx.simulator, ctx.tree, ctx.config.bullet_config())
