"""Bullet's disjoint data send routine (Section 3.3, Figure 5).

A parent forwards each received packet so that, across all packets, the
expected number of overlay nodes holding any given packet is the same:

* every child *owns* a share of the stream proportional to its subtree size
  (its *sending factor*); each packet is offered first to the child whose
  sent-so-far share trails its sending factor the most;
* if the owning child's transport would block, ownership is transferred to
  any child that can accept the packet ("children with more than adequate
  bandwidth will own more of their share of packets");
* after ownership is settled, the packet is additionally offered to every
  other child according to its *limiting factor* — the fraction of the parent
  stream beyond its owned share the child has recently been able to absorb.
  Successful extra sends nudge the limiting factor up by one packet per
  epoch; failed ones nudge it down by the same amount.

With ``disjoint_send`` disabled the routine degenerates into "send everything
to every child, subject to the transport" — the Figure 10 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set

from repro.core.config import BulletConfig

#: Signature of the transport callback: (child, sequence) -> accepted?
TrySend = Callable[[int, int], bool]


@dataclass
class ChildSendState:
    """Per-child bookkeeping used by the disjoint send routine."""

    child: int
    sending_factor: float = 0.0
    limiting_factor: float = 1.0
    #: Packets this child owned (accepted) in the current epoch.
    owned_sent: int = 0
    #: All packets accepted by this child's transport in the current epoch.
    total_sent: int = 0
    #: Sequences already forwarded to this child (duplicate suppression).
    sent_filter: Set[int] = field(default_factory=set)
    #: Lifetime counters (for statistics and tests).
    lifetime_sent: int = 0
    lifetime_rejected: int = 0


class DisjointSender:
    """Implements the Figure 5 send routine for one parent node."""

    def __init__(self, config: BulletConfig, children: Sequence[int]) -> None:
        self.config = config
        self._children: Dict[int, ChildSendState] = {
            child: ChildSendState(child=child, limiting_factor=config.limiting_factor_initial)
            for child in children
        }
        self._epoch_packets: int = 0
        #: Child states in child-id order; rebuilt lazily after membership
        #: changes (the send hot path walks this list once per packet).
        self._ordered: List[ChildSendState] | None = None
        #: Running sum of ``owned_sent`` across children this epoch.
        self._owned_total: int = 0
        #: Packets no child could accept; cached for peer recovery (the parent
        #: "will cache the data packet and serve it to its requesting peers").
        self.dropped_sequences: List[int] = []
        self._set_equal_sending_factors()

    # ---------------------------------------------------------------- set-up
    def _set_equal_sending_factors(self) -> None:
        count = len(self._children)
        for state in self._children.values():
            state.sending_factor = 1.0 / count if count else 0.0

    @property
    def children(self) -> List[int]:
        """Children currently managed by this sender."""
        return sorted(self._children)

    def child_state(self, child: int) -> ChildSendState:
        """Bookkeeping for one child (raises ``KeyError`` if unknown)."""
        return self._children[child]

    def add_child(self, child: int) -> None:
        """Adopt a newly joined child (counts as a subtree of 1 until RanSub
        reports real descendant counts) and re-normalize sending factors."""
        if child in self._children:
            return
        self._children[child] = ChildSendState(
            child=child, limiting_factor=self.config.limiting_factor_initial
        )
        self._ordered = None
        self.update_sending_factors({})

    def remove_child(self, child: int) -> None:
        """Forget a departed child and re-normalize sending factors."""
        state = self._children.pop(child, None)
        if state is not None:
            self._owned_total -= state.owned_sent
        self._ordered = None
        self.update_sending_factors({})

    def update_sending_factors(self, descendant_counts: Dict[int, int]) -> None:
        """Recompute sending factors from per-child subtree sizes.

        ``descendant_counts`` maps child -> number of nodes in its subtree
        (including the child itself), as reported by RanSub's collect phase.
        Children missing from the map count as 1.  ``sf_i = d_i / sum_j d_j``.
        """
        if not self._children:
            return
        weights = {
            child: max(float(descendant_counts.get(child, 1)), 1.0) for child in self._children
        }
        total = sum(weights.values())
        for child, state in self._children.items():
            state.sending_factor = weights[child] / total if total > 0 else 0.0

    def reset_epoch(self) -> None:
        """Start a new epoch: ownership proportions are measured per epoch."""
        self._epoch_packets = 0
        self._owned_total = 0
        for state in self._children.values():
            state.owned_sent = 0
            state.total_sent = 0

    # ------------------------------------------------------------------ send
    def send_packet(self, sequence: int, try_send: TrySend) -> List[int]:
        """Forward one packet to children per Figure 5; returns the recipients."""
        batch = self.send_batch([sequence], try_send)
        return sorted(child for child, sequences in batch.items() if sequence in sequences)

    def send_batch(self, sequences: Sequence[int], try_send: TrySend) -> Dict[int, List[int]]:
        """Forward a batch of freshly received packets to the children.

        The batch is processed in two rounds, which is what the Figure 5
        per-packet routine converges to in continuous operation:

        1. *Ownership round* — every packet is offered to the child whose
           owned share trails its sending factor the most; if that child's
           transport blocks, ownership is transferred to any child that can
           accept it.  When children bandwidth is tight this round alone runs,
           so the children receive (mostly) disjoint data.
        2. *Extra-bandwidth round* — with whatever transport budget remains,
           each packet is additionally offered to the other children according
           to their limiting factors, which adapt up on success and down on
           failure exactly as in the paper.

        Returns a map from child to the packets accepted for it.
        """
        recipients: Dict[int, List[int]] = {child: [] for child in self._children}
        if not self._children:
            return recipients
        if not self.config.disjoint_send:
            for sequence in sequences:
                for child in self._send_non_disjoint(sequence, try_send):
                    recipients[child].append(sequence)
            return recipients

        step = self.config.limiting_factor_step
        # Round 1: ownership.
        for sequence in sequences:
            self._epoch_packets += 1
            owned = False
            ordered = self._children_by_deficit()
            for state in ordered:
                if sequence in state.sent_filter:
                    continue
                if try_send(state.child, sequence):
                    self._record_send(state, sequence, owned=True)
                    recipients[state.child].append(sequence)
                    owned = True
                    break
                state.lifetime_rejected += 1
            if not owned:
                # No child could accept the packet: the sum of children
                # bandwidths is inadequate.  Cache it so peers can still
                # recover it from us.
                self.dropped_sequences.append(sequence)

        # Round 2: extra bandwidth, governed by the limiting factors.
        for sequence in sequences:
            for state in self._iter_children():
                if sequence in state.sent_filter:
                    continue
                if not self._limiting_factor_selects(state, sequence):
                    continue
                if try_send(state.child, sequence):
                    self._record_send(state, sequence, owned=False)
                    recipients[state.child].append(sequence)
                    state.limiting_factor = min(1.0, state.limiting_factor + step)
                else:
                    state.lifetime_rejected += 1
                    state.limiting_factor = max(
                        self.config.limiting_factor_min, state.limiting_factor - step
                    )
        return recipients

    def _children_by_deficit(self) -> List[ChildSendState]:
        """Children ordered by how far their owned share trails the target."""
        total = self._owned_total

        def deficit(state: ChildSendState) -> float:
            share = state.owned_sent / total if total > 0 else 0.0
            return state.sending_factor - share

        return sorted(self._iter_children(), key=deficit, reverse=True)

    def _send_non_disjoint(self, sequence: int, try_send: TrySend) -> List[int]:
        """Figure 10 baseline: attempt to send every packet to every child."""
        recipients: List[int] = []
        sent_any = False
        for state in self._iter_children():
            if sequence in state.sent_filter:
                continue
            if try_send(state.child, sequence):
                self._record_send(state, sequence, owned=True)
                recipients.append(state.child)
                sent_any = True
            else:
                state.lifetime_rejected += 1
        if not sent_any:
            self.dropped_sequences.append(sequence)
        return recipients

    # ---------------------------------------------------------------- helpers
    def _iter_children(self) -> List[ChildSendState]:
        ordered = self._ordered
        if ordered is None:
            ordered = self._ordered = [
                self._children[child] for child in sorted(self._children)
            ]
        return ordered

    def _limiting_factor_selects(self, state: ChildSendState, sequence: int) -> bool:
        """Deterministically select the ``lf`` fraction of packets for a child.

        The paper forwards packet ``key`` when ``key mod (1/lf) == 0``; with a
        real-valued limiting factor we use the equivalent stride test.
        """
        lf = state.limiting_factor
        if lf >= 1.0:
            return True
        stride = max(2, int(round(1.0 / max(lf, self.config.limiting_factor_min))))
        return sequence % stride == 0

    def _record_send(self, state: ChildSendState, sequence: int, owned: bool) -> None:
        state.sent_filter.add(sequence)
        state.total_sent += 1
        state.lifetime_sent += 1
        if owned:
            state.owned_sent += 1
            self._owned_total += 1
        if len(state.sent_filter) > 4 * self.config.working_set_window:
            # Bound memory: forget which very old sequences went to this child.
            cutoff = sequence - 2 * self.config.working_set_window
            state.sent_filter = {seq for seq in state.sent_filter if seq >= cutoff}

    # ------------------------------------------------------------- inspection
    def ownership_shares(self) -> Dict[int, float]:
        """Fraction of this epoch's owned packets that went to each child."""
        total = sum(state.owned_sent for state in self._children.values())
        if total == 0:
            return {child: 0.0 for child in self._children}
        return {child: state.owned_sent / total for child, state in self._children.items()}

    def take_dropped(self) -> List[int]:
        """Return and clear the packets no child could accept."""
        dropped, self.dropped_sequences = self.dropped_sequences, []
        return dropped
