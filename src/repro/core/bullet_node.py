"""Per-participant Bullet state: working set, disjoint sender, peer lists.

A :class:`BulletNode` owns everything one overlay participant keeps in
memory *and* every protocol decision that in a real deployment would run on
that participant: answering peering requests, installing recovery refreshes,
reacting to RanSub distribute sets with peer discovery, and evicting peers.

Cross-node interactions never touch another node's state directly — they are
expressed as typed control messages (see :mod:`repro.core.control_messages`
and the RanSub messages in :mod:`repro.ransub.protocol`) appended to this
node's :attr:`outbox`.  The :class:`~repro.core.mesh.BulletMesh` scheduler
drains outboxes into the simulated control channel and feeds delivered
messages back through :meth:`handle_control`.  Side effects that live in the
orchestration layer (opening and closing mesh data flows) are requested
through the narrow :class:`ControlPlaneServices` interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Set

from repro.core.config import BulletConfig
from repro.core.control_messages import (
    PeeringReply,
    PeeringRequest,
    PeeringTeardown,
    RecoveryRefresh,
)
from repro.core.disjoint import DisjointSender
from repro.core.peering import PeerManager
from repro.core.recovery import RecoveryRequest, build_recovery_requests
from repro.network.control import ControlMessage
from repro.ransub.protocol import RanSubCollect, RanSubDistribute, RanSubNodeState
from repro.ransub.state import MemberSummary
from repro.reconcile.summary_ticket import SummaryTicket
from repro.reconcile.working_set import WorkingSet
from repro.util.rng import SeededRng

if TYPE_CHECKING:
    from repro.ransub.state import RanSubView


class ControlPlaneServices(Protocol):
    """What node-level control handlers may ask of the orchestration layer."""

    def open_mesh_flow(self, sender: int, receiver: int) -> None:
        """Ensure a mesh data flow ``sender -> receiver`` exists."""
        ...  # pragma: no cover - protocol definition

    def close_mesh_flow(self, sender: int, receiver: int) -> None:
        """Tear a mesh data flow down (no-op if absent)."""
        ...  # pragma: no cover - protocol definition

    def peer_exclusions(self, node: int) -> Set[int]:
        """Nodes this participant must not peer with (failed nodes, the
        source when it declines peers, ...)."""
        ...  # pragma: no cover - protocol definition


@dataclass
class ReceiveOutcome:
    """What happened when a packet arrived at a node."""

    useful: bool
    duplicate: bool


class BulletNode:
    """One Bullet overlay participant."""

    def __init__(
        self,
        node: int,
        config: BulletConfig,
        children: Sequence[int],
        parent: Optional[int],
        is_root: bool = False,
        ransub_rng: Optional[SeededRng] = None,
    ) -> None:
        self.node = node
        self.config = config
        self.parent = parent
        self.is_root = is_root
        self.working_set = WorkingSet(
            prune_window=config.working_set_window,
            ticket_entries=config.ticket_entries,
        )
        self.disjoint = DisjointSender(config, children)
        self.peers = PeerManager(node, config)
        self.ransub = RanSubNodeState(
            node=node,
            parent=parent,
            children=children,
            set_size=config.ransub_set_size,
            rng=ransub_rng if ransub_rng is not None else SeededRng(config.seed, "ransub"),
            failure_detection=config.ransub_failure_detection,
        )
        self.failed = False
        #: Children that joined mid-epoch; folded into the RanSub machine at
        #: the next epoch boundary so a running collect phase never waits on
        #: a child whose epoch has not started.
        self._pending_ransub_children: List[int] = []
        #: Control messages awaiting transmission by the mesh scheduler.
        self.outbox: List[ControlMessage] = []
        #: Outstanding peering requests: candidate -> time the request left.
        self.pending_requests: Dict[int, float] = {}
        #: Packets that arrived since the previous protocol phase and must be
        #: considered for forwarding to children and offered to receivers.
        self.newly_received: List[int] = []
        #: Useful packets received during the current reporting period
        #: (drives the bandwidth figure reported to senders).
        self._period_useful_packets: int = 0
        #: Counts Bloom-refresh rounds to rotate the row assignment (Fig 4b).
        self._refresh_round: int = 0
        #: Per-rotation-phase cache of (selection key, requests) for the
        #: incremental resend-verbatim path, valid for one sender set.
        self._refresh_cache: Dict[int, tuple] = {}
        self._refresh_cache_senders: tuple = ()
        self._cached_ticket: SummaryTicket = SummaryTicket(
            num_entries=config.ticket_entries
        )

    # ------------------------------------------------------------- reception
    def on_packet(self, sequence: int, from_node: Optional[int], via_peer: bool) -> ReceiveOutcome:
        """Process one arriving packet.

        ``from_node`` identifies the overlay hop it came from (``None`` for
        packets originating locally at the root).  ``via_peer`` distinguishes
        perpendicular mesh packets from parent-stream packets so the per-peer
        duplicate accounting of Section 3.4 stays accurate.
        """
        useful = self.working_set.add(sequence)
        duplicate = not useful
        if useful:
            self.newly_received.append(sequence)
            self._period_useful_packets += 1
        if via_peer and from_node is not None:
            record = self.peers.senders.get(from_node)
            if record is not None:
                record.record_packet(duplicate=duplicate)
        return ReceiveOutcome(useful=useful, duplicate=duplicate)

    def take_newly_received(self) -> List[int]:
        """Drain packets that arrived since the previous protocol phase."""
        fresh, self.newly_received = self.newly_received, []
        return fresh

    # ---------------------------------------------------------------- tickets
    def refresh_ticket(self) -> SummaryTicket:
        """Rebuild the cached summary ticket over the recent working set."""
        self._cached_ticket = self.working_set.summary_ticket(
            window=self.config.ticket_window,
            sample_stride=self.config.ticket_sample_stride,
            incremental=self.config.incremental_protocol,
        )
        return self._cached_ticket

    def current_ticket(self) -> SummaryTicket:
        """The most recently built summary ticket (rebuilt each RanSub epoch)."""
        return self._cached_ticket

    def member_summary(self, epoch: int) -> MemberSummary:
        """The node's state as carried inside RanSub messages."""
        return MemberSummary(node=self.node, ticket=self._cached_ticket, epoch=epoch)

    # ----------------------------------------------------------- control I/O
    def take_outbox(self) -> List[ControlMessage]:
        """Drain the messages this node wants transmitted."""
        messages, self.outbox = self.outbox, []
        return messages

    def handle_control(
        self, message: ControlMessage, services: ControlPlaneServices, now: float
    ) -> None:
        """Process one delivered control message (replies go to the outbox)."""
        if self.failed:
            return
        if isinstance(message, RanSubCollect):
            self.outbox.extend(self.ransub.handle_collect(message))
            self._apply_sending_factors()
        elif isinstance(message, RanSubDistribute):
            self.outbox.extend(self.ransub.handle_distribute(message))
            if self.ransub.view is not None and self.ransub.view.epoch == message.epoch:
                self._discover_peer(self.ransub.view, services, now)
        elif isinstance(message, PeeringRequest):
            self._handle_peering_request(message, services)
        elif isinstance(message, PeeringReply):
            self._handle_peering_reply(message, now)
        elif isinstance(message, RecoveryRefresh):
            self._handle_recovery_refresh(message)
        elif isinstance(message, PeeringTeardown):
            self._handle_peering_teardown(message, services)

    # ----------------------------------------------------------------- ransub
    def add_child(self, child: int) -> None:
        """Adopt a tree child that joined mid-run.

        The disjoint sender starts forwarding stream data to the child
        immediately; the RanSub state machine picks it up at the next epoch
        boundary (see :attr:`_pending_ransub_children`).
        """
        self.disjoint.add_child(child)
        if child not in self._pending_ransub_children:
            self._pending_ransub_children.append(child)

    def begin_ransub_epoch(
        self, epoch: int, now: float, timeout_s: Optional[float]
    ) -> None:
        """Start a RanSub epoch: leaves emit their collect set right away."""
        if self._pending_ransub_children:
            for child in self._pending_ransub_children:
                self.ransub.add_child(child)
            self._pending_ransub_children = []
        self.refresh_ticket()
        self.disjoint.reset_epoch()
        self.outbox.extend(
            self.ransub.begin_epoch(epoch, self.member_summary(epoch), now, timeout_s)
        )
        self._apply_sending_factors()

    def poll_control(self, now: float) -> None:
        """Fire node-local control timeouts (RanSub deadline, stale requests)."""
        self.poll_ransub(now)
        self.poll_pending_requests(now)

    def poll_ransub(self, now: float) -> bool:
        """Fire the RanSub collect deadline; True if a timeout produced messages.

        The mesh scheduler polls nodes deepest-first and pumps the channel
        between depth levels, so a timed-out child's late collect reaches
        its parent before the parent's own deadline check.
        """
        messages = self.ransub.poll(now)
        if messages:
            self.outbox.extend(messages)
            self._apply_sending_factors()
            return True
        return False

    def ransub_due(self, now: float) -> bool:
        """Whether :meth:`poll_ransub` would fire at ``now``, without firing it.

        A pure probe over the RanSub deadline condition; the sharded
        head-mesh coordinator uses it to skip the deepest-first poll cascade
        on the (overwhelmingly common) steps where no deadline is due.
        """
        return self.ransub.deadline_due(now)

    def poll_pending_requests(self, now: float) -> None:
        """Expire peering requests that never got a reply."""
        timeout = self.config.peering_timeout_s
        expired = [
            candidate
            for candidate, sent_at in self.pending_requests.items()
            if now - sent_at >= timeout
        ]
        for candidate in expired:
            # No reply (lost message or dead candidate): free the trial slot.
            del self.pending_requests[candidate]

    def _apply_sending_factors(self) -> None:
        if self.ransub.collect_finalized and self.ransub.child_populations:
            self.disjoint.update_sending_factors(self.ransub.child_populations)

    # ------------------------------------------------------------- discovery
    def _discover_peer(
        self, view: "RanSubView", services: ControlPlaneServices, now: float
    ) -> None:
        """Pick one candidate from a fresh view and ask it to serve us."""
        if self.is_root:
            return  # the source already has everything
        if not self.peers.has_sender_space():
            return
        if len(self.peers.senders) + len(self.pending_requests) >= self.config.max_senders:
            return
        exclude: Set[int] = set(services.peer_exclusions(self.node))
        exclude.update(self.pending_requests)
        if not self.config.peer_with_parent and self.parent is not None:
            exclude.add(self.parent)
        candidate = self.peers.choose_candidate(
            view, self.current_ticket(), exclude=sorted(exclude)
        )
        if candidate is None:
            return
        self.request_peering(candidate, now)

    def request_peering(self, candidate: int, now: float) -> None:
        """Send a peering request carrying our current recovery request."""
        self.pending_requests[candidate] = now
        self.outbox.append(
            PeeringRequest(
                src=self.node,
                dst=candidate,
                request=self.initial_recovery_request(candidate),
                epoch=self.ransub.epoch,
            )
        )

    def initial_recovery_request(self, candidate: int) -> RecoveryRequest:
        """A request covering our full recovery range, for one new sender.

        The single-sender case of the Figure 4 builder: the candidate gets
        the whole range (``mod=0, total_senders=1``) until the accept
        triggers a re-deal across the full sender set.  Unlike
        :meth:`build_recovery_requests` this does not start a new reporting
        period — the periodic refreshes own that clock.
        """
        return build_recovery_requests(
            receiver=self.node,
            working_set=self.working_set,
            senders=[candidate],
            config=self.config,
            reported_bandwidth_kbps=self.reported_bandwidth_kbps(
                self.config.bloom_refresh_s
            ),
            bloom=self._recovery_bloom(),
        )[candidate]

    # ------------------------------------------------------------- handlers
    def _handle_peering_request(
        self, message: PeeringRequest, services: ControlPlaneServices
    ) -> None:
        serves = not self.is_root or self.config.source_serves_peers
        accepted = serves and (
            self.peers.has_receiver_space() or message.src in self.peers.receivers
        )
        if accepted:
            record = self.peers.add_receiver(message.src, message.epoch)
            record.queue.install_request(
                message.request,
                self.working_set.sequences_in_range_view(
                    message.request.low, message.request.high
                ),
            )
            record.reported_bandwidth_kbps = message.request.reported_bandwidth_kbps
            services.open_mesh_flow(self.node, message.src)
        self.outbox.append(
            PeeringReply(
                src=self.node, dst=message.src, accepted=accepted, epoch=message.epoch
            )
        )

    def _handle_peering_reply(self, message: PeeringReply, now: float) -> None:
        self.pending_requests.pop(message.src, None)
        if not message.accepted:
            return
        if message.src in self.peers.senders:
            return  # duplicate accept (e.g. a re-request healing a half-open peering)
        if not self.peers.has_sender_space():
            # Our sender list filled while the request was in flight.
            self.outbox.append(
                PeeringTeardown(src=self.node, dst=message.src, dropped_by="receiver")
            )
            return
        self.peers.add_sender(message.src, message.epoch)
        # Re-deal the recovery rows across the (now larger) sender set right
        # away so the new sender gets a single row rather than the whole
        # range (which would duplicate the other senders' work).
        self.send_recovery_refreshes()

    def _handle_recovery_refresh(self, message: RecoveryRefresh) -> None:
        record = self.peers.receivers.get(message.src)
        if record is None:
            # We are not serving this node (teardown raced the refresh, or a
            # lost reply left it believing we do): tell it to forget us.
            self.outbox.append(
                PeeringTeardown(src=self.node, dst=message.src, dropped_by="sender")
            )
            return
        request = message.request
        installed = record.queue.request
        if installed is not None and request.same_selection(installed):
            # Unchanged selection (same snapshot, range and row): the pending
            # queue already matches; skip materializing our holdings.
            record.queue.adopt_request(request, self.working_set.low_water)
        else:
            record.queue.install_request(
                request,
                self.working_set.sequences_in_range_view(request.low, request.high),
            )
        record.reported_bandwidth_kbps = request.reported_bandwidth_kbps
        record.period_refreshes += 1

    def _handle_peering_teardown(
        self, message: PeeringTeardown, services: ControlPlaneServices
    ) -> None:
        if message.dropped_by == "receiver":
            # Our receiver dropped us: stop sending to it.
            if message.src in self.peers.receivers:
                self.peers.remove_receiver(message.src)
                services.close_mesh_flow(self.node, message.src)
        else:
            # Our sender stopped serving us (or never was).
            self.peers.remove_sender(message.src)
            self.pending_requests.pop(message.src, None)

    # --------------------------------------------------------------- recovery
    def reported_bandwidth_kbps(self, period_s: float) -> float:
        """Useful bandwidth received during the current reporting period."""
        if period_s <= 0:
            return 0.0
        return self._period_useful_packets * self.config.packet_kbits / period_s

    def _recovery_bloom(self):
        """The filter recovery requests carry this refresh round.

        Incremental mode: a frozen snapshot of the working set's live filter
        (the same object is returned until the working set changes, which is
        what lets senders recognise unchanged selections).  Legacy mode:
        ``None``, so :func:`build_recovery_requests` rebuilds from scratch.
        """
        if not self.config.incremental_protocol:
            return None
        return self.working_set.bloom_snapshot(
            expected_items=max(self.config.recovery_span_packets, 128),
            false_positive_rate=self.config.bloom_false_positive_rate,
        )

    def build_recovery_requests(self, period_s: float) -> Dict[int, RecoveryRequest]:
        """Build this period's recovery requests for all sending peers."""
        requests = build_recovery_requests(
            receiver=self.node,
            working_set=self.working_set,
            senders=self.peers.sender_ids(),
            config=self.config,
            reported_bandwidth_kbps=self.reported_bandwidth_kbps(period_s),
            rotation=self._refresh_round,
            bloom=self._recovery_bloom(),
        )
        self._period_useful_packets = 0
        self._refresh_round += 1
        return requests

    def send_recovery_refreshes(self) -> None:
        """Queue a recovery request for every sending peer (Figure 4)."""
        if not self.peers.senders:
            return
        for sender_id, request in self._refresh_requests().items():
            self.outbox.append(
                RecoveryRefresh(src=self.node, dst=sender_id, request=request)
            )

    def _refresh_requests(self) -> Dict[int, RecoveryRequest]:
        """This round's refresh requests, regenerated only when they changed.

        In incremental mode a previous round's requests are resent verbatim
        when nothing that determines them moved: the sender set, the (low,
        high) range, the Bloom snapshot (compared by identity — the working
        set hands out the same frozen object until its content changes), the
        row assignment's phase and the reported bandwidth.  The rotation
        phase cycles through ``total`` residues, so the cache keeps one
        entry per phase: a stalled node with N senders starts hitting again
        after N rounds.  The reporting period still restarts and the
        rotation still advances, so a resend is indistinguishable from a
        from-scratch rebuild on the wire.
        """
        if not self.config.incremental_protocol:
            return self.build_recovery_requests(self.config.bloom_refresh_s)
        senders = tuple(self.peers.sender_ids())
        total = len(senders)
        low, high = self.working_set.recovery_range(self.config.recovery_span_packets)
        high += self.config.recovery_lookahead_packets
        if senders != self._refresh_cache_senders:
            # The sender set changed: every phase's entry is stale (and a
            # stale entry would pin dead snapshots in memory).
            self._refresh_cache.clear()
            self._refresh_cache_senders = senders
        phase = self._refresh_round % total
        key = (
            low,
            high,
            self._recovery_bloom(),
            self.reported_bandwidth_kbps(self.config.bloom_refresh_s),
        )
        cached = self._refresh_cache.get(phase)
        if cached is not None and cached[0] == key:
            self._period_useful_packets = 0
            self._refresh_round += 1
            return cached[1]
        requests = self.build_recovery_requests(self.config.bloom_refresh_s)
        self._refresh_cache[phase] = (key, requests)
        return requests

    # --------------------------------------------------------------- eviction
    def evaluate_peers(self, services: ControlPlaneServices, epoch: int) -> None:
        """Section 3.4: drop wasteful or under-performing peers on both sides.

        Also garbage-collects half-open receiver records (a receiver that
        never refreshes its recovery request — e.g. because our accepting
        reply was lost — is dropped after two silent evaluation periods).
        """
        drop_sender = self.peers.evaluate_senders()
        if drop_sender is not None:
            self.peers.remove_sender(drop_sender)
            self.outbox.append(
                PeeringTeardown(src=self.node, dst=drop_sender, dropped_by="receiver")
            )
        drop_receiver = self.peers.evaluate_receivers()
        if drop_receiver is not None:
            self._drop_receiver(drop_receiver, services)
        # Garbage-collect peerings with excluded nodes — failed peers (a
        # broken TCP-friendly connection is detected in a real deployment)
        # or peers policy forbids; frees their slots for fresh trials.
        dead = services.peer_exclusions(self.node)
        for sender_id in [s for s in self.peers.senders if s in dead]:
            self.peers.remove_sender(sender_id)
        for receiver_id in [r for r in self.peers.receivers if r in dead]:
            self.peers.remove_receiver(receiver_id)
            services.close_mesh_flow(self.node, receiver_id)
        for receiver_id, record in list(self.peers.receivers.items()):
            if (
                record.period_refreshes == 0
                and epoch - record.added_epoch >= self.config.eviction_period_epochs
            ):
                record.stale_rounds += 1
                if record.stale_rounds >= 2:
                    self._drop_receiver(receiver_id, services)
            else:
                record.stale_rounds = 0
        self.peers.reset_periods()

    def _drop_receiver(self, receiver_id: int, services: ControlPlaneServices) -> None:
        self.peers.remove_receiver(receiver_id)
        services.close_mesh_flow(self.node, receiver_id)
        self.outbox.append(
            PeeringTeardown(src=self.node, dst=receiver_id, dropped_by="sender")
        )

    # ------------------------------------------------------------- inspection
    def holdings(self) -> List[int]:
        """Sequence numbers currently in the working set (sorted)."""
        return self.working_set.sequences()

    def describe(self) -> Dict[str, float]:
        """Small status summary used in logs and debugging."""
        return {
            "working_set": float(len(self.working_set)),
            "highest_sequence": float(self.working_set.highest_sequence),
            "senders": float(len(self.peers.senders)),
            "receivers": float(len(self.peers.receivers)),
            "children": float(len(self.disjoint.children)),
        }
