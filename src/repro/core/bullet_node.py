"""Per-participant Bullet state: working set, disjoint sender, peer lists.

A :class:`BulletNode` owns everything one overlay participant keeps in
memory; the :class:`~repro.core.mesh.BulletMesh` orchestrator wires nodes to
the network simulator and drives the protocol timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import BulletConfig
from repro.core.disjoint import DisjointSender
from repro.core.peering import PeerManager
from repro.core.recovery import RecoveryRequest, build_recovery_requests
from repro.ransub.state import MemberSummary
from repro.reconcile.summary_ticket import SummaryTicket
from repro.reconcile.working_set import WorkingSet


@dataclass
class ReceiveOutcome:
    """What happened when a packet arrived at a node."""

    useful: bool
    duplicate: bool


class BulletNode:
    """One Bullet overlay participant."""

    def __init__(
        self,
        node: int,
        config: BulletConfig,
        children: Sequence[int],
        parent: Optional[int],
        is_root: bool = False,
    ) -> None:
        self.node = node
        self.config = config
        self.parent = parent
        self.is_root = is_root
        self.working_set = WorkingSet(
            prune_window=config.working_set_window,
            ticket_entries=config.ticket_entries,
        )
        self.disjoint = DisjointSender(config, children)
        self.peers = PeerManager(node, config)
        self.failed = False
        #: Packets that arrived since the previous protocol phase and must be
        #: considered for forwarding to children and offered to receivers.
        self.newly_received: List[int] = []
        #: Useful packets received during the current reporting period
        #: (drives the bandwidth figure reported to senders).
        self._period_useful_packets: int = 0
        #: Counts Bloom-refresh rounds to rotate the row assignment (Fig 4b).
        self._refresh_round: int = 0
        self._cached_ticket: SummaryTicket = SummaryTicket(
            num_entries=config.ticket_entries
        )

    # ------------------------------------------------------------- reception
    def on_packet(self, sequence: int, from_node: Optional[int], via_peer: bool) -> ReceiveOutcome:
        """Process one arriving packet.

        ``from_node`` identifies the overlay hop it came from (``None`` for
        packets originating locally at the root).  ``via_peer`` distinguishes
        perpendicular mesh packets from parent-stream packets so the per-peer
        duplicate accounting of Section 3.4 stays accurate.
        """
        useful = self.working_set.add(sequence)
        duplicate = not useful
        if useful:
            self.newly_received.append(sequence)
            self._period_useful_packets += 1
        if via_peer and from_node is not None:
            record = self.peers.senders.get(from_node)
            if record is not None:
                record.record_packet(duplicate=duplicate)
        return ReceiveOutcome(useful=useful, duplicate=duplicate)

    def take_newly_received(self) -> List[int]:
        """Drain packets that arrived since the previous protocol phase."""
        fresh, self.newly_received = self.newly_received, []
        return fresh

    # ---------------------------------------------------------------- tickets
    def refresh_ticket(self) -> SummaryTicket:
        """Rebuild the cached summary ticket over the recent working set."""
        self._cached_ticket = self.working_set.summary_ticket(
            window=self.config.ticket_window,
            sample_stride=self.config.ticket_sample_stride,
        )
        return self._cached_ticket

    def current_ticket(self) -> SummaryTicket:
        """The most recently built summary ticket (rebuilt each RanSub epoch)."""
        return self._cached_ticket

    def member_summary(self, epoch: int) -> MemberSummary:
        """The node's state as carried inside RanSub messages."""
        return MemberSummary(node=self.node, ticket=self._cached_ticket, epoch=epoch)

    # --------------------------------------------------------------- recovery
    def reported_bandwidth_kbps(self, period_s: float) -> float:
        """Useful bandwidth received during the current reporting period."""
        if period_s <= 0:
            return 0.0
        return self._period_useful_packets * self.config.packet_kbits / period_s

    def build_recovery_requests(self, period_s: float) -> Dict[int, RecoveryRequest]:
        """Build this period's recovery requests for all sending peers."""
        requests = build_recovery_requests(
            receiver=self.node,
            working_set=self.working_set,
            senders=self.peers.sender_ids(),
            config=self.config,
            reported_bandwidth_kbps=self.reported_bandwidth_kbps(period_s),
            rotation=self._refresh_round,
        )
        self._period_useful_packets = 0
        self._refresh_round += 1
        return requests

    # ------------------------------------------------------------- inspection
    def holdings(self) -> List[int]:
        """Sequence numbers currently in the working set (sorted)."""
        return self.working_set.sequences()

    def describe(self) -> Dict[str, float]:
        """Small status summary used in logs and debugging."""
        return {
            "working_set": float(len(self.working_set)),
            "highest_sequence": float(self.working_set.highest_sequence),
            "senders": float(len(self.peers.senders)),
            "receivers": float(len(self.peers.receivers)),
            "children": float(len(self.disjoint.children)),
        }
