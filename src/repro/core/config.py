"""Configuration of the Bullet mesh.

Every default mirrors the value the paper states (or implies) for its
prototype: a 600 Kbps stream, 5-second RanSub epochs carrying 10 summary
tickets, up to 10 sending and 10 receiving peers, Bloom filter refreshes
every 5 seconds, and sender eviction when more than 50% of a peer's packets
are duplicates.  Knobs with no paper-stated value (window sizes, simulation
sampling strides) are documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.units import PACKET_SIZE_KBITS


@dataclass
class BulletConfig:
    """Tunable parameters of a Bullet deployment."""

    # ----------------------------------------------------------------- stream
    #: Source streaming rate (paper: 600 Kbps for ModelNet runs).
    stream_rate_kbps: float = 600.0
    #: Packet size in kilobits (1500-byte packets).
    packet_kbits: float = PACKET_SIZE_KBITS

    # ----------------------------------------------------------------- ransub
    #: RanSub epoch length in seconds (paper default: 5 s).
    ransub_epoch_s: float = 5.0
    #: Summary tickets per collect/distribute set (paper default: 10).
    ransub_set_size: int = 10
    #: Whether the root times out a stalled epoch and keeps distributing
    #: (Section 4.6 failure detection).
    ransub_failure_detection: bool = True

    # ---------------------------------------------------------------- peering
    #: Maximum number of peers sending to a node (paper default: 10).
    max_senders: int = 10
    #: Maximum number of peers a node is willing to send to (paper default: 10).
    max_receivers: int = 10
    #: Do not peer with the tree parent (it already streams to us).
    peer_with_parent: bool = False
    #: Whether the source accepts peering requests.  Off by default: at the
    #: reduced simulation scale every receiver discovers the source within a
    #: few epochs, and mesh flows out of the source would crowd out the tree
    #: flows that inject fresh data into the system (at the paper's 1000-node
    #: scale the source's 10 receiver slots are a negligible fraction, so this
    #: contention does not arise there).
    source_serves_peers: bool = False
    #: Seconds between Bloom filter / recovery-range refreshes (paper: 5 s).
    bloom_refresh_s: float = 5.0
    #: Incremental protocol maintenance: keep each node's Bloom filter live
    #: (mutate-in-place, versioned) and export frozen snapshots instead of
    #: rebuilding from the packet store every refresh, and let senders skip
    #: the holdings rescan when a refresh's selection is unchanged.
    #: Observationally equivalent to the from-scratch path (False), which is
    #: kept for benchmarks and regression comparison.
    incremental_protocol: bool = True
    #: Stagger per-node Bloom-refresh timers across the refresh period (each
    #: node gets a deterministic phase offset) so refresh work spreads over
    #: simulation steps instead of spiking on one step in every five.
    refresh_stagger: bool = True
    #: Target false-positive rate when sizing Bloom filters.
    bloom_false_positive_rate: float = 0.01
    #: Number of RanSub epochs between peer-set re-evaluations
    #: (paper: "every few RanSub epochs").
    eviction_period_epochs: int = 3
    #: Duplicate fraction above which a sender is dropped (paper: 50%).
    duplicate_threshold: float = 0.5

    # ------------------------------------------------------------ control plane
    #: Extra Bernoulli loss applied to every control message, on top of the
    #: routing path's own loss (scenario knob: lossy control planes).
    control_loss_rate: float = 0.0
    #: Seconds a receiver waits for a peering reply before freeing the trial
    #: slot (lost requests/replies and dead candidates time out here).
    peering_timeout_s: float = 10.0
    #: Seconds a node waits for its children's RanSub collect sets before
    #: proceeding without them (only with ``ransub_failure_detection``).
    #: ``None`` defaults to half the epoch.
    ransub_collect_timeout_s: Optional[float] = None

    # --------------------------------------------------------------- recovery
    #: Width of the (Low, High) recovery window, in packets.  Not stated in
    #: the paper ("a node will attempt to recover packets for a finite amount
    #: of time"); sized to roughly ten seconds of the stream so a packet gets
    #: several Bloom-refresh rounds of recovery opportunity before the
    #: Figure 4 sliding range moves past it.
    recovery_span_packets: int = 600
    #: Maximum packets kept in the working set before pruning old ones.
    working_set_window: int = 4096
    #: How far beyond the receiver's highest-seen sequence the advertised
    #: recovery range extends, in seconds of stream.  The Figure 4 range keeps
    #: advancing between refreshes; advertising an expected advance lets a
    #: sending peer forward a packet in its assigned row as soon as it obtains
    #: it, at the cost of more overlap (duplicates) with what the parent
    #: stream delivers in the same period.  Disabled by default; exposed for
    #: the ablation benchmarks.
    recovery_lookahead_s: float = 0.0

    # ------------------------------------------------------------ disjointness
    #: Enable the Figure 5 disjoint ownership strategy.  Disabling it gives
    #: the non-disjoint baseline of Figure 10.
    disjoint_send: bool = True
    #: Initial per-child limiting factor (fraction of the parent stream a
    #: child receives beyond the packets it owns).
    limiting_factor_initial: float = 1.0
    #: Smallest value the limiting factor may decay to.
    limiting_factor_min: float = 0.05

    # ---------------------------------------------------------- summary ticket
    #: Entries per summary ticket (paper: 120-byte tickets ~= 30 entries).
    ticket_entries: int = 30
    #: Restrict tickets to this many recent packets (None = whole working set).
    ticket_window: int = 600
    #: Sub-sampling stride when building tickets (simulation performance knob).
    ticket_sample_stride: int = 4

    # ------------------------------------------------------------------- misc
    #: Root seed for all of Bullet's random choices.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.stream_rate_kbps <= 0:
            raise ValueError("stream_rate_kbps must be positive")
        if self.packet_kbits <= 0:
            raise ValueError("packet_kbits must be positive")
        if self.ransub_epoch_s <= 0:
            raise ValueError("ransub_epoch_s must be positive")
        if self.ransub_set_size <= 0:
            raise ValueError("ransub_set_size must be positive")
        if self.max_senders < 1 or self.max_receivers < 1:
            raise ValueError("peer limits must be at least 1")
        if not 0.0 < self.duplicate_threshold <= 1.0:
            raise ValueError("duplicate_threshold must be in (0, 1]")
        if self.recovery_span_packets <= 0:
            raise ValueError("recovery_span_packets must be positive")
        if self.working_set_window <= 0:
            raise ValueError("working_set_window must be positive")
        if not 0.0 < self.limiting_factor_initial <= 1.0:
            raise ValueError("limiting_factor_initial must be in (0, 1]")
        if not 0.0 < self.limiting_factor_min <= 1.0:
            raise ValueError("limiting_factor_min must be in (0, 1]")
        if self.eviction_period_epochs < 1:
            raise ValueError("eviction_period_epochs must be at least 1")
        if self.ticket_entries <= 0:
            raise ValueError("ticket_entries must be positive")
        if self.ticket_sample_stride < 1:
            raise ValueError("ticket_sample_stride must be >= 1")
        if not 0.0 <= self.control_loss_rate < 1.0:
            raise ValueError("control_loss_rate must be in [0, 1)")
        if self.peering_timeout_s <= 0:
            raise ValueError("peering_timeout_s must be positive")
        if self.ransub_collect_timeout_s is not None and self.ransub_collect_timeout_s <= 0:
            raise ValueError("ransub_collect_timeout_s must be positive")

    # ------------------------------------------------------------ derived knobs
    @property
    def stream_packets_per_second(self) -> float:
        """Packets per second the source emits at the configured rate."""
        return self.stream_rate_kbps / self.packet_kbits

    @property
    def packets_per_epoch(self) -> float:
        """Stream packets generated during one RanSub epoch."""
        return self.stream_packets_per_second * self.ransub_epoch_s

    @property
    def recovery_lookahead_packets(self) -> int:
        """The recovery-range lookahead expressed in packets."""
        return int(self.stream_packets_per_second * self.recovery_lookahead_s)

    @property
    def effective_collect_timeout_s(self) -> float:
        """The RanSub collect timeout (defaults to half an epoch)."""
        if self.ransub_collect_timeout_s is not None:
            return self.ransub_collect_timeout_s
        return self.ransub_epoch_s / 2.0

    @property
    def limiting_factor_step(self) -> float:
        """Per-adjustment change of a child's limiting factor.

        The paper adjusts the limiting factor "such that one more packet is to
        be sent per epoch" on success (and the same amount down on failure).
        """
        return 1.0 / max(self.packets_per_epoch, 1.0)
