"""An earliest-deadline wakeup index over opaque keys.

The step engine needs to answer two questions cheaply every step:

* "is anything due at or before ``now``?" — without scanning every node;
* "which keys are due?" — so the owning system can run exactly those.

:class:`WakeupQueue` is a lazy binary heap in the style of
:class:`~repro.network.events.EventScheduler`: re-arming a key pushes a new
entry and invalidates the old one by version, so arms and disarms are O(log n)
without heap surgery.  Stale entries are discarded when they surface at the
root.

Keys are opaque and hashable — systems use ``("refresh", node)``-style tuples.
A key has at most one armed deadline at a time; arming again *replaces* the
previous deadline (timers re-arm after every firing, so replace semantics are
what every caller wants).

Due checks use the same ``1e-12`` epsilon as ``PeriodicTimer.fire`` /
``EventScheduler.run_due`` so a wakeup armed from ``time_to_next`` can never
come back *later* than the timer it mirrors — early (spurious) wakeups are
harmless no-ops, late ones would change behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, List, Optional, Tuple

#: Epsilon shared with PeriodicTimer / EventScheduler due checks.
_EPSILON = 1e-12


class WakeupQueue:
    """Tracks the earliest pending wakeup per key."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._counter = itertools.count()
        #: key -> (deadline, entry version) of the *live* heap entry.
        self._armed: Dict[Hashable, Tuple[float, int]] = {}
        #: Counters surfaced through StepEngine.describe().
        self.armed_total = 0
        self.fired_total = 0

    # ------------------------------------------------------------------ arming
    def arm(self, key: Hashable, at_time: float) -> None:
        """Arm (or re-arm) ``key`` to wake at ``at_time``.

        Re-arming at the key's current deadline is a no-op, so periodic
        callers can arm unconditionally without growing the heap.
        """
        current = self._armed.get(key)
        if current is not None and current[0] == at_time:
            return
        version = next(self._counter)
        self._armed[key] = (at_time, version)
        heapq.heappush(self._heap, (at_time, version, key))
        self.armed_total += 1

    def disarm(self, key: Hashable) -> None:
        """Cancel ``key``'s pending wakeup (no-op if not armed)."""
        self._armed.pop(key, None)

    def deadline(self, key: Hashable) -> Optional[float]:
        """The key's armed deadline, or ``None``."""
        entry = self._armed.get(key)
        return entry[0] if entry is not None else None

    # ----------------------------------------------------------------- queries
    def next_time(self) -> Optional[float]:
        """Earliest armed deadline across all keys (``None`` when idle)."""
        heap = self._heap
        armed = self._armed
        while heap:
            at_time, version, key = heap[0]
            if armed.get(key) == (at_time, version):
                return at_time
            heapq.heappop(heap)
        return None

    def pop_due(self, now: float) -> List[Hashable]:
        """Pop and return every key due at or before ``now`` (heap order).

        Popped keys are disarmed; owners re-arm after handling the wakeup.
        """
        due: List[Hashable] = []
        heap = self._heap
        armed = self._armed
        while heap and heap[0][0] <= now + _EPSILON:
            at_time, version, key = heapq.heappop(heap)
            if armed.get(key) == (at_time, version):
                del armed[key]
                due.append(key)
        self.fired_total += len(due)
        return due

    def __len__(self) -> int:
        return len(self._armed)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._armed
