"""The per-session step engine: who needs to run this step?

:class:`StepEngine` owns one :class:`~repro.sched.wakeups.WakeupQueue` shared
by every subsystem in a session.  Systems arm wakeups for the things the
fixed-step loop used to poll unconditionally:

* periodic protocol timers, via :meth:`arm_timer` (which mirrors
  ``PeriodicTimer.time_to_next`` so a wakeup is never later than the timer);
* pending :class:`~repro.network.control.ControlChannel` deliveries
  (``channel.next_due()``);
* dirty-flow notifications from the allocation engine (exact effective-cap
  tracking on :class:`~repro.network.flows.Flow`);
* failure/join injector events (``EventScheduler.next_time()``).

The quiescence contract for system authors:

1. arm a wakeup key for every independent source of periodic or deferred
   work you own, *before* the first step that could skip it;
2. each step, fetch :meth:`due_set` and run only the owners of due keys —
   but preserve your legacy iteration order over them (message sequence
   numbers depend on send order);
3. re-arm after handling a wakeup;
4. when in doubt, fire: an early wakeup hits the timer's own "not due yet"
   path and is a behavioural no-op, whereas a missed one diverges.

``due_set`` pops the queue once per simulated timestamp and caches the
result, so several subsystems consulting it within one step see one
consistent snapshot.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.network.events import PeriodicTimer
from repro.sched.wakeups import WakeupQueue
from repro.analysis.shakeout import tracked_set


class StepEngine:
    """Coordinates wakeup-driven stepping for one experiment session."""

    def __init__(self) -> None:
        self.queue = WakeupQueue()
        self.steps = 0
        #: Work units skipped thanks to quiescence (reported by systems).
        self.skipped = 0
        self._due: Set[Hashable] = tracked_set("sched.due")
        self._due_now: Optional[float] = None

    # ----------------------------------------------------------------- arming
    def arm(self, key: Hashable, at_time: float) -> None:
        """Arm ``key`` to wake at ``at_time`` (replace semantics)."""
        self.queue.arm(key, at_time)

    def arm_timer(self, key: Hashable, timer: PeriodicTimer, now: float) -> None:
        """Arm ``key`` at ``timer``'s next firing as of ``now``.

        Primes an unarmed timer first, so its deadline matches what a
        fire-every-step polling loop would have lazily armed at ``now`` —
        and the wakeup lands on the exact ``_next_fire`` float, not a
        ``now + delta`` reconstruction of it.
        """
        self.queue.arm(key, timer.prime(now))

    def disarm(self, key: Hashable) -> None:
        """Cancel ``key``'s wakeup."""
        self.queue.disarm(key)

    # ------------------------------------------------------------------ steps
    def due_set(self, now: float) -> Set[Hashable]:
        """The keys due at ``now`` — popped once, cached for the whole step."""
        if self._due_now != now:
            self._due = tracked_set("sched.due", self.queue.pop_due(now))
            self._due_now = now
            self.steps += 1
        return self._due

    def note_skipped(self, count: int = 1) -> None:
        """Record ``count`` units of work skipped by quiescence."""
        self.skipped += count

    # ------------------------------------------------------------- inspection
    def describe(self) -> Dict[str, int]:
        """Counters for tests and the perf harness."""
        return {
            "steps": self.steps,
            "armed": len(self.queue),
            "wakeups_armed_total": self.queue.armed_total,
            "wakeups_fired_total": self.queue.fired_total,
            "skipped": self.skipped,
        }
