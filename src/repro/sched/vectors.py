"""Numpy batch kernels for the step engine's per-flow work.

Two hot loops remain on an *active* step even after quiescence skipping:

* the max-min progressive-filling solver (every solve touches all affected
  flows and links);
* idle-flow TFRC evolution (every flow that sent nothing still advances its
  allowed rate once per feedback chunk).

Both are re-implemented here over flat arrays.  Bit-identity with the scalar
references is a hard requirement (the legacy mode must stay byte-identical),
and holds because every operation below is an elementwise IEEE-754 float64
operation in the same order as its scalar counterpart:

* ``min``/``max`` over arrays equal chained two-argument comparisons;
* ``a + b``, ``a - b``, ``a * b``, ``a / b`` round identically in numpy and
  CPython (both are the platform's float64 ops);
* slow-start doubling by ``2**k`` is exact (power-of-two multiply), equal to
  ``k`` sequential doublings including the overflow-to-inf case.

The solver mirrors :func:`repro.network.fairshare.max_min_allocation` round
for round — see the inline comments pairing each block with the scalar code.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.network.fairshare import AllocationRequest, _EPSILON
from repro.transport.tfrc import LOSS_INTERVAL_WEIGHTS

#: ``sum(LOSS_INTERVAL_WEIGHTS[:k])`` for k = 0..8, accumulated in the same
#: left-to-right order as the scalar ``sum()`` so the totals are bit-equal.
_WEIGHT_TOTALS = np.zeros(len(LOSS_INTERVAL_WEIGHTS) + 1, dtype=np.float64)
for _k, _w in enumerate(LOSS_INTERVAL_WEIGHTS):
    _WEIGHT_TOTALS[_k + 1] = _WEIGHT_TOTALS[_k] + _w
del _k, _w


class VectorizedMaxMinSolver:
    """Bit-identical numpy clone of :func:`max_min_allocation`, with memory.

    The flow->link incidence is flattened once and reused while the request
    set (and the capacity map object) stay the same — the common case under
    the incremental allocation engine, where the affected region's membership
    is stable between steps and only the caps move.  One instance per
    simulator; the scalar implementation stays the reference (and the
    legacy-mode default).
    """

    #: Per-flow column caches are dropped wholesale past this size (flows
    #: retire under churn; the map must not grow with the lifetime id space).
    _FLOW_CACHE_MAX = 1 << 18

    def __init__(self) -> None:
        self._keys: object = None
        self._caps_ref: object = None
        self._e_flow: np.ndarray = np.zeros(0, dtype=np.intp)
        self._e_link: np.ndarray = np.zeros(0, dtype=np.intp)
        self._base_remaining: np.ndarray = np.zeros(0, dtype=np.float64)
        self._flow_ptr: np.ndarray = np.zeros(1, dtype=np.intp)
        self._link_rows: np.ndarray = np.zeros(0, dtype=np.intp)
        self._link_ptr: np.ndarray = np.zeros(1, dtype=np.intp)
        self._m = 0
        #: link index -> column, shared by every request set under one
        #: capacity map (columns only ever grow).
        self._link_col: Dict[int, int] = {}
        self._capacities: List[float] = []
        #: flow key -> cached column array for its links (paths are fixed
        #: for a flow's lifetime, so this never invalidates per flow).
        self._flow_cols: Dict[object, np.ndarray] = {}
        self.rebuilds = 0

    def _columns_for(
        self, request: AllocationRequest, link_capacity_kbps: Dict[int, float]
    ) -> np.ndarray:
        cols = self._flow_cols.get(request.flow_key)
        if cols is None:
            link_col = self._link_col
            capacities = self._capacities
            entries: List[int] = []
            for link in request.link_indices:
                if link in link_capacity_kbps:
                    col = link_col.get(link)
                    if col is None:
                        col = len(link_col)
                        link_col[link] = col
                        capacities.append(link_capacity_kbps[link])
                    entries.append(col)
            cols = np.asarray(entries, dtype=np.intp)
            if len(self._flow_cols) >= self._FLOW_CACHE_MAX:
                self._flow_cols.clear()
            self._flow_cols[request.flow_key] = cols
        return cols

    def _build(
        self,
        requests: Sequence[AllocationRequest],
        link_capacity_kbps: Dict[int, float],
    ) -> None:
        """Assemble the flattened incidence from per-flow column caches.

        The request *membership* changes nearly every step under the
        incremental allocation engine, but each flow's own links never do —
        so the per-request work is a dict lookup plus a concatenate, not a
        Python loop over every link of every flow.
        """
        if link_capacity_kbps is not self._caps_ref:
            # New capacity map: column numbering and caps are stale.
            self._link_col = {}
            self._capacities = []
            self._flow_cols = {}
        per_flow = [self._columns_for(request, link_capacity_kbps) for request in requests]
        lengths = np.fromiter(
            (len(cols) for cols in per_flow), dtype=np.intp, count=len(per_flow)
        )
        self._m = len(self._link_col)
        self._e_flow = np.repeat(np.arange(len(per_flow), dtype=np.intp), lengths)
        self._e_link = (
            np.concatenate(per_flow) if per_flow else np.zeros(0, dtype=np.intp)
        )
        self._base_remaining = np.asarray(self._capacities, dtype=np.float64)
        # Per-flow segment pointers into e_link, and the transposed (CSR by
        # link) adjacency — freeze/saturate events touch single rows/columns,
        # so the round loop walks adjacency lists instead of masking the
        # whole incidence every round.
        self._flow_ptr = np.zeros(len(per_flow) + 1, dtype=np.intp)
        np.cumsum(lengths, out=self._flow_ptr[1:])
        order = np.argsort(self._e_link, kind="stable")
        self._link_rows = self._e_flow[order]
        self._link_ptr = np.zeros(self._m + 1, dtype=np.intp)
        np.cumsum(
            np.bincount(self._e_link, minlength=self._m), out=self._link_ptr[1:]
        )
        self.rebuilds += 1

    def __call__(
        self,
        requests: Sequence[AllocationRequest],
        link_capacity_kbps: Dict[int, float],
        max_iterations: int = 10_000,
    ) -> Dict[int, float]:
        allocation: Dict[int, float] = {request.flow_key: 0.0 for request in requests}
        if not requests:
            return allocation
        n = len(requests)
        keys = tuple(request.flow_key for request in requests)
        if keys != self._keys or link_capacity_kbps is not self._caps_ref:
            self._build(requests, link_capacity_kbps)
            self._keys = keys
            self._caps_ref = link_capacity_kbps

        caps = np.fromiter(
            (request.cap_kbps for request in requests), dtype=np.float64, count=n
        )
        alloc = np.zeros(n, dtype=np.float64)
        # Zero-cap flows get 0.0 and never contend — same as the scalar
        # pre-filter; they simply start (and stay) frozen here.
        alive = caps > _EPSILON
        e_link = self._e_link
        flow_ptr = self._flow_ptr
        link_rows = self._link_rows
        link_ptr = self._link_ptr

        # Every active flow's allocation is the same running total ``fill``:
        # all flows start at 0.0 and receive identical increments in
        # identical order, so the scalar per-flow partial sums are bit-equal
        # to fill's.  A flow's allocation materializes the moment it freezes.
        fill = 0.0
        # Flow-side mins come from a sorted-caps pointer: float subtraction
        # is monotone, so min over active flows of fl(cap - fill) equals
        # fl(min_cap - fill), and the at-cap set each round is a prefix of
        # the sorted order.  Both are O(1) amortized instead of full passes.
        order = np.argsort(caps, kind="stable")
        caps_sorted = caps[order]
        thresh_sorted = caps_sorted - _EPSILON
        pointer = 0
        counts = np.zeros(self._m, dtype=np.int64)
        if len(e_link):
            np.add.at(counts, e_link[alive[self._e_flow]], 1)
        contended = counts > 0
        # Retired links drop out via +inf sentinels (divisor pinned to 1),
        # keeping the link-side share min a plain full-array pass.
        remaining = np.where(contended, self._base_remaining, np.inf)
        counts_f = np.where(contended, counts, 1).astype(np.float64)
        shares = np.empty_like(remaining)

        active_count = int(np.count_nonzero(alive))
        iterations = 0
        while active_count > 0 and iterations < max_iterations:
            iterations += 1
            while not alive[order[pointer]]:
                pointer += 1
            # increment = min over active flows of (cap - alloc), then over
            # contended links of remaining / count — the same chained
            # two-argument float mins as the scalar loop.
            increment = float(caps_sorted[pointer]) - fill
            if remaining.size:
                np.divide(remaining, counts_f, out=shares)
                increment = min(increment, float(shares.min()))
            if increment < 0:
                increment = 0.0
            fill = fill + increment
            # Sentinel links see inf - increment*1 == inf; live links see the
            # exact scalar update fl(remaining - fl(increment * count)).  An
            # infinite increment (every cap unbounded, no contended link)
            # turns sentinels into NaN — harmless, as the scalar path also
            # allocates inf then and every flow freezes this same round.
            with np.errstate(invalid="ignore"):
                remaining -= increment * counts_f

            frozen_any = False
            if remaining.size and float(remaining.min()) <= _EPSILON:
                saturated = np.flatnonzero(remaining <= _EPSILON)
                # Retire saturated links before freezing their flows, like
                # the scalar map deletions.
                remaining[saturated] = np.inf
                counts_f[saturated] = 1.0
                for link in saturated:
                    for row in link_rows[link_ptr[link] : link_ptr[link + 1]]:
                        if alive[row]:
                            frozen_any = True
                            self._freeze(row, fill, alive, alloc, counts, counts_f, remaining)
                            active_count -= 1
            while pointer < n:
                row = order[pointer]
                if alive[row]:
                    if thresh_sorted[pointer] > fill:
                        break
                    frozen_any = True
                    self._freeze(row, fill, alive, alloc, counts, counts_f, remaining)
                    active_count -= 1
                pointer += 1
            if not frozen_any and increment <= _EPSILON:
                # No progress possible (degenerate caps); stop, like the
                # scalar no-progress break.
                break

        if active_count:
            alloc[alive] = fill
        for flow_idx, request in enumerate(requests):
            allocation[request.flow_key] = float(alloc[flow_idx])
        return allocation

    def _freeze(
        self,
        row: int,
        fill: float,
        alive: np.ndarray,
        alloc: np.ndarray,
        counts: np.ndarray,
        counts_f: np.ndarray,
        remaining: np.ndarray,
    ) -> None:
        """Freeze one flow at the current fill level and release its links."""
        alive[row] = False
        alloc[row] = fill
        links = self._e_link[self._flow_ptr[row] : self._flow_ptr[row + 1]]
        # subtract.at, not fancy-index -=: a flow listing the same link twice
        # must release both crossings, like the scalar per-occurrence loop.
        np.subtract.at(counts, links, 1)
        new_counts = counts[links]
        emptied = links[new_counts == 0]
        if len(emptied):
            # A link whose last active flow froze leaves contention (the
            # scalar count-0 skip); saturated links are already sentinels,
            # and re-writing them is harmless.
            remaining[emptied] = np.inf
        # Retired links keep a harmless divisor of 1 (their remaining is
        # +inf, so they never win the share min).
        counts_f[links] = np.maximum(new_counts, 1)


def max_min_allocation_vectorized(
    requests: Sequence[AllocationRequest],
    link_capacity_kbps: Dict[int, float],
    max_iterations: int = 10_000,
) -> Dict[int, float]:
    """One-shot form of :class:`VectorizedMaxMinSolver` (fresh cache)."""
    return VectorizedMaxMinSolver()(requests, link_capacity_kbps, max_iterations)


def _loss_event_rate_vec(
    intervals: np.ndarray,
    lengths: np.ndarray,
    current: np.ndarray,
    seen_loss: np.ndarray,
) -> np.ndarray:
    """Vector form of :meth:`LossHistory.loss_event_rate` over flow rows.

    ``intervals`` is ``(n, 8)`` float64 (exact small-int values), ``lengths``
    how many leading columns are real, ``current`` the open interval.  The
    weighted sum accumulates column by column, left to right, matching the
    scalar ``sum(weight * interval for ...)`` term order bit for bit.
    """
    n = len(lengths)
    reported = seen_loss & (lengths > 0)
    # Standard TFRC history discounting: a long-enough open interval joins
    # the average at the front, pushing the oldest closed interval out.
    open_mask = reported & (current > intervals[:, 0])
    with_open = np.concatenate(
        [current[:, None].astype(np.float64), intervals[:, :-1]], axis=1
    )
    effective = np.where(open_mask[:, None], with_open, intervals)
    effective_len = np.where(
        open_mask, np.minimum(lengths + 1, intervals.shape[1]), lengths
    )
    weighted = np.zeros(n, dtype=np.float64)
    for column in range(intervals.shape[1]):
        live = column < effective_len
        if not live.any():
            break
        weighted = np.where(
            live, weighted + LOSS_INTERVAL_WEIGHTS[column] * effective[:, column], weighted
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        mean = weighted / _WEIGHT_TOTALS[effective_len]
        rate = np.where(mean <= 1.0, 0.99, np.minimum(0.99, 1.0 / mean))
    return np.where(reported, rate, 0.0)


def _tcp_throughput_kbps_vec(
    rtt_s: np.ndarray, loss_rate: np.ndarray, packet_size_bytes: np.ndarray
) -> np.ndarray:
    """Vector form of :func:`repro.transport.tcp_model.tcp_throughput_kbps`.

    Same expression, same operation order (numpy float64 arithmetic and
    ``sqrt`` are the platform's IEEE-754 ops, like CPython's); zero loss maps
    to ``inf`` exactly as the scalar early-return does.
    """
    p = loss_rate
    rto = 4.0 * rtt_s
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = rtt_s * np.sqrt(2.0 * p / 3.0) + rto * (
            3.0 * np.sqrt(3.0 * p / 8.0)
        ) * p * (1.0 + 32.0 * p * p)
        rate_bytes = packet_size_bytes / denominator
        kbps = rate_bytes * 8.0 / 1000.0
    return np.where(p == 0.0, np.inf, kbps)


def feedback_rounds(
    rates: np.ndarray,
    in_slow_start: np.ndarray,
    seen_loss: np.ndarray,
    intervals: np.ndarray,
    lengths: np.ndarray,
    current: np.ndarray,
    received: np.ndarray,
    lost: np.ndarray,
    chunks: np.ndarray,
    rtt_s: np.ndarray,
    packet_size_bytes: np.ndarray,
    min_rate_kbps: float,
    slow_start_gain: float = 2.0,
    congestion_avoidance_gain: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run the per-RTT TFRC feedback rounds for a batch of sending flows.

    Bit-identical to :meth:`Flow.deliver`'s chunk loop calling
    ``TfrcFlowState.on_feedback`` on each flow: the step's packets are split
    into ``chunks[i]`` feedback rounds (larger remainders first, like the
    scalar ``// / %`` split), each round records the chunk into the loss
    history, leaves slow start on a loss, and applies the same rate update —
    doubling in slow start, equation-tracking afterwards.  Arrays are
    modified in place and returned, plus a mask of rows whose closed-interval
    history changed (those need scattering back into ``LossHistory``).
    """
    chunk_received, received_rem = np.divmod(received, chunks)
    chunk_lost, lost_rem = np.divmod(lost, chunks)
    history_dirty = np.zeros(len(rates), dtype=bool)
    growth = 1.0 + congestion_avoidance_gain
    max_rounds = int(chunks.max()) if len(chunks) else 0
    for round_index in range(max_rounds):
        active = chunks > round_index
        if not active.any():
            break
        round_received = np.where(active, chunk_received + (round_index < received_rem), 0)
        round_lost = np.where(active, chunk_lost + (round_index < lost_rem), 0)
        # record_packets: the open interval absorbs the chunk's receptions,
        # then a lossy chunk closes it (shift right, newest in column 0).
        current += round_received
        loss_now = active & (round_lost > 0)
        if loss_now.any():
            seen_loss |= loss_now
            history_dirty |= loss_now
            intervals[loss_now, 1:] = intervals[loss_now, :-1]
            intervals[loss_now, 0] = np.maximum(current[loss_now], 1).astype(np.float64)
            lengths = np.where(
                loss_now, np.minimum(lengths + 1, intervals.shape[1]), lengths
            )
            current = np.where(loss_now, 0, current)
            # A loss ends slow start *before* this round's rate update.
            in_slow_start = in_slow_start & ~loss_now
        ss_now = active & in_slow_start
        if ss_now.any():
            with np.errstate(over="ignore"):
                doubled = np.maximum(min_rate_kbps, rates * slow_start_gain)
            rates = np.where(ss_now, doubled, rates)
        ca_now = active & ~in_slow_start
        if ca_now.any():
            p = _loss_event_rate_vec(intervals, lengths, current, seen_loss)
            target = _tcp_throughput_kbps_vec(rtt_s, p, packet_size_bytes)
            with np.errstate(over="ignore", invalid="ignore"):
                stepped = np.where(
                    np.isinf(target),
                    rates * growth,
                    np.where(
                        rates > target,
                        np.maximum(min_rate_kbps, target),
                        np.minimum(target, rates + congestion_avoidance_gain * rates),
                    ),
                )
            stepped = np.maximum(min_rate_kbps, stepped)
            rates = np.where(ca_now, stepped, rates)
    return rates, in_slow_start, seen_loss, lengths, current, history_dirty


def evolve_idle_rates(
    rates: np.ndarray,
    slow_start: np.ndarray,
    chunks: np.ndarray,
    targets: np.ndarray,
    min_rate_kbps: float,
    gain: float,
) -> np.ndarray:
    """Advance idle-flow TFRC rates by ``chunks`` no-loss feedback rounds.

    Bit-identical to calling ``TfrcFlowState.on_feedback(0, 0)`` ``chunks[i]``
    times on each flow, given the idle-flow invariants the step engine
    checks before batching:

    * ``record_packets(0, 0)`` is a no-op, so the loss history — and with it
      the equation-rate ``targets`` — is constant across the rounds;
    * in slow start, ``max(MIN, rate * 2)`` equals ``rate * 2`` because the
      rate is always >= MIN, so k rounds equal one exact ``* 2**k``;
    * after slow start each round applies, on the entering rate ``r``:
      ``r*(1+gain)`` if the target is inf, ``max(MIN, t)`` if ``r > t``,
      else ``min(t, r + gain*r)``; then ``max(MIN, ·)`` — reproduced below
      with elementwise ops in the same order.
    """
    out = np.array(rates, dtype=np.float64, copy=True)
    ss = slow_start
    if ss.any():
        # Overflow-to-inf is the scalar behaviour (IEEE float multiply), not
        # an error; silence numpy's warning about it.
        with np.errstate(over="ignore"):
            out[ss] = out[ss] * np.exp2(chunks[ss].astype(np.float64))
    ca = ~ss
    if ca.any():
        r = out[ca]
        t = targets[ca]
        c = chunks[ca]
        inf_target = np.isinf(t)
        capped_target = np.maximum(min_rate_kbps, t)
        for round_index in range(int(c.max())):
            live = c > round_index
            if not live.any():
                break
            stepped = np.where(
                inf_target,
                r * (1.0 + gain),
                np.where(r > t, capped_target, np.minimum(t, r + gain * r)),
            )
            stepped = np.maximum(min_rate_kbps, stepped)
            r = np.where(live, stepped, r)
        out[ca] = r
    return out
