"""Quiescence-aware event-scheduled step core.

The fixed-step driver historically visited every node and every flow each
``dt`` regardless of whether anything was due.  This package hosts the
wakeup-driven replacement:

* :class:`~repro.sched.wakeups.WakeupQueue` — an earliest-deadline index over
  opaque wakeup keys, built on the same lazy-heap pattern as
  :class:`~repro.network.events.EventScheduler`;
* :class:`~repro.sched.engine.StepEngine` — the per-session coordinator that
  systems register their wakeups with (periodic timers, pending control
  deliveries, dirty flows, injector events) and that answers "which keys are
  due this step?";
* :mod:`~repro.sched.vectors` — numpy batch kernels for the per-flow work
  that remains on an active step (the max-min solver and idle-flow TFRC
  evolution), bit-identical to the scalar reference implementations.

Everything here is gated behind ``ExperimentConfig.step_engine``: with the
flag off the legacy every-node-every-step loop runs unchanged and exports
byte-identical results.
"""

from repro.sched.engine import StepEngine
from repro.sched.wakeups import WakeupQueue
from repro.sched.vectors import max_min_allocation_vectorized

__all__ = ["StepEngine", "WakeupQueue", "max_min_allocation_vectorized"]
