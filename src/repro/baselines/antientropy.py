"""Streaming with anti-entropy recovery (the pbcast-like baseline, Section 4.4).

"We also implemented a pbcast-like approach for retrieving data missing from
a data distribution tree.  The idea here is that nodes are expected to obtain
most of their data from their parent.  Nodes then attempt to retrieve any
missing data items through gossiping with random peers ... we use
anti-entropy with a FIFO Bloom filter to attempt to locate peers that hold
any locally missing data items."

Following the paper's conservative setup: full group membership, reuse of the
Bloom filter and TFRC machinery, 5 recovery peers per round, and a 20-second
anti-entropy epoch so TFRC has time to ramp up.

The anti-entropy digests are control traffic: they travel through the shared
:class:`~repro.network.control.ControlChannel` with real path latency and
loss, so a lost digest simply skips that helper for the round (the next
round redraws peers) and the control-overhead accounting reflects what
actually arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.baselines.streaming import TreeStreaming
from repro.experiments.registry import BuildContext, register_system
from repro.network.control import ControlChannel, ControlMessage
from repro.network.events import PeriodicTimer
from repro.network.flows import Flow
from repro.network.simulator import NetworkSimulator
from repro.reconcile.bloom import FifoBloomFilter
from repro.trees.tree import OverlayTree
from repro.util.rng import SeededRng
from repro.util.units import PACKET_SIZE_KBITS

#: Approximate header bytes of an anti-entropy digest message.
DIGEST_HEADER_BYTES: int = 32


@dataclass
class AntiEntropyDigest(ControlMessage):
    """Requester -> helper: a FIFO Bloom filter over the requester's holdings."""

    digest: FifoBloomFilter = field(default_factory=lambda: FifoBloomFilter.with_capacity(128))

    kind = "ae-digest"

    def size_bytes(self) -> int:
        return DIGEST_HEADER_BYTES + self.digest.size_bytes()


class AntiEntropyStreaming(TreeStreaming):
    """Tree streaming plus periodic anti-entropy recovery from random peers."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        tree: OverlayTree,
        stream_rate_kbps: float = 900.0,
        recovery_peers: int = 5,
        anti_entropy_epoch_s: float = 20.0,
        recovery_window: int = 600,
        packet_kbits: float = PACKET_SIZE_KBITS,
        seed: int = 1,
        control_loss_rate: float = 0.0,
    ) -> None:
        super().__init__(
            simulator,
            tree,
            stream_rate_kbps=stream_rate_kbps,
            transport="tfrc",
            packet_kbits=packet_kbits,
        )
        if recovery_peers < 1:
            raise ValueError("recovery_peers must be at least 1")
        self.recovery_peers = min(recovery_peers, len(tree.members()) - 1)
        self.recovery_window = recovery_window
        self._ae_timer = PeriodicTimer(anti_entropy_epoch_s)
        self._rng = SeededRng(seed, "anti-entropy")
        self.control_channel = ControlChannel(
            simulator.topology,
            stats=simulator.stats,
            seed=seed,
            extra_loss_rate=control_loss_rate,
        )
        #: Per (helper, requester) pair: packets queued for recovery push.
        self._recovery_pending: Dict[Tuple[int, int], List[int]] = {}
        self.recovery_flows: Dict[Tuple[int, int], Flow] = {}

    # ----------------------------------------------------------- step engine
    def attach_step_engine(self, engine) -> None:
        """Arm the anti-entropy round timer as a session wakeup.

        With an engine attached the round timer is only polled when due, and
        the channel pump is skipped on steps where no digests were sent and
        nothing in flight arrives within the pump horizon.
        """
        super().attach_step_engine(engine)
        engine.arm_timer(("antientropy", "round"), self._ae_timer, self.simulator.time)

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        self._deliver_recovery_phase()
        super().protocol_phase(now)
        engine = self._step_engine
        fired = False
        if engine is None or ("antientropy", "round") in engine.due_set(now):
            if self._ae_timer.fire(now):
                self._anti_entropy_round(now)
                fired = True
            if engine is not None:
                engine.arm_timer(("antientropy", "round"), self._ae_timer, now)
        horizon = now + self.simulator.dt
        skip_pump = False
        if engine is not None and not fired:
            # No digests left this step and nothing in flight is due by the
            # horizon: the pump would deliver nothing (handlers never send).
            due = self.control_channel.next_due()
            skip_pump = due is None or due > horizon + 1e-12
            if skip_pump:
                engine.note_skipped(1)
        if not skip_pump:
            self.control_channel.pump(horizon, self._handle_control)
        self._drain_recovery_queues()
        self._update_recovery_demands()

    # ---------------------------------------------------------------- phases
    def _deliver_recovery_phase(self) -> None:
        for (helper, requester), flow in self.recovery_flows.items():
            delivered = flow.take_delivered()
            if requester in self.failed:
                continue
            received = self._received[requester]
            for sequence in delivered:
                duplicate = sequence in received
                if not duplicate:
                    received.add(sequence)
                    self._fresh[requester].append(sequence)
                self.stats.record_receive(
                    requester, sequence, duplicate=duplicate, from_parent=False
                )

    def _anti_entropy_round(self, now: float) -> None:
        """Each node gossips a digest of its holdings to random peers."""
        members = [node for node in self.tree.members() if node not in self.failed]
        for requester in members:
            peers = self._rng.sample(
                [node for node in members if node != requester], self.recovery_peers
            )
            digest = self._build_digest(requester)
            for helper in peers:
                self.control_channel.send(
                    AntiEntropyDigest(src=requester, dst=helper, digest=digest), now
                )

    def _handle_control(self, message: ControlMessage) -> None:
        """A helper receives a digest and queues the requester's missing data."""
        if not isinstance(message, AntiEntropyDigest):
            return
        helper, requester = message.dst, message.src
        if helper in self.failed or requester in self.failed:
            return
        missing = self._missing_at(helper, message.digest)
        if not missing:
            return
        key = (helper, requester)
        if key not in self.recovery_flows:
            self.recovery_flows[key] = self.simulator.create_flow(
                helper, requester, label=f"ae:{helper}->{requester}", demand_kbps=0.0
            )
            self._recovery_pending[key] = []
        # Last-in, first-out response, as in pbcast.
        self._recovery_pending[key].extend(sorted(missing, reverse=True))

    def _build_digest(self, requester: int) -> FifoBloomFilter:
        """The requester's FIFO Bloom filter over its recent holdings."""
        holdings = sorted(self._received[requester])[-self.recovery_window :]
        digest = FifoBloomFilter.with_capacity(
            max(self.recovery_window, 128), false_positive_rate=0.01,
            window=max(self.recovery_window, 128),
        )
        digest.update(holdings)
        return digest

    def _missing_at(self, helper: int, digest: FifoBloomFilter) -> List[int]:
        """Packets the helper holds that the digest does not describe."""
        recent = sorted(self._received[helper])[-self.recovery_window :]
        return [sequence for sequence in recent if sequence not in digest]

    def _drain_recovery_queues(self) -> None:
        for (helper, requester), flow in self.recovery_flows.items():
            pending = self._recovery_pending.get((helper, requester), [])
            if not pending or helper in self.failed:
                continue
            budget = flow.send_budget()
            batch, self._recovery_pending[(helper, requester)] = (
                pending[:budget],
                pending[budget:],
            )
            for sequence in batch:
                flow.try_send(sequence)

    def _update_recovery_demands(self) -> None:
        dt = self.simulator.dt
        for key, flow in self.recovery_flows.items():
            pending = len(self._recovery_pending.get(key, []))
            flow.set_demand((pending + 2) * self.packet_kbits / dt if pending else 0.0)

    # ---------------------------------------------------------------- failure
    def fail_node(self, node: int) -> None:
        """Fail a participant; its control messages are dropped from now on."""
        super().fail_node(node)
        self.control_channel.mark_down(node)
        for key, flow in list(self.recovery_flows.items()):
            if node in key:
                self.simulator.remove_flow(flow)
                del self.recovery_flows[key]
                self._recovery_pending.pop(key, None)


@register_system(
    "antientropy",
    description="tree streaming with anti-entropy recovery (Section 4.4)",
    supports_fail_node=True,
    supports_join=True,
)
def _build_antientropy(ctx: BuildContext) -> AntiEntropyStreaming:
    return AntiEntropyStreaming(
        ctx.simulator,
        ctx.tree,
        stream_rate_kbps=ctx.config.stream_rate_kbps,
        seed=ctx.config.seed,
        control_loss_rate=getattr(ctx.config, "control_loss_rate", 0.0),
    )
