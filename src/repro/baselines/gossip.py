"""Push gossiping (the lpbcast-like baseline of Section 4.4).

"We implemented a form of gossiping, where a node forwards non-duplicate
packets to a randomly chosen number of nodes in its local view.  This
technique does not use a tree for dissemination ... we forward them as soon
as they arrive."

To keep the comparison conservative (as the paper does) every node is given
full group membership.  The source pushes new packets to randomly chosen
nodes at the target stream rate; every other node forwards each *new* packet
it receives to ``fanout`` random peers.  All transfers ride TFRC flows; the
flow targets are re-drawn periodically so the push pattern keeps changing
without creating a new flow per packet.

The lpbcast-style view exchange is control traffic on the shared
:class:`~repro.network.control.ControlChannel`: when a node (re)selects a
gossip target it announces the session with a small
:class:`GossipViewNotice`, and only starts pushing once the notice has been
delivered.  A lost notice leaves the pair inactive until the next view
refresh re-announces it — which is exactly how a lossy control plane
degrades a membership protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.experiments.registry import BuildContext, register_system
from repro.network.control import ControlChannel, ControlMessage
from repro.network.events import PeriodicTimer
from repro.network.flows import Flow
from repro.network.simulator import NetworkSimulator
from repro.util.rng import SeededRng
from repro.util.units import PACKET_SIZE_KBITS


@dataclass
class GossipViewNotice(ControlMessage):
    """Node -> new gossip target: announce the push session (view exchange)."""

    view_size: int = 0

    kind = "gossip-view"

    def payload_bytes(self) -> int:
        # The sender's local view rides along (4 bytes per member id).
        return 4 * self.view_size


class PushGossip:
    """Tree-less epidemic dissemination with full membership knowledge."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        source: int,
        members: Sequence[int],
        stream_rate_kbps: float = 900.0,
        fanout: int = 5,
        view_refresh_s: float = 10.0,
        packet_kbits: float = PACKET_SIZE_KBITS,
        seed: int = 1,
        control_loss_rate: float = 0.0,
    ) -> None:
        if source not in members:
            raise ValueError("source must be a member")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.simulator = simulator
        self.source = source
        self.members = list(dict.fromkeys(members))
        self.stream_rate_kbps = stream_rate_kbps
        self._requested_fanout = fanout
        self.fanout = min(fanout, len(self.members) - 1)
        self.packet_kbits = packet_kbits
        self.stats = simulator.stats
        self._rng = SeededRng(seed, "push-gossip")
        self._view_timer = PeriodicTimer(view_refresh_s)
        self.control_channel = ControlChannel(
            simulator.topology,
            stats=simulator.stats,
            seed=seed,
            extra_loss_rate=control_loss_rate,
        )

        self._next_sequence = 0
        self._source_carry = 0.0
        self._received: Dict[int, set] = {node: set() for node in self.members}
        self._fresh: Dict[int, List[int]] = {node: [] for node in self.members}
        #: Per-node pending queues keyed by current gossip target.
        self._pending: Dict[Tuple[int, int], List[int]] = {}
        #: Pairs whose view notice has been delivered (push may begin).
        self._active_pairs: Set[Tuple[int, int]] = set()
        #: View notices awaiting transmission.
        self._outbox: List[ControlMessage] = []
        #: Optional quiescence-aware step engine (see attach_step_engine).
        self._step_engine = None

        self.flows: Dict[Tuple[int, int], Flow] = {}
        self._targets: Dict[int, List[int]] = {}
        for node in self.members:
            self._reselect_targets(node)

    # -------------------------------------------------------------- topology
    def _reselect_targets(self, node: int) -> None:
        """Re-draw the node's gossip targets and (re)build flows to them."""
        others = [member for member in self.members if member != node]
        new_targets = self._rng.sample(others, self.fanout)
        old_targets = self._targets.get(node, [])
        for target in old_targets:
            if target not in new_targets:
                flow = self.flows.pop((node, target), None)
                if flow is not None:
                    self.simulator.remove_flow(flow)
                self._pending.pop((node, target), None)
                self._active_pairs.discard((node, target))
        for target in new_targets:
            if (node, target) not in self.flows:
                self.flows[(node, target)] = self.simulator.create_flow(
                    node, target, label=f"gossip:{node}->{target}", demand_kbps=0.0
                )
                self._pending[(node, target)] = []
            if (node, target) not in self._active_pairs:
                # Announce (or re-announce, if an earlier notice was lost).
                self._outbox.append(
                    GossipViewNotice(src=node, dst=target, view_size=self.fanout)
                )
        self._targets[node] = new_targets

    def _handle_control(self, message: ControlMessage) -> None:
        if isinstance(message, GossipViewNotice):
            if message.dst in self._targets.get(message.src, []):
                self._active_pairs.add((message.src, message.dst))

    # ----------------------------------------------------------- step engine
    def attach_step_engine(self, engine) -> None:
        """Register this system's wakeup sources with a session step engine.

        Gossip owns one periodic wakeup — the view-refresh timer — plus the
        control channel's pending deliveries.  With an engine attached,
        :meth:`protocol_phase` only polls the view timer when its wakeup is
        due and skips the channel pump on steps where nothing was sent and
        nothing in flight arrives within the pump horizon.
        """
        self._step_engine = engine
        engine.arm_timer(("gossip", "view"), self._view_timer, self.simulator.time)

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One gossip pass; call between simulator begin/end step."""
        engine = self._step_engine
        if engine is None or ("gossip", "view") in engine.due_set(now):
            if self._view_timer.fire(now):
                for node in self.members:
                    self._reselect_targets(node)
            if engine is not None:
                engine.arm_timer(("gossip", "view"), self._view_timer, now)
        sent = len(self._outbox)
        for message in self._outbox:
            self.control_channel.send(message, now)
        self._outbox = []
        horizon = now + self.simulator.dt
        skip_pump = False
        if engine is not None and sent == 0:
            # No new sends and nothing in flight due by the horizon: the pump
            # would deliver nothing (handlers never send), so skip it.
            due = self.control_channel.next_due()
            skip_pump = due is None or due > horizon + 1e-12
            if skip_pump:
                engine.note_skipped(1)
        if not skip_pump:
            self.control_channel.pump(horizon, self._handle_control)
        self._deliver_phase()
        self._source_phase()
        self._forward_phase()
        self._update_demands()

    def run(self, duration_s: float, sample_interval_s: float = 5.0) -> None:
        """Drive the simulator for ``duration_s`` simulated seconds."""
        from repro.experiments.session import ExperimentSession

        ExperimentSession(
            simulator=self.simulator, system=self, sample_interval_s=sample_interval_s
        ).drive(duration_s)

    def receivers(self) -> List[int]:
        """Every member except the source."""
        return [node for node in self.members if node != self.source]

    # ------------------------------------------------------------- membership
    def add_node(self, node: int) -> int:
        """Join one member mid-run; returns the node itself (no tree parent).

        The joiner immediately selects its own gossip targets (announcing
        them over the control channel); existing members fold it into their
        views at their next periodic view refresh, exactly how lpbcast-style
        membership absorbs newcomers.
        """
        if node in self._received:
            raise ValueError(f"node {node} is already a gossip member")
        self.members.append(node)
        # A membership that was too small to honour the requested fanout may
        # now be large enough.
        self.fanout = min(self._requested_fanout, len(self.members) - 1)
        self._received[node] = set()
        self._fresh[node] = []
        self._reselect_targets(node)
        return node

    # ---------------------------------------------------------------- phases
    def _deliver_phase(self) -> None:
        for (sender, receiver), flow in self.flows.items():
            delivered = flow.take_delivered()
            received = self._received[receiver]
            for sequence in delivered:
                duplicate = sequence in received
                if not duplicate:
                    received.add(sequence)
                    self._fresh[receiver].append(sequence)
                self.stats.record_receive(
                    receiver, sequence, duplicate=duplicate, from_parent=False
                )

    def _source_phase(self) -> None:
        packets = (
            self.stream_rate_kbps * self.simulator.dt / self.packet_kbits + self._source_carry
        )
        count = int(packets)
        self._source_carry = packets - count
        for _ in range(count):
            sequence = self._next_sequence
            self._next_sequence += 1
            self._received[self.source].add(sequence)
            self._fresh[self.source].append(sequence)

    def _forward_phase(self) -> None:
        for node in self.members:
            fresh = self._fresh[node]
            if not fresh:
                continue
            self._fresh[node] = []
            active_targets = [
                target
                for target in self._targets.get(node, [])
                if (node, target) in self._active_pairs
            ]
            for target in active_targets:
                pending = self._pending.setdefault((node, target), [])
                pending.extend(fresh)
            for target in active_targets:
                flow = self.flows.get((node, target))
                pending = self._pending.get((node, target), [])
                if flow is None or not pending:
                    continue
                budget = flow.send_budget()
                batch, self._pending[(node, target)] = pending[:budget], pending[budget:]
                for sequence in batch:
                    flow.try_send(sequence)
                # Gossip does not retransmit: anything still pending beyond a
                # step is stale and dropped (push model).
                if len(self._pending[(node, target)]) > 512:
                    self._pending[(node, target)] = self._pending[(node, target)][-512:]

    def _update_demands(self) -> None:
        dt = self.simulator.dt
        for (node, target), flow in self.flows.items():
            pending = len(self._pending.get((node, target), []))
            flow.set_demand((pending + 2) * self.packet_kbits / dt if pending else 0.0)


@register_system(
    "gossip",
    uses_tree=False,
    description="push gossiping with full membership (Section 4.4)",
    # Gossip mends around departures implicitly but exposes no fail_node;
    # churn scenarios skip it via this declaration (no more hardcoded list).
    supports_fail_node=False,
    supports_join=True,
)
def _build_gossip(ctx: BuildContext) -> PushGossip:
    return PushGossip(
        ctx.simulator,
        source=ctx.source,
        members=ctx.participants,
        stream_rate_kbps=ctx.config.stream_rate_kbps,
        seed=ctx.config.seed,
        control_loss_rate=getattr(ctx.config, "control_loss_rate", 0.0),
    )
