"""Plain overlay-tree streaming (the Section 4.2 baseline).

"We have implemented a simple streaming application that is capable of
streaming data over any specified tree ... using UDP, TFRC, or TCP."

Every node forwards every packet it receives to each of its children, subject
to what the per-edge transport accepts; data a child's transport cannot
accept is simply lost (for the unreliable transports) or queued (for the
TCP-like mode).  Bandwidth is therefore monotonically non-increasing down the
tree — the property Bullet's mesh is designed to escape.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.registry import BuildContext, register_system
from repro.network.flows import Flow
from repro.network.simulator import NetworkSimulator
from repro.transport.socket import ReliableQueue
from repro.trees.tree import OverlayTree
from repro.util.units import PACKET_SIZE_KBITS
from repro.analysis.shakeout import tracked_set

#: Supported transport modes for the streaming baseline.
TRANSPORTS = ("tfrc", "udp", "tcp")


class TreeStreaming:
    """Streams a packet sequence from the root over an arbitrary overlay tree."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        tree: OverlayTree,
        stream_rate_kbps: float = 600.0,
        transport: str = "tfrc",
        packet_kbits: float = PACKET_SIZE_KBITS,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if stream_rate_kbps <= 0:
            raise ValueError("stream_rate_kbps must be positive")
        self.simulator = simulator
        self.tree = tree
        self.stream_rate_kbps = stream_rate_kbps
        self.transport = transport
        self.packet_kbits = packet_kbits
        self.stats = simulator.stats
        self.failed: set[int] = tracked_set("streaming.failed")

        self._next_sequence = 0
        self._source_carry = 0.0
        #: Optional quiescence-aware step engine (see attach_step_engine).
        self._step_engine = None
        #: Sequences each node has received (duplicate detection).
        self._received: Dict[int, set] = {node: set() for node in tree.members()}
        #: Packets awaiting forwarding, per node (filled on delivery).
        self._fresh: Dict[int, List[int]] = {node: [] for node in tree.members()}
        #: TCP-mode per-edge retransmission queues.
        self._queues: Dict[Tuple[int, int], ReliableQueue] = {}

        self.flows: Dict[Tuple[int, int], Flow] = {}
        use_tfrc = transport != "udp"
        for parent, child in tree.edges():
            flow = simulator.create_flow(
                parent,
                child,
                label=f"stream:{parent}->{child}",
                demand_kbps=stream_rate_kbps,
                use_tfrc=use_tfrc,
            )
            self.flows[(parent, child)] = flow
            if transport == "tcp":
                self._queues[(parent, child)] = ReliableQueue(max_queue=4096)

    # ----------------------------------------------------------- step engine
    def attach_step_engine(self, engine) -> None:
        """Register wakeup sources with a session step engine.

        Plain streaming is purely data-driven: every step forwards whatever
        the flows delivered, so there are no periodic timers to declare.
        Holding the engine lets subclasses (anti-entropy) arm their own
        wakeups on top of this loop.
        """
        self._step_engine = engine

    # ------------------------------------------------------------------ steps
    def protocol_phase(self, now: float) -> None:
        """One forwarding pass; call between simulator begin/end step."""
        self._deliver_phase()
        self._source_phase()
        self._forward_phase()

    def run(self, duration_s: float, sample_interval_s: float = 5.0) -> None:
        """Drive the simulator for ``duration_s`` simulated seconds."""
        from repro.experiments.session import ExperimentSession

        ExperimentSession(
            simulator=self.simulator, system=self, sample_interval_s=sample_interval_s
        ).drive(duration_s)

    def receivers(self) -> List[int]:
        """Every participant except the source and failed nodes."""
        return [
            node
            for node in self.tree.members()
            if node != self.tree.root and node not in self.failed
        ]

    # ---------------------------------------------------------------- phases
    def _deliver_phase(self) -> None:
        for (parent, child), flow in self.flows.items():
            delivered = flow.take_delivered()
            if child in self.failed:
                continue
            received = self._received[child]
            for sequence in delivered:
                duplicate = sequence in received
                if not duplicate:
                    received.add(sequence)
                    self._fresh[child].append(sequence)
                self.stats.record_receive(child, sequence, duplicate=duplicate, from_parent=True)

    def _source_phase(self) -> None:
        if self.tree.root in self.failed:
            return
        packets = (
            self.stream_rate_kbps * self.simulator.dt / self.packet_kbits + self._source_carry
        )
        count = int(packets)
        self._source_carry = packets - count
        root = self.tree.root
        for _ in range(count):
            sequence = self._next_sequence
            self._next_sequence += 1
            self._received[root].add(sequence)
            self._fresh[root].append(sequence)

    def _forward_phase(self) -> None:
        for node in self.tree.members():
            if node in self.failed:
                continue
            fresh = self._fresh[node]
            if not fresh:
                continue
            self._fresh[node] = []
            for child in self.tree.children(node):
                if child in self.failed:
                    continue
                flow = self.flows.get((node, child))
                if flow is None:
                    continue
                if self.transport == "tcp":
                    queue = self._queues[(node, child)]
                    for sequence in fresh:
                        queue.offer(sequence)
                    for sequence in queue.take(flow.send_budget()):
                        flow.try_send(sequence)
                else:
                    for sequence in fresh:
                        if not flow.try_send(sequence):
                            # Unreliable transport: the packet is lost for this
                            # subtree (no retransmission).
                            pass

    # ------------------------------------------------------------- membership
    def add_node(self, node: int, parent: int | None = None) -> int:
        """Join one participant mid-run; returns the parent it attached to.

        The joiner (a client host of the topology) becomes a tree leaf and
        starts receiving whatever its parent forwards from now on — plain
        streaming has no recovery, so data from before the join is simply
        never seen (the baseline the mesh systems are measured against).
        """
        if node in self._received:
            raise ValueError(f"node {node} is already an overlay member")
        if parent is None:
            parent = self._choose_join_parent()
        if parent not in self._received or parent in self.failed:
            raise ValueError(f"join parent {parent} is not a live overlay member")
        self.tree.add_leaf(node, parent)
        self._received[node] = set()
        self._fresh[node] = []
        flow = self.simulator.create_flow(
            parent,
            node,
            label=f"stream:{parent}->{node}",
            demand_kbps=self.stream_rate_kbps,
            use_tfrc=self.transport != "udp",
        )
        self.flows[(parent, node)] = flow
        if self.transport == "tcp":
            self._queues[(parent, node)] = ReliableQueue(max_queue=4096)
        return parent

    def _choose_join_parent(self) -> int:
        return self.tree.best_join_parent(exclude=self.failed)

    # ---------------------------------------------------------------- failure
    def fail_node(self, node: int) -> None:
        """Fail a participant; its subtree stops receiving (no tree repair)."""
        if node == self.tree.root:
            raise ValueError("failing the source is not part of the evaluation")
        self.failed.add(node)
        for key, flow in list(self.flows.items()):
            if node in key:
                self.simulator.remove_flow(flow)
                del self.flows[key]


@register_system(
    "stream",
    description="plain streaming over the overlay tree (Section 4.2)",
    supports_fail_node=True,
    supports_join=True,
)
def _build_stream(ctx: BuildContext) -> TreeStreaming:
    return TreeStreaming(
        ctx.simulator,
        ctx.tree,
        stream_rate_kbps=ctx.config.stream_rate_kbps,
        transport=getattr(ctx.config, "transport", "tfrc"),
    )
