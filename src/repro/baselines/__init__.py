"""Comparison systems: plain tree streaming, push gossiping and streaming
with anti-entropy recovery."""

from repro.baselines.antientropy import AntiEntropyStreaming
from repro.baselines.gossip import PushGossip
from repro.baselines.streaming import TreeStreaming

__all__ = [
    "AntiEntropyStreaming",
    "PushGossip",
    "TreeStreaming",
]
