"""The "null" encoding used by the paper's evaluation.

"We do not implement any particular coding scheme for our experiments.
Rather, we assume that each sequence number directly specifies a particular
data block."  The null codec therefore maps block *i* to packet *i* and can
reconstruct the stream only when every block has been received.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.encoding.base import Codec, EncodedPacket


class NullCodec(Codec):
    """Identity encoding: packet ``i`` carries source block ``i``."""

    def encode(self, blocks: Sequence[bytes]) -> List[EncodedPacket]:
        return [
            EncodedPacket(index=i, payload=bytes(block), source_indices=(i,))
            for i, block in enumerate(blocks)
        ]

    def decode(self, packets: Sequence[EncodedPacket], num_blocks: int) -> Optional[List[bytes]]:
        by_index = {}
        for packet in packets:
            if len(packet.source_indices) != 1:
                raise ValueError("null codec packets carry exactly one source block")
            by_index[packet.source_indices[0]] = packet.payload
        if any(i not in by_index for i in range(num_blocks)):
            return None
        return [by_index[i] for i in range(num_blocks)]

    def minimum_packets(self, num_blocks: int) -> int:
        return num_blocks
