"""Common interface for the data encoding schemes of Section 2.1.

Bullet is agnostic to the encoding of the stream: the evaluation uses the
"null" encoding (sequence numbers map directly to data blocks), but the paper
describes Tornado-style erasure codes, LT codes and MDC as options for file
distribution and heterogeneous multimedia delivery.  Every codec here encodes
a list of equal-sized source blocks into a (possibly larger) list of encoded
packets and can reconstruct the source once enough packets have arrived.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class EncodedPacket:
    """One encoded packet: an index plus its payload.

    ``source_indices`` records which source blocks were combined to produce
    the payload (for XOR-based codes); the null encoding has exactly one.
    """

    index: int
    payload: bytes
    source_indices: tuple


class Codec(abc.ABC):
    """Abstract encoder/decoder over equal-sized source blocks."""

    @abc.abstractmethod
    def encode(self, blocks: Sequence[bytes]) -> List[EncodedPacket]:
        """Encode the source blocks into transmittable packets."""

    @abc.abstractmethod
    def decode(self, packets: Sequence[EncodedPacket], num_blocks: int) -> Optional[List[bytes]]:
        """Reconstruct the source blocks, or ``None`` if not yet decodable."""

    @abc.abstractmethod
    def minimum_packets(self, num_blocks: int) -> int:
        """Smallest number of packets that can possibly allow decoding."""


def split_into_blocks(data: bytes, block_size: int) -> List[bytes]:
    """Split a byte string into fixed-size blocks, zero-padding the last one."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    blocks: List[bytes] = []
    for offset in range(0, len(data), block_size):
        chunk = data[offset : offset + block_size]
        if len(chunk) < block_size:
            chunk = chunk + bytes(block_size - len(chunk))
        blocks.append(chunk)
    if not blocks:
        blocks.append(bytes(block_size))
    return blocks


def join_blocks(blocks: Sequence[bytes], original_length: int) -> bytes:
    """Concatenate decoded blocks and strip the padding."""
    return b"".join(blocks)[:original_length]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("blocks must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))
