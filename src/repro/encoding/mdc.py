"""Multiple Description Coding (MDC) — layered media encoding (Section 2.1).

"If multimedia data is being distributed to a set of heterogeneous receivers
with variable bandwidth, MDC allows receivers obtaining different subsets of
the data to still maintain a usable multimedia stream."

A full MDC codec is a signal-processing artifact; what Bullet needs from it
is the *interface contract*: the stream is split into ``d`` descriptions,
any non-empty subset of descriptions decodes to a usable (lower-fidelity)
version of the original, and fidelity grows with the number of descriptions
received.  The implementation below realises that contract by interleaving
source blocks round-robin across descriptions: with ``r`` of ``d``
descriptions a receiver reconstructs ``r/d`` of the blocks evenly spread
through the stream (the missing ones are interpolated as gaps), which is how
MDC quality scaling is typically modelled in systems evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.encoding.base import EncodedPacket


@dataclass(frozen=True)
class Description:
    """One MDC description: an id plus the packets that belong to it."""

    description_id: int
    packets: tuple


class MdcCodec:
    """Round-robin interleaving MDC model."""

    def __init__(self, num_descriptions: int = 4) -> None:
        if num_descriptions <= 0:
            raise ValueError("need at least one description")
        self.num_descriptions = num_descriptions

    def encode(self, blocks: Sequence[bytes]) -> List[Description]:
        """Split blocks into descriptions by round-robin interleaving."""
        buckets: List[List[EncodedPacket]] = [[] for _ in range(self.num_descriptions)]
        for index, block in enumerate(blocks):
            description = index % self.num_descriptions
            buckets[description].append(
                EncodedPacket(index=index, payload=bytes(block), source_indices=(index,))
            )
        return [
            Description(description_id=i, packets=tuple(bucket))
            for i, bucket in enumerate(buckets)
        ]

    def decode(
        self, descriptions: Sequence[Description], num_blocks: int
    ) -> tuple[List[Optional[bytes]], float]:
        """Reconstruct what the received descriptions allow.

        Returns ``(blocks, fidelity)`` where missing blocks are ``None`` and
        fidelity is the fraction of source blocks recovered.
        """
        recovered: Dict[int, bytes] = {}
        for description in descriptions:
            for packet in description.packets:
                recovered[packet.source_indices[0]] = packet.payload
        blocks: List[Optional[bytes]] = [recovered.get(i) for i in range(num_blocks)]
        fidelity = len(recovered) / num_blocks if num_blocks else 1.0
        return blocks, fidelity

    def usable(self, descriptions: Sequence[Description]) -> bool:
        """Any non-empty subset of descriptions yields a usable stream."""
        return any(description.packets for description in descriptions)
