"""Tornado-style erasure codes (Section 2.1, digital fountain approach).

"Redundant Tornado codes are created by performing XOR operations on a
selected number of original data packets, and then transmitted along with the
original data packets.  Tornado codes require any (1+eps)k correctly received
packets to reconstruct the original k data packets ... they require a
predetermined stretch factor n/k."

This implementation keeps the essential structure: the encoder emits the k
systematic source packets plus (n - k) redundant packets, each the XOR of a
small random subset of source packets; the decoder runs iterative (peeling)
belief propagation, recovering a source block whenever a redundant packet has
exactly one unknown neighbour.  The reception overhead behaviour (a few
percent beyond k) is preserved, which is what matters for the file
distribution scenarios the paper motivates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.encoding.base import Codec, EncodedPacket, xor_bytes
from repro.util.rng import SeededRng


class TornadoCodec(Codec):
    """XOR-based erasure code with a fixed stretch factor."""

    def __init__(self, stretch_factor: float = 1.5, degree: int = 3, seed: int = 0) -> None:
        if stretch_factor < 1.0:
            raise ValueError("stretch factor must be >= 1.0")
        if degree < 2:
            raise ValueError("redundant packet degree must be >= 2")
        self.stretch_factor = stretch_factor
        self.degree = degree
        self.seed = seed

    # ---------------------------------------------------------------- encode
    def encode(self, blocks: Sequence[bytes]) -> List[EncodedPacket]:
        k = len(blocks)
        if k == 0:
            return []
        n = max(k, int(round(k * self.stretch_factor)))
        rng = SeededRng(self.seed, f"tornado-{k}")
        packets: List[EncodedPacket] = [
            EncodedPacket(index=i, payload=bytes(block), source_indices=(i,))
            for i, block in enumerate(blocks)
        ]
        for redundant_index in range(k, n):
            degree = min(self.degree, k)
            members = tuple(sorted(rng.sample(range(k), degree)))
            payload = blocks[members[0]]
            for member in members[1:]:
                payload = xor_bytes(payload, blocks[member])
            packets.append(
                EncodedPacket(index=redundant_index, payload=payload, source_indices=members)
            )
        return packets

    # ---------------------------------------------------------------- decode
    def decode(self, packets: Sequence[EncodedPacket], num_blocks: int) -> Optional[List[bytes]]:
        known: Dict[int, bytes] = {}
        pending: List[tuple[List[int], bytes]] = []
        for packet in packets:
            indices = sorted(set(packet.source_indices))
            if len(indices) == 1:
                known[indices[0]] = packet.payload
            else:
                pending.append((indices, packet.payload))

        # Iterative peeling: reduce redundant packets by already-known blocks;
        # any packet left with exactly one unknown neighbour reveals it.
        progress = True
        while progress and len(known) < num_blocks:
            progress = False
            next_pending: List[tuple[List[int], bytes]] = []
            for indices, payload in pending:
                unknown = [i for i in indices if i not in known]
                if not unknown:
                    continue
                if len(unknown) == 1:
                    reduced = payload
                    for i in indices:
                        if i in known and i != unknown[0]:
                            reduced = xor_bytes(reduced, known[i])
                    known[unknown[0]] = reduced
                    progress = True
                else:
                    next_pending.append((indices, payload))
            pending = next_pending

        if len(known) < num_blocks:
            return None
        return [known[i] for i in range(num_blocks)]

    def minimum_packets(self, num_blocks: int) -> int:
        return num_blocks

    def reception_overhead(self, received: int, num_blocks: int) -> float:
        """The overhead epsilon = received/k - 1 for a successful decode."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        return received / num_blocks - 1.0
