"""LT codes (Luby Transform) — the rateless fountain code of Section 2.1.

"LT codes remove these two limitations [predetermined stretch factor and
encoding time proportional to n], while maintaining a low reception overhead
of 0.05."  An LT encoder can generate an unbounded stream of encoded packets;
each packet XORs a random subset of source blocks whose size is drawn from
the robust soliton distribution.  The decoder is the same peeling process
used for Tornado codes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

from repro.encoding.base import Codec, EncodedPacket, xor_bytes
from repro.util.rng import SeededRng


def robust_soliton_distribution(k: int, c: float = 0.1, delta: float = 0.5) -> List[float]:
    """The robust soliton degree distribution over degrees 1..k.

    Returns a list of probabilities ``p[d-1]`` for degree ``d``.  ``c`` and
    ``delta`` are the usual tuning constants controlling the spike that keeps
    the decoding ripple alive.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if k == 1:
        return [1.0]
    # Ideal soliton rho.
    rho = [0.0] * (k + 1)
    rho[1] = 1.0 / k
    for d in range(2, k + 1):
        rho[d] = 1.0 / (d * (d - 1))
    # Robust addition tau.
    big_r = c * math.log(k / delta) * math.sqrt(k)
    big_r = max(big_r, 1.0)
    threshold = int(round(k / big_r))
    threshold = min(max(threshold, 1), k)
    tau = [0.0] * (k + 1)
    for d in range(1, threshold):
        tau[d] = big_r / (d * k)
    tau[threshold] = big_r * math.log(big_r / delta) / k
    total = sum(rho[1:]) + sum(tau[1:])
    return [(rho[d] + tau[d]) / total for d in range(1, k + 1)]


class LtCodec(Codec):
    """A rateless LT code over equal-sized blocks."""

    def __init__(self, overhead: float = 0.25, c: float = 0.1, delta: float = 0.5, seed: int = 0) -> None:
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.overhead = overhead
        self.c = c
        self.delta = delta
        self.seed = seed

    # ---------------------------------------------------------------- encode
    def packet_stream(self, blocks: Sequence[bytes], seed: int | None = None) -> Iterator[EncodedPacket]:
        """An unbounded stream of encoded packets (the rateless property)."""
        k = len(blocks)
        if k == 0:
            return
        rng = SeededRng(self.seed if seed is None else seed, f"lt-{k}")
        distribution = robust_soliton_distribution(k, self.c, self.delta)
        degrees = list(range(1, k + 1))
        index = 0
        while True:
            degree = rng.weighted_choice(degrees, distribution)
            members = tuple(sorted(rng.sample(range(k), degree)))
            payload = blocks[members[0]]
            for member in members[1:]:
                payload = xor_bytes(payload, blocks[member])
            yield EncodedPacket(index=index, payload=payload, source_indices=members)
            index += 1

    def encode(self, blocks: Sequence[bytes]) -> List[EncodedPacket]:
        """Emit ``ceil(k * (1 + overhead))`` packets from the rateless stream."""
        k = len(blocks)
        if k == 0:
            return []
        count = max(k, int(math.ceil(k * (1.0 + self.overhead))))
        stream = self.packet_stream(blocks)
        return [next(stream) for _ in range(count)]

    # ---------------------------------------------------------------- decode
    def decode(self, packets: Sequence[EncodedPacket], num_blocks: int) -> Optional[List[bytes]]:
        known: Dict[int, bytes] = {}
        pending: List[tuple[List[int], bytes]] = []
        for packet in packets:
            indices = sorted(set(packet.source_indices))
            if len(indices) == 1:
                known[indices[0]] = packet.payload
            else:
                pending.append((indices, packet.payload))

        progress = True
        while progress and len(known) < num_blocks:
            progress = False
            next_pending: List[tuple[List[int], bytes]] = []
            for indices, payload in pending:
                unknown = [i for i in indices if i not in known]
                if not unknown:
                    continue
                if len(unknown) == 1:
                    reduced = payload
                    for i in indices:
                        if i in known and i != unknown[0]:
                            reduced = xor_bytes(reduced, known[i])
                    known[unknown[0]] = reduced
                    progress = True
                else:
                    next_pending.append((indices, payload))
            pending = next_pending

        if len(known) < num_blocks:
            return None
        return [known[i] for i in range(num_blocks)]

    def minimum_packets(self, num_blocks: int) -> int:
        return num_blocks
