"""Data encoding schemes: null (evaluation default), Tornado-style erasure
codes, rateless LT codes and an MDC layered-media model."""

from repro.encoding.base import Codec, EncodedPacket, join_blocks, split_into_blocks, xor_bytes
from repro.encoding.lt import LtCodec, robust_soliton_distribution
from repro.encoding.mdc import Description, MdcCodec
from repro.encoding.null import NullCodec
from repro.encoding.tornado import TornadoCodec

__all__ = [
    "Codec",
    "Description",
    "EncodedPacket",
    "LtCodec",
    "MdcCodec",
    "NullCodec",
    "TornadoCodec",
    "join_blocks",
    "robust_soliton_distribution",
    "split_into_blocks",
    "xor_bytes",
]
