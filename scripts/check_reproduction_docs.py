#!/usr/bin/env python
"""Fail when docs/REPRODUCTION.md drifts from the registered experiments.

The experiment catalog in REPRODUCTION.md is hand-written prose, but its
set of documented experiment ids must match ``repro.report.catalog``
exactly: every registered experiment documented, nothing documented that no
longer exists, and the timing-table markers present so ``reproduce
--refresh-docs`` keeps working.  CI runs this next to the smoke-tier
reproduction job.

Usage: PYTHONPATH=src python scripts/check_reproduction_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.report.catalog import experiment_ids  # noqa: E402
from repro.report.docs import DEFAULT_DOC, TIMING_BEGIN, TIMING_END  # noqa: E402

#: Experiment ids are documented as table rows: | 7 | `fig12` | ... |
_ROW_ID = re.compile(r"^\|\s*\d+\s*\|\s*`([a-z0-9-]+)`\s*\|", re.MULTILINE)


def main() -> int:
    doc_path = REPO_ROOT / DEFAULT_DOC
    if not doc_path.exists():
        print(f"{doc_path} is missing")
        return 1
    text = doc_path.read_text()

    errors = []
    documented = _ROW_ID.findall(text)
    registered = experiment_ids()
    missing = [eid for eid in registered if eid not in documented]
    stale = sorted(set(documented) - set(registered))
    duplicated = sorted({eid for eid in documented if documented.count(eid) > 1})
    if missing:
        errors.append(f"registered but undocumented: {', '.join(missing)}")
    if stale:
        errors.append(f"documented but not registered: {', '.join(stale)}")
    if duplicated:
        errors.append(f"documented more than once: {', '.join(duplicated)}")
    if documented and not stale and not missing:
        ordered = [eid for eid in documented if eid in registered]
        if ordered != registered:
            errors.append(
                "catalog order differs from the registered order; renumber"
                " the tables to match `reproduce --list`"
            )
    if TIMING_BEGIN not in text or TIMING_END not in text:
        errors.append(
            f"missing {TIMING_BEGIN} / {TIMING_END} markers (needed by"
            " `reproduce --refresh-docs`)"
        )

    if errors:
        print(f"{doc_path.relative_to(REPO_ROOT)} drifted from repro.report.catalog:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(
        f"{doc_path.relative_to(REPO_ROOT)}: all {len(registered)} registered"
        " experiments documented, timing markers present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
