"""Dependency-free line-coverage measurement for the repro package.

CI's ``coverage`` job uses ``pytest-cov``; this script exists for
environments without it (offline containers).  It reproduces statement
coverage closely enough to set and maintain the committed threshold:

* the *denominator* is the set of executable lines per module, derived from
  the compiled code objects' ``co_lines`` tables (what coverage tools count
  as statements, minus a handful of parser-level exclusions);
* the *numerator* is the set of those lines hit while running the test
  suite under ``sys.settrace`` (non-``repro`` frames are skipped at call
  granularity, so the overhead stays tolerable).

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Prints per-package rates and the total line rate.  The CI gate's committed
minimum lives in ``.github/workflows/ci.yml`` (``--cov-fail-under``): when
the measured rate grows, ratchet the floor up to (measured − 1)%.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

PACKAGE_ROOT = SRC / "repro"


def executable_lines(path: Path) -> set[int]:
    """Executable line numbers of a module, from its code objects."""
    source = path.read_text()
    code = compile(source, str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line is not None)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # Module/class docstring lines and the ``__main__`` guard body mirror the
    # common coverage exclusions closely enough for a stable rate.
    return lines


def main() -> int:
    hit: dict[str, set[int]] = {}
    prefix = str(PACKAGE_ROOT)

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        lines = hit.setdefault(filename, set())

        def line_tracer(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return line_tracer

        if event == "call":
            lines.add(frame.f_lineno)
        return line_tracer

    import pytest

    args = sys.argv[1:] or ["-q", "-p", "no:cacheprovider"]
    sys.settrace(tracer)
    exit_code = pytest.main(args)
    sys.settrace(None)

    total_executable = 0
    total_hit = 0
    by_package: dict[str, list[int]] = {}
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        executable = executable_lines(path)
        hit_here = hit.get(str(path), set()) & executable
        total_executable += len(executable)
        total_hit += len(hit_here)
        package = path.relative_to(PACKAGE_ROOT).parts[0]
        bucket = by_package.setdefault(package, [0, 0])
        bucket[0] += len(executable)
        bucket[1] += len(hit_here)

    print()
    print(f"{'package':<24} {'lines':>7} {'hit':>7} {'rate':>7}")
    for package, (lines, hits) in sorted(by_package.items()):
        rate = 100.0 * hits / lines if lines else 100.0
        print(f"{package:<24} {lines:>7} {hits:>7} {rate:>6.1f}%")
    rate = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"{'TOTAL':<24} {total_executable:>7} {total_hit:>7} {rate:>6.1f}%")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
