#!/usr/bin/env python3
"""Quickstart: build a small Bullet mesh and watch it deliver a stream.

This example walks through the public API end to end:

1. generate a transit-stub topology with the paper's Table 1 bandwidth ranges;
2. place overlay participants on client hosts and build a random overlay tree;
3. run Bullet (disjoint tree transmission + RanSub peer discovery + mesh
   recovery) on the fluid network simulator for a couple of simulated minutes;
4. print the bandwidth each receiver achieved and the headline overheads.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import BulletConfig, BulletMesh
from repro.experiments.metrics import steady_state_average
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass


def main() -> None:
    # 1-2. Topology, participants, source and a random overlay tree.
    workload = build_workload(
        n_overlay=30,
        bandwidth_class=BandwidthClass.MEDIUM,
        tree_kind="random",
        seed=42,
    )
    print(f"topology: {workload.topology.describe()}")
    print(f"overlay : {len(workload.participants)} participants, source={workload.source}")
    print(f"tree    : height={workload.tree.height()}, max fanout={workload.tree.max_fanout()}")

    # 3. Wire Bullet to the fluid simulator and run for 150 simulated seconds.
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=42)
    config = BulletConfig(stream_rate_kbps=600.0, seed=42)
    mesh = BulletMesh(simulator, workload.tree, config)
    mesh.run(duration_s=150.0, sample_interval_s=5.0)

    # 4. Report what each receiver achieved.
    stats = simulator.stats
    receivers = mesh.receivers()
    useful = steady_state_average(stats.time_series("useful"))
    from_parent = steady_state_average(stats.time_series("from_parent"))
    print("\nresults (steady state, averaged over receivers)")
    print(f"  useful bandwidth   : {useful:6.1f} Kbps of a 600 Kbps stream")
    print(f"  from the parent    : {from_parent:6.1f} Kbps (rest arrives from mesh peers)")
    print(f"  duplicate packets  : {100 * stats.duplicate_ratio(receivers):.1f}%")
    print(
        "  control overhead   : "
        f"{stats.control_overhead_kbps(receivers, simulator.time):.1f} Kbps per node"
    )

    per_node = stats.per_node_bandwidth_at(simulator.time)
    worst = min(per_node, key=per_node.get)
    best = max(per_node, key=per_node.get)
    print(f"  best receiver      : node {best} at {per_node[best]:.0f} Kbps")
    print(f"  worst receiver     : node {worst} at {per_node[worst]:.0f} Kbps")
    print(f"  mesh status        : {mesh.status()}")


if __name__ == "__main__":
    main()
