#!/usr/bin/env python3
"""Scale scenario pack: run the large-overlay presets end to end.

The scenario registry (:data:`repro.experiments.workloads.SCALE_SCENARIOS`)
packages the runs that push the simulator toward the paper's 1000-node
setting: ``scale-500`` / ``scale-1000`` steady-state dissemination,
``flash-crowd`` (400 receivers join a 100-node overlay mid-run, over a
30-second arrival window) and ``churn-heavy`` (receivers keep departing
while the stream is live).  They all lean on the incremental allocation
and protocol engines — the from-scratch modes make the larger ones
impractically slow.

Run one scenario at its full scale (minutes of wall-clock for the 500/1000
node presets)::

    python examples/scale_scenarios.py churn-heavy

or smoke the whole pack at a reduced scale::

    python examples/scale_scenarios.py --all --scale 0.1

The equivalent CLI entry points are ``python -m repro.cli scenarios`` and
``python -m repro.cli run --scenario NAME``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.session import ExperimentSession
from repro.experiments.workloads import (
    SCALE_SCENARIOS,
    scale_scenario_names,
    scenario_config,
)


def run_scenario(name: str, scale: float = 1.0, seed: int = 1) -> dict:
    """Run one scenario (optionally shrunk by ``scale``) and summarize it."""
    scenario = SCALE_SCENARIOS[name]
    overrides: dict = {"seed": seed}
    if scale != 1.0:
        base = scenario_config(name)
        overrides["n_overlay"] = max(12, int(base.n_overlay * scale))
        overrides["duration_s"] = max(30.0, base.duration_s * scale)
        if base.churn_failures:
            overrides["churn_failures"] = max(2, int(base.churn_failures * scale))
        if base.churn_joins:
            overrides["churn_joins"] = max(2, int(base.churn_joins * scale))
    config = scenario_config(name, **overrides)

    print(f"== {name}: {scenario.description}")
    print(f"   overlay={config.n_overlay} duration={config.duration_s:.0f}s seed={seed}")
    started = time.perf_counter()
    session = ExperimentSession(config)
    result = session.run()
    elapsed = time.perf_counter() - started

    stats = session.simulator.allocation_stats
    summary = {
        "scenario": name,
        "average_useful_kbps": result.average_useful_kbps,
        "duplicate_ratio": result.duplicate_ratio,
        "wall_s": elapsed,
        "sim_steps_per_s": stats.steps / elapsed if elapsed > 0 else 0.0,
        "alloc_clean_fraction": stats.clean_fraction,
        "alloc_solve_fraction": stats.solve_fraction,
    }
    print(
        f"   useful {summary['average_useful_kbps']:.0f} Kbps,"
        f" duplicates {summary['duplicate_ratio']:.1%},"
        f" {elapsed:.1f}s wall ({summary['sim_steps_per_s']:.1f} steps/s),"
        f" allocator reused {stats.clean_fraction:.0%} of steps"
        f" / solved {stats.solve_fraction:.0%} of flow-rounds"
    )
    return summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("scenario", nargs="?", choices=scale_scenario_names(),
                        help="scenario to run (omit with --all)")
    parser.add_argument("--all", action="store_true", help="run every scenario")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="shrink factor for overlay size and duration")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    names = scale_scenario_names() if args.all else [args.scenario]
    if names == [None]:
        parser.error("name a scenario or pass --all")
    for name in names:
        run_scenario(name, scale=args.scale, seed=args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
