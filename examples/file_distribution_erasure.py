#!/usr/bin/env python3
"""Large-file distribution with erasure coding over a Bullet mesh.

The paper's second motivating workload is bulk file transfer ("software
distribution"): the file is split into blocks, encoded with a digital
fountain code (Tornado / LT), and receivers only need *enough* encoded
packets — not every packet — to reconstruct the file.

This example:

1. encodes a synthetic 3 MB file with the Tornado-style codec;
2. streams the encoded packets through a Bullet mesh on a low-bandwidth
   topology (where plain tree streaming would leave holes);
3. reports when each receiver gathered enough packets to decode, and verifies
   the reconstruction bit-for-bit for a sample receiver.

Run it with::

    python examples/file_distribution_erasure.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import BulletConfig, BulletMesh
from repro.encoding import TornadoCodec, join_blocks, split_into_blocks
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass
from repro.util.rng import SeededRng

FILE_SIZE_BYTES = 3 * 1024 * 1024
BLOCK_SIZE_BYTES = 1500
STREAM_KBPS = 600.0


def make_file(size: int, seed: int = 5) -> bytes:
    rng = SeededRng(seed, "file")
    return bytes(rng.randint(0, 255) for _ in range(size))


def main() -> None:
    # 1. Split and encode the file.
    print("encoding a 3 MB file with the Tornado-style codec (stretch factor 1.4)...")
    original = make_file(FILE_SIZE_BYTES)
    blocks = split_into_blocks(original, BLOCK_SIZE_BYTES)
    codec = TornadoCodec(stretch_factor=1.4, degree=3, seed=7)
    encoded = codec.encode(blocks)
    print(f"  source blocks : {len(blocks)}")
    print(f"  encoded pkts  : {len(encoded)} (sequence number == packet index)")

    # 2. Disseminate the encoded packets through Bullet on a constrained topology.
    workload = build_workload(
        n_overlay=24, bandwidth_class=BandwidthClass.LOW, tree_kind="random", seed=11
    )
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=11)
    mesh = BulletMesh(
        simulator, workload.tree, BulletConfig(stream_rate_kbps=STREAM_KBPS, seed=11)
    )
    # Run until the source has pushed every encoded packet once, plus drain time.
    push_seconds = len(encoded) / (STREAM_KBPS / 12.0)
    mesh.run(duration_s=push_seconds + 60.0, sample_interval_s=10.0)

    # 3. Check which receivers can already decode.
    needed = len(blocks)
    print(f"\nafter {simulator.time:.0f} simulated seconds:")
    decodable = 0
    sample_receiver = None
    for node_id in mesh.receivers():
        holdings = [seq for seq in mesh.nodes[node_id].working_set.sequences()
                    if seq < len(encoded)]
        received_packets = [encoded[seq] for seq in holdings]
        if codec.decode(received_packets, needed) is not None:
            decodable += 1
            sample_receiver = sample_receiver or node_id
    print(f"  receivers able to reconstruct the file: {decodable}/{len(mesh.receivers())}")

    if sample_receiver is not None:
        holdings = [seq for seq in mesh.nodes[sample_receiver].working_set.sequences()
                    if seq < len(encoded)]
        received_packets = [encoded[seq] for seq in holdings]
        decoded_blocks = codec.decode(received_packets, needed)
        reconstructed = join_blocks(decoded_blocks, FILE_SIZE_BYTES)
        ok = reconstructed == original
        overhead = codec.reception_overhead(len(received_packets), needed)
        print(f"  sample receiver {sample_receiver}: reconstruction "
              f"{'OK' if ok else 'FAILED'} using {len(received_packets)} packets "
              f"(reception overhead {100 * overhead:.1f}%)")
    else:
        print("  no receiver has gathered enough packets yet; run longer for full coverage")


if __name__ == "__main__":
    main()
