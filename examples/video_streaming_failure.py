#!/usr/bin/env python3
"""Real-time streaming under node failure: Bullet vs a plain overlay tree.

The scenario the paper's introduction motivates: a live video stream (600
Kbps) is distributed to a set of receivers, and partway through the session
the overlay node carrying the largest subtree dies.  A distribution tree
loses the whole subtree until it is repaired; Bullet's receivers keep pulling
the stream from their mesh peers.

The example runs both systems on the same topology and failure schedule and
prints the average bandwidth before and after the failure.

Run it with::

    python examples/video_streaming_failure.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.streaming import TreeStreaming
from repro.core import BulletConfig, BulletMesh
from repro.experiments.workloads import build_workload
from repro.failure.injector import FailureInjector, worst_case_victim
from repro.network.events import PeriodicTimer
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass

STREAM_KBPS = 600.0
DURATION_S = 180.0
FAILURE_AT_S = 90.0


def run_with_failure(system_name: str, seed: int = 21) -> dict:
    """Run one system with the worst-case failure injected mid-stream."""
    workload = build_workload(
        n_overlay=30, bandwidth_class=BandwidthClass.MEDIUM, tree_kind="random", seed=seed
    )
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    if system_name == "bullet":
        driver = BulletMesh(
            simulator, workload.tree, BulletConfig(stream_rate_kbps=STREAM_KBPS, seed=seed)
        )
    else:
        driver = TreeStreaming(simulator, workload.tree, stream_rate_kbps=STREAM_KBPS)

    victim = worst_case_victim(workload.tree)
    injector = FailureInjector(driver)
    injector.schedule_failure(victim, FAILURE_AT_S)

    sample = PeriodicTimer(5.0)
    for _ in range(int(DURATION_S)):
        simulator.begin_step()
        injector.tick(simulator.time)
        driver.protocol_phase(simulator.time)
        simulator.end_step()
        if sample.fire(simulator.time):
            simulator.stats.sample_interval(simulator.time, 5.0, driver.receivers())

    series = simulator.stats.time_series("useful")
    before = [v for t, v in series if FAILURE_AT_S * 0.5 <= t <= FAILURE_AT_S]
    after = [v for t, v in series if t > FAILURE_AT_S + 10.0]
    subtree = len(workload.tree.subtree(victim)) if victim in workload.tree else 0
    return {
        "victim": victim,
        "subtree_size": subtree,
        "before_kbps": sum(before) / len(before),
        "after_kbps": sum(after) / len(after),
    }


def main() -> None:
    print(f"streaming {STREAM_KBPS:.0f} Kbps to 29 receivers; "
          f"failing the largest root subtree at t={FAILURE_AT_S:.0f}s\n")
    for name in ("bullet", "tree streaming"):
        key = "bullet" if name == "bullet" else "stream"
        result = run_with_failure(key)
        retained = 100.0 * result["after_kbps"] / max(result["before_kbps"], 1e-9)
        print(f"{name:>16}: {result['before_kbps']:6.1f} Kbps before -> "
              f"{result['after_kbps']:6.1f} Kbps after the failure "
              f"({retained:.0f}% retained, victim subtree: {result['subtree_size']} nodes)")
    print("\nBullet retains most of its bandwidth because receivers in the failed\n"
          "subtree keep recovering data from mesh peers; the plain tree loses the\n"
          "subtree entirely until some external repair re-attaches it.")


if __name__ == "__main__":
    main()
