#!/usr/bin/env python3
"""Compare Bullet against every baseline on one constrained topology.

Runs Bullet, plain streaming over a random tree, streaming over the offline
bottleneck-bandwidth tree, push gossiping and streaming with anti-entropy
recovery on the *same* low-bandwidth workload — as one parallel batch through
``run_batch`` — then prints a ranking: a miniature version of the paper's
Figures 6, 7 and 11 in one table.

Run it with::

    python examples/bandwidth_comparison.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

SCENARIOS = [
    ("Bullet over a random tree", dict(system="bullet", tree_kind="random")),
    ("streaming, bottleneck tree", dict(system="stream", tree_kind="bottleneck")),
    ("streaming, random tree", dict(system="stream", tree_kind="random")),
    ("push gossiping", dict(system="gossip")),
    ("streaming w/ anti-entropy", dict(system="antientropy", tree_kind="bottleneck")),
]


def main() -> None:
    shared = dict(
        n_overlay=30,
        duration_s=180.0,
        bandwidth_class=BandwidthClass.LOW,
        stream_rate_kbps=600.0,
        seed=17,
    )
    print("low-bandwidth topology, 600 Kbps stream, 30 participants\n")
    print(f"{'system':<30} {'useful Kbps':>12} {'duplicates':>12} {'control Kbps':>14}")
    configs = [ExperimentConfig(**shared, **overrides) for _, overrides in SCENARIOS]
    results = run_batch(configs, workers=2)
    rows = list(zip((name for name, _ in SCENARIOS), results))
    for name, result in rows:
        print(
            f"{name:<30} {result.average_useful_kbps:>12.1f}"
            f" {100 * result.duplicate_ratio:>11.1f}%"
            f" {result.control_overhead_kbps:>14.1f}"
        )

    best = max(rows, key=lambda row: row[1].average_useful_kbps)
    print(f"\nhighest useful bandwidth: {best[0]}")


if __name__ == "__main__":
    main()
