"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` working in environments where the editable install is not
possible (e.g. fully offline machines with an old setuptools).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
