"""Legacy setup shim.

The offline evaluation environment ships an older setuptools without the
``wheel`` package, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) work there.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
