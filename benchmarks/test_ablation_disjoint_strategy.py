"""Ablation — the disjoint-send design choices beyond Figure 10.

Figure 10 compares disjoint vs non-disjoint transmission; this ablation also
sweeps the recovery-range lookahead (how eagerly peers push fresh rows), the
trade-off being throughput against duplicate overhead.
"""

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

VARIANTS = (
    ("disjoint, no lookahead", 0.0, True),
    ("disjoint, 5 s lookahead", 5.0, True),
    ("non-disjoint", 0.0, False),
)


def _config(lookahead_s: float, disjoint: bool, n_overlay: int, duration_s: float, seed: int):
    return ExperimentConfig(
        system="bullet",
        tree_kind="random",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        bandwidth_class=BandwidthClass.MEDIUM,
        bullet=BulletConfig(
            stream_rate_kbps=600.0,
            seed=seed,
            disjoint_send=disjoint,
            recovery_lookahead_s=lookahead_s,
        ),
    )


def test_ablation_disjoint_and_lookahead(benchmark, scale, workers):
    duration = min(scale.duration_s, 160.0)
    configs = [
        _config(lookahead, disjoint, scale.n_overlay, duration, scale.seed)
        for _, lookahead, disjoint in VARIANTS
    ]

    def sweep():
        batch = run_batch(configs, workers=workers)
        return {name: result for (name, _, _), result in zip(VARIANTS, batch)}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    print("\n  Ablation — disjoint send and recovery lookahead (medium bandwidth)")
    print(f"    {'configuration':<26} {'useful Kbps':>12} {'duplicates':>12}")
    for name, result in results.items():
        print(
            f"    {name:<26} {result.average_useful_kbps:>12.0f}"
            f" {100 * result.duplicate_ratio:>11.1f}%"
        )

    base = results["disjoint, no lookahead"]
    lookahead = results["disjoint, 5 s lookahead"]
    nondisjoint = results["non-disjoint"]
    # The default (disjoint, no lookahead) keeps duplicates lowest.
    assert base.duplicate_ratio <= lookahead.duplicate_ratio + 0.02
    # Disjoint transmission does not lose to the non-disjoint variant.
    assert base.average_useful_kbps >= 0.95 * nondisjoint.average_useful_kbps
