"""Ablation — the disjoint-send design choices beyond Figure 10.

Figure 10 compares disjoint vs non-disjoint transmission; this ablation also
sweeps the recovery-range lookahead (how eagerly peers push fresh rows), the
trade-off being throughput against duplicate overhead.  The sweep lives in
``repro.experiments.ablations`` so the reproduction pipeline exports the
same numbers this benchmark prints.
"""

from repro.experiments.ablations import ablation_disjoint_lookahead


def test_ablation_disjoint_and_lookahead(benchmark, scale, workers):
    results = benchmark.pedantic(
        lambda: ablation_disjoint_lookahead(scale, workers=workers),
        iterations=1,
        rounds=1,
    )
    by_variant = results["by_variant"]
    labels = results["labels"]

    print("\n  Ablation — disjoint send and recovery lookahead (medium bandwidth)")
    print(f"    {'configuration':<26} {'useful Kbps':>12} {'duplicates':>12}")
    for key, row in by_variant.items():
        print(
            f"    {labels[key]:<26} {row['useful_kbps']:>12.0f}"
            f" {100 * row['duplicate_ratio']:>11.1f}%"
        )

    base = by_variant["disjoint"]
    lookahead = by_variant["lookahead"]
    nondisjoint = by_variant["nondisjoint"]
    # The default (disjoint, no lookahead) keeps duplicates lowest.
    assert base["duplicate_ratio"] <= lookahead["duplicate_ratio"] + 0.02
    # Disjoint transmission does not lose to the non-disjoint variant.
    assert base["useful_kbps"] >= 0.95 * nondisjoint["useful_kbps"]
