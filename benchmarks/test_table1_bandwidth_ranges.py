"""Table 1 — bandwidth ranges for link types, and their effect on topologies.

The paper's Table 1 is configuration rather than measurement; the benchmark
verifies that generated topologies honour the exact published ranges and
reports the mean capacity per link class for each bandwidth setting.  The
verification itself lives in ``repro.experiments.tables`` so the
reproduction pipeline exports the same numbers this benchmark prints.
"""

from repro.experiments.tables import table1_bandwidth_ranges


def test_table1_ranges(benchmark):
    results = benchmark(table1_bandwidth_ranges)

    for class_name, rows in results["by_class"].items():
        print(f"\n  Table 1 — {class_name} bandwidth topology")
        print(f"    {'link class':<18} {'range (Kbps)':<18} {'generated mean':>14}")
        for link_name, row in rows.items():
            low, high = row["range_kbps"]
            print(
                f"    {link_name:<18} {f'{low:.0f}-{high:.0f}':<18}"
                f" {row['mean_kbps']:>14.0f}"
            )
            # Every individual link and the class mean honour the range.
            assert row["within_range"], (class_name, link_name)
            assert low <= row["mean_kbps"] <= high

    assert results["all_within_ranges"]
