"""Table 1 — bandwidth ranges for link types, and their effect on topologies.

The paper's Table 1 is configuration rather than measurement; the benchmark
verifies that generated topologies honour the exact published ranges and
reports the mean capacity per link class for each bandwidth setting.
"""

import pytest

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.links import BandwidthClass, LinkType, TABLE_1_RANGES


def _mean_capacities(bandwidth_class: BandwidthClass, seed: int = 1):
    topology = generate_topology(
        TopologyConfig(
            transit_routers=4,
            stub_domains=10,
            routers_per_stub=3,
            clients_per_stub=6,
            bandwidth_class=bandwidth_class,
            seed=seed,
        )
    )
    means = {}
    for link_type in LinkType:
        links = topology.links_of_type(link_type)
        means[link_type] = sum(link.capacity_kbps for link in links) / len(links)
    return topology, means


@pytest.mark.parametrize("bandwidth_class", list(BandwidthClass))
def test_table1_ranges(benchmark, bandwidth_class):
    topology, means = benchmark(_mean_capacities, bandwidth_class)

    print(f"\n  Table 1 — {bandwidth_class.value} bandwidth topology")
    print(f"    {'link class':<18} {'range (Kbps)':<18} {'generated mean':>14}")
    for link_type in LinkType:
        low, high = TABLE_1_RANGES[bandwidth_class][link_type]
        print(f"    {link_type.value:<18} {f'{low:.0f}-{high:.0f}':<18} {means[link_type]:>14.0f}")

    for link in topology.links:
        low, high = TABLE_1_RANGES[bandwidth_class][link.link_type]
        assert low <= link.capacity_kbps <= high
    for link_type in LinkType:
        low, high = TABLE_1_RANGES[bandwidth_class][link_type]
        assert low <= means[link_type] <= high
