"""Figure 10 — Bullet without the disjoint transmission strategy (ablation).

Paper result: sending all data to every child (subject only to transport
throttling) deprives Bullet of roughly 25% of its bandwidth relative to the
explicit disjoint ownership strategy of Figure 7.  The reproduction checks
that the disjoint strategy wins by a visible margin at constrained bandwidth.
"""


from repro.experiments.figures import FigureScale, figure10_nondisjoint


def test_figure10(benchmark, scale, workers):
    # The ablation is most visible when children bandwidth is constrained.
    constrained = FigureScale(
        n_overlay=scale.n_overlay,
        duration_s=scale.duration_s,
        dt=scale.dt,
        sample_interval_s=scale.sample_interval_s,
        seed=scale.seed,
    )
    data = benchmark.pedantic(
        figure10_nondisjoint, args=(constrained,), kwargs={"workers": workers},
        iterations=1, rounds=1,
    )

    advantage = data["disjoint_kbps"] / max(data["nondisjoint_kbps"], 1e-9)
    print("\n  Figure 10 — non-disjoint transmission ablation (600 Kbps target)")
    print(f"    disjoint strategy (Fig 7) : {data['disjoint_kbps']:.0f} Kbps")
    print(f"    non-disjoint strategy     : {data['nondisjoint_kbps']:.0f} Kbps")
    print(f"    disjoint advantage        : {advantage:.2f}x (paper: ~1.33x)")

    assert data["nondisjoint_kbps"] > 0
    # The disjoint strategy must not lose, and should show a measurable win.
    assert data["disjoint_kbps"] >= data["nondisjoint_kbps"] * 0.98
