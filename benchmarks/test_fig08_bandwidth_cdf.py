"""Figure 8 — CDF of instantaneous achieved bandwidth late in a Bullet run.

Paper result: the distribution rises sharply around 500 Kbps and the vast
majority of nodes receive 500-600 Kbps; only a small tail of constrained
clients receives less.  The reproduction checks that the distribution is
concentrated near its upper end rather than spread uniformly.
"""

from repro.experiments.figures import figure8_bandwidth_cdf
from repro.experiments.metrics import fraction_below


def test_figure8(benchmark, scale):
    data = benchmark.pedantic(figure8_bandwidth_cdf, args=(scale,), iterations=1, rounds=1)
    cdf = data["cdf"]

    median = data["median_kbps"]
    best = cdf[-1][0]
    print("\n  Figure 8 — CDF of instantaneous per-node bandwidth (late time slice)")
    print(f"    nodes            : {len(data['per_node_kbps'])}")
    print(f"    median bandwidth : {median:.0f} Kbps")
    print(f"    best node        : {best:.0f} Kbps")
    for threshold in (0.25, 0.5, 0.75):
        value = best * threshold
        print(f"    fraction below {value:7.0f} Kbps: {fraction_below(cdf, value):.2f}")

    assert cdf, "CDF must not be empty"
    fractions = [fraction for _, fraction in cdf]
    assert fractions == sorted(fractions)
    # Concentration near the top: the median exceeds half of the best node's
    # bandwidth (the paper's sharp rise near the streaming rate).
    assert median >= 0.5 * best
    # Only a minority of nodes receive less than half the median.
    assert fraction_below(cdf, 0.5 * median) <= 0.35
