"""Figure 9 — Bullet vs the bottleneck tree across bandwidth settings.

Paper result: at the high setting both Bullet and the offline
bottleneck-bandwidth tree sustain the full 600 Kbps; as bandwidth tightens
Bullet's advantage grows, reaching roughly 2x the tree at the low setting
(25% at medium).  The reproduction checks that Bullet never falls
meaningfully below the tree, tracks the target at the high setting, and beats
the tree outright at the low setting.
"""

from repro.experiments.figures import figure9_bandwidth_sweep


def test_figure9(benchmark, scale, workers):
    rows = benchmark.pedantic(
        figure9_bandwidth_sweep, args=(scale,), kwargs={"workers": workers},
        iterations=1, rounds=1,
    )

    print("\n  Figure 9 — Bullet vs bottleneck tree (600 Kbps target)")
    print(f"    {'bandwidth':<10} {'Bullet':>10} {'bottleneck tree':>16} {'ratio':>7}")
    for name in ("high", "medium", "low"):
        row = rows[name]
        ratio = row["bullet_kbps"] / max(row["bottleneck_tree_kbps"], 1e-9)
        print(
            f"    {name:<10} {row['bullet_kbps']:>10.0f} {row['bottleneck_tree_kbps']:>16.0f}"
            f" {ratio:>6.2f}x"
        )

    high, medium, low = rows["high"], rows["medium"], rows["low"]
    # High bandwidth: both systems reach (close to) the streaming target.
    assert high["bullet_kbps"] >= 0.85 * 600.0
    assert high["bottleneck_tree_kbps"] >= 0.85 * 600.0
    # Low bandwidth: Bullet overtakes the best offline tree.
    assert low["bullet_kbps"] >= low["bottleneck_tree_kbps"]
    # Bullet's advantage grows as bandwidth becomes constrained.
    low_ratio = low["bullet_kbps"] / max(low["bottleneck_tree_kbps"], 1e-9)
    high_ratio = high["bullet_kbps"] / max(high["bottleneck_tree_kbps"], 1e-9)
    assert low_ratio >= high_ratio
    # Bullet delivers more when more bandwidth is available.
    assert high["bullet_kbps"] >= medium["bullet_kbps"] >= low["bullet_kbps"]
