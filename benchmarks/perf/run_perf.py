"""Standalone performance runner: measures and emits ``BENCH_*.json``.

Runs the macro end-to-end step-rate benchmark (flow-churn workload,
incremental vs from-scratch bandwidth solving) plus solver micro-timings,
verifies the two modes agree on the workload first, and writes a JSON report
for trajectory tracking and CI regression gating::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --out BENCH_PERF.json

``check_regression.py`` compares such a report against the committed
``benchmarks/perf/baseline.json``.  The gated quantity is the *speedup* (the
incremental / from-scratch step-rate ratio): absolute step rates move with
the host machine, the ratio is what the incremental engine owns.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from perf_harness import (  # noqa: E402
    ChurnSpec,
    build_micro_problem,
    compare_modes,
    lockstep_allocations,
)

from repro.network.fairshare import (  # noqa: E402
    max_min_allocation,
    single_pass_allocation,
)

SCHEMA = 1


def _solver_micro(n_flows: int = 400, n_links: int = 120, repeats: int = 5) -> dict:
    """Mean milliseconds per solve on a synthetic multi-bottleneck problem."""
    requests, capacities = build_micro_problem(n_flows, n_links)
    timings = {}
    for name, solver in (
        ("max_min", max_min_allocation),
        ("single_pass", single_pass_allocation),
    ):
        started = time.perf_counter()
        for _ in range(repeats):
            solver(requests, capacities)
        timings[f"{name}_ms"] = (time.perf_counter() - started) / repeats * 1000.0
    timings["n_flows"] = float(n_flows)
    timings["n_links"] = float(n_links)
    return timings


def _verify(spec: ChurnSpec, steps: int) -> float:
    """Assert incremental == from-scratch on the workload; returns worst gap."""
    worst = 0.0
    for inc, ref in lockstep_allocations(spec, steps):
        if len(inc) != len(ref):
            raise SystemExit("verification failed: flow populations diverged")
        for a, b in zip(inc, ref):
            if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6):
                raise SystemExit(
                    f"verification failed: incremental={a!r} from-scratch={b!r}"
                )
            worst = max(worst, abs(a - b))
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--out", default="BENCH_PERF.json", help="report path")
    parser.add_argument("--steps", type=int, default=60, help="timed steps per mode")
    parser.add_argument("--verify-steps", type=int, default=25,
                        help="lockstep equivalence steps before timing")
    parser.add_argument("--quick", action="store_true",
                        help="quarter-scale run (smoke-testing the runner)")
    args = parser.parse_args(argv)

    spec = ChurnSpec()
    if args.quick:
        spec = spec.scaled(0.25)
    verify_spec = spec.scaled(0.25)

    print(f"verifying incremental == from-scratch ({args.verify_steps} steps)...")
    worst = _verify(verify_spec, args.verify_steps)
    print(f"  ok (worst per-flow gap {worst:.3e} Kbps)")

    print(f"timing macro churn workload ({args.steps} steps per mode)...")
    macro = compare_modes(spec, steps=args.steps)
    summary = macro["summary"]
    print(
        f"  from-scratch {macro['from_scratch']['steps_per_s']:.2f} steps/s,"
        f" incremental {macro['incremental']['steps_per_s']:.2f} steps/s,"
        f" speedup {summary['speedup']:.2f}x"
        f" (clean steps: {summary['clean_fraction']:.0%})"
    )

    print("timing solver micro-benchmarks...")
    micro = _solver_micro()
    print(
        f"  max_min {micro['max_min_ms']:.2f} ms,"
        f" single_pass {micro['single_pass_ms']:.2f} ms"
    )

    report = {
        "schema": SCHEMA,
        "kind": "repro-perf",
        "results": {
            "macro_churn_step_rate": {
                "from_scratch_steps_per_s": macro["from_scratch"]["steps_per_s"],
                "incremental_steps_per_s": macro["incremental"]["steps_per_s"],
                "speedup": summary["speedup"],
                "clean_fraction": summary["clean_fraction"],
                "solve_fraction": summary["solve_fraction"],
                "spec": macro["spec"],
            },
            "solver_micro": micro,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
