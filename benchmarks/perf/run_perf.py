"""Standalone performance runner: measures and emits ``BENCH_*.json``.

Two macro suites, selected with ``--suite``:

* ``churn`` (default) — the flow-churn workload gating PR 3's incremental
  *bandwidth-allocation* engine, plus solver micro-timings;
* ``protocol`` — the protocol-plane workload gating the incremental
  Bloom/RanSub hot path: refresh + RanSub step rate on a 500-node Bullet
  overlay, incremental vs the pre-incremental from-scratch path;
* ``routing`` — the routing-plane workload gating the amortized underlay
  routing engine: discovery-spike path resolution at the 500-node scale
  (per-source trees + warm-up vs per-pair networkx), plus a reduced
  flash-crowd join macro for trajectory tracking;
* ``step`` — the step-core workload gating the quiescence-aware step
  engine (``repro.sched``): everything a session step does *outside*
  ``protocol_phase`` — allocation, transport, injector and sampling —
  wakeup-driven + vectorized vs the legacy every-node-every-step loop,
  on the 500-node flash-crowd join macro;
* ``hierarchy`` — the clustered-overlay workloads: the 2000-node
  ``bullet-clustered`` macro's interior step rate (head-delta extraction +
  cluster stepping + barrier flushes, head-mesh cost subtracted
  symmetrically), fused-numpy shard workers vs the serial scalar stepper;
  plus the 10000-node head-mesh macro gating the scaling recipe — the
  three-level, landmark-scored, shard-owned head mesh vs the two-level
  head-on-main architecture at the same node count;
* ``all`` — every suite (used to regenerate the committed baseline).

Each suite verifies the two modes agree (lockstep allocations for churn,
byte-identical exports for protocol) before timing, then writes a JSON
report for trajectory tracking and CI regression gating::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --suite protocol \
        --out BENCH_PROTOCOL.json

``check_regression.py`` compares such a report against the committed
``benchmarks/perf/baseline.json``.  The gated quantities are *speedups*
(incremental / from-scratch step-rate ratios): absolute step rates move
with the host machine, the ratio is what the incremental engines own.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from perf_harness import (  # noqa: E402
    ChurnSpec,
    build_micro_problem,
    compare_modes,
    lockstep_allocations,
)
from protocol_harness import (  # noqa: E402
    ProtocolSpec,
    compare_protocol_modes,
    verify_exports_identical,
)
from hierarchy_harness import (  # noqa: E402
    HeadMeshSpec,
    HierarchySpec,
    compare_headmesh_modes,
    compare_hierarchy_modes,
    verify_exports_identical as verify_hierarchy_exports_identical,
)
from routing_harness import (  # noqa: E402
    FlashCrowdSpec,
    RoutingSpec,
    compare_flash_crowd,
    compare_routing_modes,
    verify_routes_identical,
)
from step_harness import (  # noqa: E402
    StepSpec,
    compare_step_modes,
    verify_exports_identical as verify_step_exports_identical,
)

from repro.network.fairshare import (  # noqa: E402
    max_min_allocation,
    single_pass_allocation,
)

SCHEMA = 1


def _solver_micro(n_flows: int = 400, n_links: int = 120, repeats: int = 5) -> dict:
    """Mean milliseconds per solve on a synthetic multi-bottleneck problem."""
    requests, capacities = build_micro_problem(n_flows, n_links)
    timings = {}
    for name, solver in (
        ("max_min", max_min_allocation),
        ("single_pass", single_pass_allocation),
    ):
        started = time.perf_counter()
        for _ in range(repeats):
            solver(requests, capacities)
        timings[f"{name}_ms"] = (time.perf_counter() - started) / repeats * 1000.0
    timings["n_flows"] = float(n_flows)
    timings["n_links"] = float(n_links)
    return timings


def _verify(spec: ChurnSpec, steps: int) -> float:
    """Assert incremental == from-scratch on the workload; returns worst gap."""
    worst = 0.0
    for inc, ref in lockstep_allocations(spec, steps):
        if len(inc) != len(ref):
            raise SystemExit("verification failed: flow populations diverged")
        for a, b in zip(inc, ref):
            if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6):
                raise SystemExit(
                    f"verification failed: incremental={a!r} from-scratch={b!r}"
                )
            worst = max(worst, abs(a - b))
    return worst


def _churn_results(args) -> dict:
    spec = ChurnSpec()
    if args.quick:
        spec = spec.scaled(0.25)
    verify_spec = spec.scaled(0.25)

    print(f"verifying incremental == from-scratch ({args.verify_steps} steps)...")
    worst = _verify(verify_spec, args.verify_steps)
    print(f"  ok (worst per-flow gap {worst:.3e} Kbps)")

    print(f"timing macro churn workload ({args.steps} steps per mode)...")
    macro = compare_modes(spec, steps=args.steps)
    summary = macro["summary"]
    print(
        f"  from-scratch {macro['from_scratch']['steps_per_s']:.2f} steps/s,"
        f" incremental {macro['incremental']['steps_per_s']:.2f} steps/s,"
        f" speedup {summary['speedup']:.2f}x"
        f" (clean steps: {summary['clean_fraction']:.0%})"
    )

    print("timing solver micro-benchmarks...")
    micro = _solver_micro()
    print(
        f"  max_min {micro['max_min_ms']:.2f} ms,"
        f" single_pass {micro['single_pass_ms']:.2f} ms"
    )

    return {
        "macro_churn_step_rate": {
            "from_scratch_steps_per_s": macro["from_scratch"]["steps_per_s"],
            "incremental_steps_per_s": macro["incremental"]["steps_per_s"],
            "speedup": summary["speedup"],
            "clean_fraction": summary["clean_fraction"],
            "solve_fraction": summary["solve_fraction"],
            "spec": macro["spec"],
        },
        "solver_micro": micro,
    }


def _protocol_results(args) -> dict:
    spec = ProtocolSpec()
    if args.quick:
        spec = spec.scaled(0.2)

    print("verifying protocol modes export identically (reduced scale)...")
    verify_exports_identical()
    print("  ok (byte-identical exports)")

    print(
        f"timing protocol plane at {spec.n_overlay} nodes"
        f" ({spec.steps} steps per mode, {spec.warmup_steps} warmup)..."
    )
    macro = compare_protocol_modes(spec)
    summary = macro["summary"]
    print(
        f"  from-scratch {macro['from_scratch']['protocol_steps_per_s']:.2f}"
        f" protocol steps/s, incremental"
        f" {macro['incremental']['protocol_steps_per_s']:.2f} protocol steps/s,"
        f" protocol speedup {summary['protocol_speedup']:.2f}x"
        f" (end-to-end {summary['end_to_end_speedup']:.2f}x)"
    )

    return {
        "macro_protocol_step_rate": {
            "from_scratch_protocol_steps_per_s": macro["from_scratch"][
                "protocol_steps_per_s"
            ],
            "incremental_protocol_steps_per_s": macro["incremental"][
                "protocol_steps_per_s"
            ],
            "protocol_speedup": summary["protocol_speedup"],
            "end_to_end_speedup": summary["end_to_end_speedup"],
            "spec": macro["spec"],
        },
    }


def _routing_results(args) -> dict:
    spec = RoutingSpec()
    flash_spec = FlashCrowdSpec()
    if args.quick:
        spec = spec.scaled(0.25)
        flash_spec = flash_spec.scaled(0.4)

    print("verifying engine routes == networkx reference (reduced scale)...")
    verify_routes_identical()
    print("  ok (identical routes, attributes and epoch-refresh behaviour)")

    print(
        f"timing discovery spike ({spec.joiners} joiners x"
        f" {spec.peers_per_joiner} peers at overlay size {spec.n_overlay})..."
    )
    macro = compare_routing_modes(spec)
    summary = macro["summary"]
    print(
        f"  legacy {macro['legacy']['pairs_per_s']:.0f} pairs/s,"
        f" engine {macro['engine']['pairs_per_s']:.0f} pairs/s,"
        f" speedup {summary['speedup']:.2f}x"
        f" (construction warm {macro['engine']['construction_warm_s']:.2f}s,"
        " untimed)"
    )

    print(
        f"timing flash-crowd join macro ({flash_spec.n_overlay}+"
        f"{flash_spec.joins} nodes, {flash_spec.duration_s:.0f}s)..."
    )
    flash = compare_flash_crowd(flash_spec)
    print(
        f"  legacy {flash['legacy']['steps_per_s']:.2f} steps/s,"
        f" engine {flash['engine']['steps_per_s']:.2f} steps/s,"
        f" speedup {flash['summary']['speedup']:.2f}x"
    )

    return {
        "macro_routing_discovery": {
            "legacy_pairs_per_s": macro["legacy"]["pairs_per_s"],
            "engine_pairs_per_s": macro["engine"]["pairs_per_s"],
            "speedup": summary["speedup"],
            "construction_warm_s": macro["engine"]["construction_warm_s"],
            "spec": macro["spec"],
        },
        # Reported for trajectory tracking, not gated: the end-to-end step
        # rate mixes routing with allocation, protocol and transport work.
        "macro_flash_crowd_join": {
            "legacy_steps_per_s": flash["legacy"]["steps_per_s"],
            "engine_steps_per_s": flash["engine"]["steps_per_s"],
            "speedup": flash["summary"]["speedup"],
            "spec": flash["spec"],
        },
    }


def _step_results(args) -> dict:
    spec = StepSpec()
    if args.quick:
        spec = spec.scaled(0.25)

    print("verifying step-core modes export identically (reduced scale)...")
    verify_step_exports_identical()
    print("  ok (byte-identical exports)")

    print(
        f"timing step core on the flash-crowd macro ({spec.n_overlay}+"
        f"{spec.joins} nodes, {spec.duration_s:.0f}s per mode)..."
    )
    macro = compare_step_modes(spec)
    summary = macro["summary"]
    print(
        f"  legacy {macro['legacy']['core_steps_per_s']:.2f} core steps/s,"
        f" engine {macro['engine']['core_steps_per_s']:.2f} core steps/s,"
        f" core speedup {summary['core_speedup']:.2f}x"
        f" (end-to-end {summary['end_to_end_speedup']:.2f}x)"
    )

    return {
        "macro_step_core": {
            "legacy_core_steps_per_s": macro["legacy"]["core_steps_per_s"],
            "engine_core_steps_per_s": macro["engine"]["core_steps_per_s"],
            "step_core_speedup": summary["core_speedup"],
            # Reported for trajectory tracking, not gated: the end-to-end
            # rate mixes the step core with the protocol plane, which
            # dominates once the core is fast.
            "end_to_end_speedup": summary["end_to_end_speedup"],
            "spec": macro["spec"],
        },
    }


def _hierarchy_results(args) -> dict:
    spec = HierarchySpec()
    if args.quick:
        spec = spec.scaled(0.25)

    print("verifying sharded == serial exports (reduced scale)...")
    verify_hierarchy_exports_identical()
    print("  ok (byte-identical exports)")

    print(
        f"timing interior engine at {spec.n_overlay} nodes"
        f" ({spec.n_overlay // spec.cluster_size} clusters of"
        f" {spec.cluster_size}, {spec.duration_s:.0f}s per run,"
        f" best of {spec.repeats} per mode)..."
    )
    macro = compare_hierarchy_modes(spec)
    summary = macro["summary"]
    print(
        f"  serial {macro['serial']['interior_steps_per_s']:.0f} interior"
        f" steps/s, sharded {macro['sharded']['interior_steps_per_s']:.0f}"
        f" interior steps/s ({spec.workers} workers),"
        f" speedup {summary['interior_speedup']:.2f}x"
        f" (end-to-end {summary['end_to_end_speedup']:.2f}x)"
    )

    headmesh_spec = HeadMeshSpec()
    if args.quick:
        headmesh_spec = headmesh_spec.scaled(0.1)

    print(
        f"timing head-mesh scaling recipe at {headmesh_spec.n_overlay} nodes"
        f" ({headmesh_spec.n_overlay // headmesh_spec.cluster_size} leaf"
        f" clusters of {headmesh_spec.cluster_size};"
        f" {headmesh_spec.levels}-level sharded + {headmesh_spec.estimator}"
        f" vs {headmesh_spec.baseline_levels}-level head-on-main,"
        f" best of {headmesh_spec.repeats} per mode)..."
    )
    headmesh = compare_headmesh_modes(headmesh_spec)
    headmesh_summary = headmesh["summary"]
    print(
        f"  head-on-main {headmesh['head_on_main']['combined_steps_per_s']:.0f}"
        f" combined steps/s, sharded"
        f" {headmesh['sharded']['combined_steps_per_s']:.0f} combined steps/s"
        f" ({headmesh_spec.workers} workers),"
        f" speedup {headmesh_summary['headmesh_speedup']:.2f}x"
        f" (mesh phase {headmesh_summary['mesh_phase_speedup']:.2f}x,"
        f" end-to-end {headmesh_summary['end_to_end_speedup']:.2f}x)"
    )

    return {
        "macro_hierarchy_step_rate": {
            "serial_interior_steps_per_s": macro["serial"]["interior_steps_per_s"],
            "sharded_interior_steps_per_s": macro["sharded"][
                "interior_steps_per_s"
            ],
            "interior_speedup": summary["interior_speedup"],
            # Reported for trajectory tracking, not gated: the end-to-end
            # rate mixes the interior engine with the head mesh, which
            # dominates at this head count.
            "end_to_end_speedup": summary["end_to_end_speedup"],
            "spec": macro["spec"],
        },
        "macro_headmesh_step_rate": {
            "head_on_main_combined_steps_per_s": headmesh["head_on_main"][
                "combined_steps_per_s"
            ],
            "sharded_combined_steps_per_s": headmesh["sharded"][
                "combined_steps_per_s"
            ],
            "headmesh_speedup": headmesh_summary["headmesh_speedup"],
            # Tracked, not gated: the head-mesh phase in isolation, and the
            # wall-clock rate including workload build amortization.
            "mesh_phase_speedup": headmesh_summary["mesh_phase_speedup"],
            "end_to_end_speedup": headmesh_summary["end_to_end_speedup"],
            "spec": headmesh["spec"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--out", default="BENCH_PERF.json", help="report path")
    parser.add_argument(
        "--suite",
        choices=("churn", "protocol", "routing", "step", "hierarchy", "all"),
        default="churn", help="which macro suite to run")
    parser.add_argument("--steps", type=int, default=60,
                        help="timed steps per mode (churn suite)")
    parser.add_argument("--verify-steps", type=int, default=25,
                        help="lockstep equivalence steps before timing (churn)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced-scale run (smoke-testing the runner)")
    args = parser.parse_args(argv)

    results: dict = {}
    if args.suite in ("churn", "all"):
        results.update(_churn_results(args))
    if args.suite in ("protocol", "all"):
        results.update(_protocol_results(args))
    if args.suite in ("routing", "all"):
        results.update(_routing_results(args))
    if args.suite in ("step", "all"):
        results.update(_step_results(args))
    if args.suite in ("hierarchy", "all"):
        results.update(_hierarchy_results(args))

    report = {
        "schema": SCHEMA,
        "kind": "repro-perf",
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
