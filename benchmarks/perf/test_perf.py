"""Perf-suite correctness tests plus pytest-benchmark micro-benchmarks.

The correctness tests run at reduced scale so they are cheap enough for the
tier-1 suite; the full-scale measurement lives in ``run_perf.py`` (the CI
``perf`` job).  Benchmarks use the same harness as the runner, so what CI
gates is exactly what these tests verify.
"""

import math

import pytest

from perf_harness import (
    ChurnSpec,
    build_micro_problem,
    lockstep_allocations,
    run_step_rate,
)
from protocol_harness import ProtocolSpec, export_fingerprint, run_protocol_rate
from routing_harness import (
    RoutingSpec,
    build_spike,
    resolve_spike_rate,
    verify_routes_identical,
)

from repro.network.fairshare import max_min_allocation, single_pass_allocation

_SMOKE_SPEC = ChurnSpec().scaled(0.1)
_PROTOCOL_SMOKE = ProtocolSpec().scaled(0.06)
_ROUTING_SMOKE = RoutingSpec().scaled(0.1)


class TestChurnWorkloadCorrectness:
    def test_incremental_matches_from_scratch_under_churn(self):
        """Every step of the churn workload allocates identically per flow."""
        for inc, ref in lockstep_allocations(_SMOKE_SPEC, steps=18):
            assert len(inc) == len(ref)
            for a, b in zip(inc, ref):
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)

    def test_incremental_reuses_steps_between_bursts(self):
        """CBR flows between churn bursts must hit the clean-step fast path."""
        stats = run_step_rate(_SMOKE_SPEC, incremental=True, steps=20, warmup=2)
        assert stats["clean_fraction"] > 0.5
        assert stats["solve_fraction"] < 0.5

    def test_from_scratch_mode_always_solves(self):
        stats = run_step_rate(_SMOKE_SPEC, incremental=False, steps=10, warmup=2)
        assert stats["clean_fraction"] == 0.0
        assert stats["solve_fraction"] == 1.0


class TestProtocolWorkloadCorrectness:
    def test_protocol_modes_export_identically(self):
        """Incremental protocol plane == from-scratch, byte for byte."""
        incremental = export_fingerprint(True, n_overlay=16, duration_s=30.0)
        from_scratch = export_fingerprint(False, n_overlay=16, duration_s=30.0)
        assert incremental == from_scratch

    def test_protocol_rate_harness_reports_both_clocks(self):
        stats = run_protocol_rate(_PROTOCOL_SMOKE, incremental=True)
        assert stats["steps"] == float(_PROTOCOL_SMOKE.steps)
        assert 0.0 < stats["protocol_s"] <= stats["elapsed_s"]
        assert stats["protocol_steps_per_s"] >= stats["steps_per_s"]


class TestRoutingWorkloadCorrectness:
    def test_engine_routes_match_networkx_reference(self):
        """Both routing modes agree pairwise, mutations included."""
        verify_routes_identical(_ROUTING_SMOKE)

    def test_spike_harness_reports_both_modes(self):
        legacy = resolve_spike_rate(_ROUTING_SMOKE, use_engine=False)
        engine = resolve_spike_rate(_ROUTING_SMOKE, use_engine=True)
        assert legacy["pairs"] == engine["pairs"] > 0
        assert legacy["construction_warm_s"] == 0.0
        assert engine["pairs_per_s"] > 0

    def test_spike_pair_set_is_deterministic(self):
        _, _, joiners_a, pairs_a = build_spike(_ROUTING_SMOKE)
        _, _, joiners_b, pairs_b = build_spike(_ROUTING_SMOKE)
        assert joiners_a == joiners_b
        assert pairs_a == pairs_b


@pytest.fixture(scope="module")
def micro_problem():
    return build_micro_problem(n_flows=150, n_links=60)


def test_max_min_solver_micro(benchmark, micro_problem):
    requests, capacities = micro_problem
    allocation = benchmark(max_min_allocation, requests, capacities)
    assert len(allocation) == len(requests)


def test_single_pass_solver_micro(benchmark, micro_problem):
    requests, capacities = micro_problem
    allocation = benchmark(single_pass_allocation, requests, capacities)
    assert len(allocation) == len(requests)


def test_macro_step_rate_incremental(benchmark):
    """End-to-end step-rate micro version of the CI macro benchmark."""
    stats = benchmark.pedantic(
        run_step_rate,
        args=(_SMOKE_SPEC, True, 15),
        kwargs={"warmup": 2},
        iterations=1,
        rounds=1,
    )
    assert stats["steps"] == 15.0
